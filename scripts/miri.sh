#!/usr/bin/env bash
# Runs the oij-skiplist test suite under Miri (undefined-behaviour
# interpreter): validates the raw-pointer tower arithmetic, flexible-array
# node layout, and epoch reclamation against stacked/tree borrows.
#
#   scripts/miri.sh [extra cargo-test args...]
#
# Heavy tests shrink themselves under `cfg(miri)` (see the `const if
# cfg!(miri)` blocks in crates/skiplist) and the vendored proptest caps
# generated cases at 4, so the run finishes in minutes. When the miri
# component is not installed the script reports how to get it and exits 0
# so offline CI legs degrade gracefully instead of failing.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^miri.*(installed)'; then
  echo "miri.sh: SKIPPED — miri not installed on the nightly toolchain" \
       "(try: rustup component add miri --toolchain nightly)"
  exit 0
fi

# -Zmiri-ignore-leaks: epoch garbage still queued when the process exits is
# freed by the OS, not by Rust; Miri would report it as leaked memory.
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-ignore-leaks}"
exec cargo +nightly miri test -p oij-skiplist "$@"
