#!/usr/bin/env bash
# Runs the oij-skiplist test suite under LLVM sanitizers.
#
#   scripts/sanitize.sh [asan|tsan|all]      (default: all)
#
# AddressSanitizer catches use-after-free / double-free in the epoch
# reclamation path; ThreadSanitizer catches data races the type system and
# loom models might miss. Because the vendored `crossbeam-epoch` is a
# from-scratch reimplementation (see vendor/README.md), both sanitizers
# also run that crate's own stress suite (premature-reclamation canaries,
# multi-thread defer storms) — this is the primary ordering-sensitive
# check for the hand-written EBR engine. Both need a nightly toolchain.
# TSan additionally
# needs an instrumented std (`-Zbuild-std`, requires the rust-src
# component); when that is unavailable the TSan leg is skipped with a
# notice rather than failing the run, so the script degrades gracefully on
# offline machines.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
TARGET_TRIPLE="$(rustc -vV | sed -n 's/^host: //p')"
FAILED=0

# Sanitizer runs are expensive; refuse to spend the cycles while the
# cheap static protocol checks are red. TSan findings are only actionable
# against code whose orderings are already justified (R1) and visible to
# loom through the facade (R2) — lint failures would muddy that baseline.
echo "== Protocol lint gate: cargo xtask lint =="
if ! cargo xtask lint; then
  echo "sanitize.sh: refusing to run sanitizers with protocol lint" \
       "violations outstanding (fix them or add reasoned lint.toml" \
       "allows, then re-run)" >&2
  exit 1
fi

# Same bargain for the temporal contract: capture a protocol-witness
# trace from the (cheap, debug-build) witness suite and require the
# observed message traffic to be ⊆ the declared [protocol] automata
# before spending sanitizer cycles. A red proto-check means an engine is
# sending traffic the protocol review never saw — triage that first.
echo "== Protocol witness gate: cargo xtask proto-check =="
PROTO_LOG="$(mktemp -t oij-proto-XXXXXX.log)"
trap 'rm -f "$PROTO_LOG"' EXIT
if ! RUSTFLAGS="--cfg protowit" OIJ_PROTO_LOG="$PROTO_LOG" \
     cargo test -q --test protocol_witness -- --test-threads 2; then
  echo "sanitize.sh: refusing to run sanitizers — the protocol witness" \
       "suite failed under --cfg protowit" >&2
  exit 1
fi
if ! cargo xtask proto-check "$PROTO_LOG"; then
  echo "sanitize.sh: refusing to run sanitizers with observed message" \
       "traffic outside the declared lint.toml [protocol] automata" >&2
  exit 1
fi

have_nightly() {
  rustup toolchain list 2>/dev/null | grep -q nightly
}

have_rust_src() {
  rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src.*(installed)'
}

run_asan() {
  echo "== AddressSanitizer: cargo test -p oij-skiplist -p crossbeam-epoch =="
  # ASan links its runtime into the test binary; an uninstrumented std is
  # acceptable (allocations still funnel through the instrumented global
  # allocator shims).
  RUSTFLAGS="-Zsanitizer=address" \
  RUSTDOCFLAGS="-Zsanitizer=address" \
  ASAN_OPTIONS="detect_leaks=0" \
    cargo +nightly test -p oij-skiplist -p crossbeam-epoch \
    --target "$TARGET_TRIPLE" --release -q || FAILED=1
  # Leak checking is off above: epoch garbage still queued at process exit
  # is reported as leaked even though teardown is sound. Run the targeted
  # drop tests with leak detection on, where every structure is dropped.
  echo "== AddressSanitizer (leaks): drop tests =="
  RUSTFLAGS="-Zsanitizer=address" \
  RUSTDOCFLAGS="-Zsanitizer=address" \
    cargo +nightly test -p oij-skiplist --target "$TARGET_TRIPLE" \
    --release -q drop_ || FAILED=1
}

run_tsan() {
  if ! have_rust_src; then
    echo "== ThreadSanitizer: SKIPPED (rust-src not installed; TSan needs" \
         "-Zbuild-std to instrument std, try: rustup component add" \
         "rust-src --toolchain nightly) =="
    return 0
  fi
  echo "== ThreadSanitizer: cargo test -p oij-skiplist -p crossbeam-epoch =="
  RUSTFLAGS="-Zsanitizer=thread" \
  RUSTDOCFLAGS="-Zsanitizer=thread" \
  TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
    cargo +nightly test -p oij-skiplist -p crossbeam-epoch \
    --target "$TARGET_TRIPLE" -Zbuild-std --release -q || FAILED=1
  # The supervision layer (FailureCell, DrainBarrier, kill-flag teardown,
  # bounded joins) is its own ordering-sensitive surface: run the fault
  # unit suite and the cross-engine fault matrix under TSan too.
  echo "== ThreadSanitizer: oij-core faults + robustness fault matrix =="
  RUSTFLAGS="-Zsanitizer=thread" \
  RUSTDOCFLAGS="-Zsanitizer=thread" \
  TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
    cargo +nightly test -p oij-core faults \
    --target "$TARGET_TRIPLE" -Zbuild-std --release -q \
    -- --test-threads 2 || FAILED=1
  RUSTFLAGS="-Zsanitizer=thread" \
  RUSTDOCFLAGS="-Zsanitizer=thread" \
  TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
    cargo +nightly test --test robustness \
    --target "$TARGET_TRIPLE" -Zbuild-std --release -q \
    -- --test-threads 2 || FAILED=1
}

if ! have_nightly; then
  echo "sanitize.sh: no nightly toolchain installed; sanitizers need" \
       "-Zsanitizer (try: rustup toolchain install nightly)" >&2
  exit 1
fi

case "$MODE" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *) echo "usage: scripts/sanitize.sh [asan|tsan|all]" >&2; exit 2 ;;
esac

exit "$FAILED"
