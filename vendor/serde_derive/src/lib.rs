//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree model, see the vendored `serde` crate) for the shapes
//! this workspace actually derives on:
//!
//! - structs with named fields (maps), honouring `#[serde(skip)]`,
//!   `#[serde(default)]` (per field) and `#[serde(transparent)]`;
//! - tuple structs (newtypes serialize transparently, larger ones as
//!   sequences);
//! - enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, as real serde defaults to).
//!
//! Written directly against `proc_macro` — `syn`/`quote` are unavailable in
//! the offline container. Generic types are intentionally rejected with a
//! clear error (nothing in the workspace derives on generics).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: (field name, skip?, default?).
    Struct(Vec<(String, bool, bool)>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant field names.
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing (manual, no syn)
// ---------------------------------------------------------------------------

/// Collects one attribute body (`#[...]`) if the cursor is on `#`, returning
/// its flattened text; advances the iterator past it.
fn take_attr(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Option<String> {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    Some(g.stream().to_string())
                }
                _ => panic!("serde_derive: malformed attribute"),
            }
        }
        _ => None,
    }
}

fn attr_has(attrs: &[String], marker: &str) -> bool {
    attrs.iter().any(|a| {
        let a: String = a.chars().filter(|c| !c.is_whitespace()).collect();
        a.starts_with("serde(") && a.contains(marker)
    })
}

/// Skips visibility qualifiers (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut type_attrs = Vec::new();
    while let Some(a) = take_attr(&mut tokens) {
        type_attrs.push(a);
    }
    skip_vis(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
    }

    let transparent = attr_has(&type_attrs, "transparent");
    let kind = match (keyword.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Struct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde_derive: unsupported {kw} body: {other:?}"),
    };
    Item {
        name,
        transparent,
        kind,
    }
}

/// Parses `name: Type, …` bodies, tracking `#[serde(skip)]` and
/// `#[serde(default)]` per field.
fn parse_named_fields(body: TokenStream) -> Vec<(String, bool, bool)> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let mut attrs = Vec::new();
        while let Some(a) = take_attr(&mut tokens) {
            attrs.push(a);
        }
        skip_vis(&mut tokens);
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break;
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&mut tokens);
        fields.push((
            field.to_string(),
            attr_has(&attrs, "skip"),
            attr_has(&attrs, "default"),
        ));
    }
    fields
}

/// Advances past a type expression, stopping after the next top-level comma.
/// Angle-bracket depth is tracked manually (they are puncts, not groups).
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
    }
}

/// Counts the comma-separated types of a tuple-struct/-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut tokens = body.into_iter().peekable();
    let mut n = 0;
    loop {
        while take_attr(&mut tokens).is_some() {}
        skip_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        n += 1;
        skip_type_until_comma(&mut tokens);
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while take_attr(&mut tokens).is_some() {}
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|(f, _, _)| f)
                    .collect();
                tokens.next();
                VariantFields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        // Trailing comma between variants.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen (string-based; the output is parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let live: Vec<_> = fields.iter().filter(|(_, skip, _)| !skip).collect();
            if item.transparent {
                assert!(
                    live.len() == 1,
                    "#[serde(transparent)] requires exactly one unskipped field"
                );
                format!("::serde::Serialize::to_value(&self.{})", live[0].0)
            } else {
                let pushes: String = live
                    .iter()
                    .map(|(f, _, _)| {
                        format!(
                            "m.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                        )
                    })
                    .collect();
                format!(
                    "let mut m: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} ::serde::Value::Map(m)"
                )
            }
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let live: Vec<_> = fields.iter().filter(|(_, skip, _)| !skip).collect();
            if item.transparent {
                let f = &live[0].0;
                format!("Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})")
            } else {
                let inits: String = fields
                    .iter()
                    .map(|(f, skip, default)| {
                        if *skip {
                            format!("{f}: ::core::default::Default::default(),")
                        } else if *default {
                            // `#[serde(default)]`: tolerate the field being
                            // absent (schema-evolution compatibility).
                            format!(
                                "{f}: match v.get(\"{f}\") {{ \
                                     Some(x) => ::serde::Deserialize::from_value(x)?, \
                                     None => ::core::default::Default::default(), \
                                 }},"
                            )
                        } else {
                            format!(
                                "{f}: match v.get(\"{f}\") {{ \
                                     Some(x) => ::serde::Deserialize::from_value(x)?, \
                                     None => return Err(::serde::Error::msg(\"missing field `{f}` in {name}\")), \
                                 }},"
                            )
                        }
                    })
                    .collect();
                format!("Ok({name} {{ {inits} }})")
            }
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Kind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::Error::msg(\"tuple too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let seq = v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?; \
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Unit => format!("let _ = v; Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => return Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::Error::msg(\"variant tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                     let seq = inner.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array variant\"))?; \
                                     return Ok({name}::{vname}({})); \
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: match inner.get(\"{f}\") {{ \
                                             Some(x) => ::serde::Deserialize::from_value(x)?, \
                                             None => return Err(::serde::Error::msg(\"missing field `{f}` in {name}::{vname}\")), \
                                         }},"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => return Ok({name}::{vname} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{ \
                     match s {{ {unit_arms} _ => {{}} }} \
                 }} \
                 if let Some(m) = v.as_map() {{ \
                     if m.len() == 1 {{ \
                         let (tag, inner) = &m[0]; \
                         let _ = inner; \
                         match tag.as_str() {{ {tagged_arms} _ => {{}} }} \
                     }} \
                 }} \
                 Err(::serde::Error::msg(\"unrecognised {name} variant\"))"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
