//! Offline vendored stand-in for `serde_json`.
//!
//! Reads and writes JSON over the vendored `serde` value tree. Supports the
//! workspace's API surface: [`to_string`] / [`to_string_pretty`] for any
//! `T: Serialize`, and [`from_str`] for any `T: Deserialize` (including
//! [`Value`] itself, which the experiment report/plot tools traverse).
//!
//! Divergences from the real crate, chosen deliberately: non-finite floats
//! serialize as `null` (the real crate errors), and object key order is
//! insertion order (the real crate matches this with `preserve_order`).

#![warn(missing_docs)]

use std::fmt::Write as _;

/// Re-export: the vendored serde's value tree doubles as the JSON DOM.
pub type Value = serde::Value;

/// JSON error with a byte offset for parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse failure (0 for serialization errors).
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            msg: e.0,
            offset: 0,
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` prints integral floats without a decimal point; JSON
                // accepts that, and `as_f64` reads it back identically.
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_index() {
        let v: Value =
            from_str(r#"{"id": "fig7", "series": [{"label": "a", "points": [[1, 0.5]]}]}"#)
                .unwrap();
        assert_eq!(v["id"].as_str(), Some("fig7"));
        let series = v["series"].as_array().unwrap();
        assert_eq!(series[0]["label"].as_str(), Some("a"));
        assert_eq!(series[0]["points"][0][1].as_f64(), Some(0.5));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_round_trip() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        let compact = to_string(&v).unwrap();
        assert!(!compact.contains('\n'));
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<(f64, f64)> = from_str("[[1, 2], [3, 4.5]]").unwrap();
        assert_eq!(xs, vec![(1.0, 2.0), (3.0, 4.5)]);
    }
}
