//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with the real crate's non-poisoning API: a
//! panicked holder does not poison the lock, later acquisitions simply
//! proceed (matching `parking_lot` semantics, which the OpenMLDB baseline
//! engine relies on). Performance characteristics differ from the real
//! crate, but every engine measured against it pays the identical cost, so
//! relative comparisons are preserved.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// RAII guard for shared (read) access.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for exclusive (write) access.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// RAII guard for an acquired [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let l = std::sync::Arc::new(Mutex::new(0u32));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *l.lock() += 1;
        assert_eq!(*l.lock(), 1);
    }
}
