//! Offline vendored stand-in for `criterion`.
//!
//! Exposes the macro and builder surface the workspace benches use
//! (`criterion_group!` in both forms, `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `Throughput`, `BatchSize`, `BenchmarkId`, `black_box`) and measures with
//! plain wall-clock sampling: per benchmark it warms up briefly, takes
//! `sample_size` samples, and prints the median ns/iteration (plus
//! throughput when declared). No statistics engine, no HTML reports, no
//! baseline comparisons — results are indicative, not rigorous.
//!
//! `cargo bench` stays fast because iteration counts are auto-scaled down
//! for slow routines, and `cargo test` runs each bench closure once (the
//! real crate's behaviour under its test profile) so benches stay compiled
//! and correct.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Internal: run every routine exactly once instead of timing it.
    #[doc(hidden)]
    pub fn test_mode(mut self) -> Self {
        self.test_mode = true;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(id, None, sample_size, test_mode, f);
        self
    }
}

/// A set of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the units processed per iteration (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks a routine under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IdLike, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_one(
            &full,
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmarks a routine that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IdLike,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (No-op beyond matching the real crate's API.)
    pub fn finish(self) {}
}

/// Either a plain `&str` or a [`BenchmarkId`] — both name a benchmark.
pub trait IdLike {
    /// The display form used in output.
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.0.clone()
    }
}

/// A benchmark name combining a function label and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `label/parameter`.
    pub fn new(label: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{label}/{parameter}"))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (tuples, rows…) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost. This build times each batch of
/// one routine call individually, so the variants only shape batch sizing
/// in spirit; they are accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (setup dominates; fewer iterations).
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Passed to each routine: receives the closure to time.
pub struct Bencher {
    test_mode: bool,
    /// Target iterations per sample, auto-scaled by the harness.
    iters: u64,
    /// Measured duration of the sample's iterations.
    elapsed: Duration,
    /// Iterations actually executed in the sample.
    done: u64,
}

impl Bencher {
    /// Times `routine` for this sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.done = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.done = self.iters;
    }

    /// Times `routine` on fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            self.done = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.done = self.iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    if test_mode {
        let mut b = Bencher {
            test_mode: true,
            iters: 1,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut b);
        return;
    }

    // Calibrate: start at 1 iteration/sample and grow until a sample costs
    // ~2 ms, capping total calibration work.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            test_mode: false,
            iters,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            test_mode: false,
            iters,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut b);
        if b.done > 0 {
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.done as f64);
        }
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns
        .get(per_iter_ns.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);

    let rate = throughput.map(|t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = n as f64 / (median * 1e-9);
        format!("  ({per_sec:.3e} {unit})")
    });
    println!(
        "bench: {name:<56} {median:>14.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `config = Criterion::default()...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            if ::std::env::var_os("CRITERION_TEST_MODE").is_some() || cfg!(test) {
                criterion = criterion.test_mode();
            }
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2).test_mode();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(2).test_mode();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut sum = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| sum += d.iter().sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(sum > 0);
    }
}
