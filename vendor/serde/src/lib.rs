//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! self-contained serialization layer under the same crate and trait names.
//! Instead of the real crate's visitor-based zero-copy data model, this one
//! funnels everything through an owned value tree ([`Value`]):
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] rebuilds `Self` from a [`Value`].
//!
//! The derive macros (re-exported from the vendored `serde_derive`) generate
//! the same field/variant layout the real serde would: structs become maps,
//! newtype structs are transparent, enum variants are externally tagged, and
//! the `#[serde(skip)]` / `#[serde(transparent)]` attributes used in this
//! workspace are honoured. `serde_json` (also vendored) reads and writes
//! this value tree as JSON.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing value tree — the vendored data model.
///
/// This doubles as `serde_json::Value` (the vendored `serde_json` re-exports
/// it), so it carries the handful of accessor methods the experiment
/// tooling uses (`as_str`, `as_array`, `as_f64`, indexing).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in a map value; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Map lookup; yields `null` for missing keys or non-map values, like
    /// `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Sequence lookup; yields `null` out of bounds or for non-sequences.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization into the vendored value tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the vendored value tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// A (de)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
ser_uint!(u64, usize);

// 128-bit integers don't fit the JSON number model; values within 64-bit
// range use integer nodes, larger ones round-trip through decimal strings.
macro_rules! ser_int128 {
    ($($t:ty => $via:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match <$via>::try_from(*self) {
                    Ok(n) => n.to_value(),
                    Err(_) => Value::Str(self.to_string()),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                if let Some(s) = v.as_str() {
                    return s.parse::<$t>().map_err(Error::msg);
                }
                if let Some(n) = v.as_u64() {
                    return <$t>::try_from(n).map_err(Error::msg);
                }
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
ser_int128!(u128 => u64, i128 => i64);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::msg(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain `'static` (the real serde borrows from
    /// the input instead). Only spec structs with literal names use this,
    /// and only in tests/tools, so the leak is bounded and acceptable.
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak::<'static>(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($t::from_value(
                    seq.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for std::time::Duration {
    /// Matches real serde's `{secs, nanos}` struct encoding.
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(&v["secs"])?;
        let nanos = u32::from_value(&v["nanos"])?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".into())
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
        let pair = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn index_falls_back_to_null() {
        let v = Value::Map(vec![("a".into(), Value::I64(1))]);
        assert_eq!(v["a"].as_i64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }
}
