//! Instrumented threads.
//!
//! Inside [`model`](crate::model), spawned threads are real OS threads
//! driven one at a time by the scheduler; outside a model they degrade to
//! plain `std::thread` so code using `loom::thread` still runs normally.

use crate::rt;
use std::sync::Arc;

/// Handle to a spawned (possibly model-scheduled) thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    /// `Some((scheduler, tid))` when spawned inside a model.
    model: Option<(Arc<rt::Scheduler>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (or the panic
    /// payload, as with `std::thread`).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, target)) = &self.model {
            if let Some((_, me)) = rt::context() {
                sched.join_wait(me, *target);
            }
        }
        self.inner.join()
    }
}

/// Spawns a thread. Inside a model this registers a schedulable thread and
/// is itself a schedule point; outside it is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::context() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
        Some((sched, me)) => {
            let tid = sched.register_thread();
            let child_sched = Arc::clone(&sched);
            let inner = std::thread::spawn(move || {
                rt::set_context(Some((Arc::clone(&child_sched), tid)));
                child_sched.wait_for_token(tid);
                // Marks the thread finished on both return and panic, so
                // the scheduler never waits on a dead thread.
                let _guard = rt::FinishGuard {
                    sched: child_sched,
                    tid,
                };
                f()
            });
            // The child is now enabled: give the scheduler a chance to run
            // it immediately (thread creation is a schedule point).
            sched.yield_point(me);
            JoinHandle {
                inner,
                model: Some((sched, tid)),
            }
        }
    }
}

/// Yields the current thread: a plain schedule point.
pub fn yield_now() {
    rt::yield_point();
}
