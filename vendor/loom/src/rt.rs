//! The cooperative scheduler and DFS schedule explorer.
//!
//! One OS thread runs at a time, gated by a token (`current` tid) under a
//! single mutex + condvar. Every schedule point calls [`yield_point`],
//! which records a *decision*: the set of enabled threads (the canonical
//! "try order": previously-running thread first, then ascending tid) and
//! the branch taken. Replaying a recorded prefix steers the next execution
//! into the next unvisited branch, depth-first, skipping branches that
//! would exceed the preemption budget.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on schedule points in one execution — catches unbounded spin
/// loops, which this explorer cannot terminate on its own.
const MAX_STEPS: usize = 200_000;

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    /// Waiting for the given tid to finish.
    Joining(usize),
    Finished,
}

#[derive(Clone, Debug)]
struct Decision {
    /// Enabled threads in canonical try order (previous thread first when
    /// still enabled, then ascending tid).
    try_order: Vec<usize>,
    /// Index into `try_order` of the branch taken.
    chosen: usize,
    /// Whether the previously running thread was enabled here (switching
    /// away from it counts as a preemption).
    prev_enabled: bool,
    /// Preemptions accumulated before this decision.
    preemptions_before: usize,
}

struct SchedInner {
    current: usize,
    threads: Vec<ThreadState>,
    replay: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    aborted: bool,
}

pub(crate) struct Scheduler {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

impl Scheduler {
    fn new(replay: Vec<usize>) -> Self {
        Scheduler {
            inner: Mutex::new(SchedInner {
                current: 0,
                threads: vec![ThreadState::Runnable],
                replay,
                decisions: Vec::new(),
                preemptions: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a newly spawned thread; returns its tid.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.inner.lock().unwrap();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// Picks the next thread to run. Must hold the lock. Returns `false`
    /// when every thread has finished.
    fn decide(&self, st: &mut SchedInner) -> bool {
        // Wake joiners whose target has finished.
        for i in 0..st.threads.len() {
            if let ThreadState::Joining(t) = st.threads[i] {
                if st.threads[t] == ThreadState::Finished {
                    st.threads[i] = ThreadState::Runnable;
                }
            }
        }
        let prev = st.current;
        let mut try_order: Vec<usize> = Vec::new();
        if st.threads.get(prev) == Some(&ThreadState::Runnable) {
            try_order.push(prev);
        }
        for (tid, s) in st.threads.iter().enumerate() {
            if *s == ThreadState::Runnable && tid != prev {
                try_order.push(tid);
            }
        }
        if try_order.is_empty() {
            if st.threads.iter().all(|s| *s == ThreadState::Finished) {
                return false;
            }
            st.aborted = true;
            self.cv.notify_all();
            panic!(
                "loom: deadlock — no runnable threads, states: {:?}",
                st.threads
            );
        }
        let prev_enabled = try_order[0] == prev;
        let step = st.decisions.len();
        assert!(
            step < MAX_STEPS,
            "loom: {MAX_STEPS} schedule points in one execution — \
             unbounded spin loop in the model body?"
        );
        let chosen = if step < st.replay.len() {
            let want = st.replay[step];
            try_order
                .iter()
                .position(|&t| t == want)
                .unwrap_or_else(|| {
                    st.aborted = true;
                    self.cv.notify_all();
                    panic!(
                        "loom: replay divergence at step {step} — the model body \
                     is nondeterministic (wanted tid {want}, enabled {try_order:?})"
                    )
                })
        } else {
            0
        };
        let preemptions_before = st.preemptions;
        if prev_enabled && chosen != 0 {
            st.preemptions += 1;
        }
        st.current = try_order[chosen];
        st.decisions.push(Decision {
            try_order,
            chosen,
            prev_enabled,
            preemptions_before,
        });
        true
    }

    /// A schedule point for thread `me`: pick who runs next, then block
    /// until this thread holds the token again.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.inner.lock().unwrap();
        self.decide(&mut st);
        self.cv.notify_all();
        while st.current != me {
            if st.aborted {
                panic!("loom: model aborted");
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Blocks `me` until `target` finishes (a schedule point).
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.inner.lock().unwrap();
        if st.threads[target] != ThreadState::Finished {
            st.threads[me] = ThreadState::Joining(target);
        }
        self.decide(&mut st);
        self.cv.notify_all();
        while st.current != me {
            if st.aborted {
                panic!("loom: model aborted");
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Parks a fresh thread until the scheduler first hands it the token.
    pub(crate) fn wait_for_token(&self, me: usize) {
        let mut st = self.inner.lock().unwrap();
        while st.current != me {
            if st.aborted {
                panic!("loom: model aborted");
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Marks `me` finished and hands the token onward.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.inner.lock().unwrap();
        st.threads[me] = ThreadState::Finished;
        if !st.aborted {
            self.decide(&mut st);
        }
        self.cv.notify_all();
    }

    fn abort(&self) {
        let mut st = self.inner.lock().unwrap();
        st.aborted = true;
        self.cv.notify_all();
    }
}

/// Marks the thread finished even if its body panicked, so the scheduler
/// never hangs waiting on a dead thread.
pub(crate) struct FinishGuard {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.sched.finish(self.tid);
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

/// Current thread's scheduler context, if inside a model.
pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_context(ctx: Option<(Arc<Scheduler>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Schedule point for the current thread; no-op outside [`model`].
pub(crate) fn yield_point() {
    if let Some((sched, tid)) = context() {
        sched.yield_point(tid);
    }
}

/// Computes the replay prefix reaching the next unvisited branch, or `None`
/// when the (preemption-bounded) tree is exhausted.
fn next_replay(decisions: &[Decision], max_preemptions: usize) -> Option<Vec<usize>> {
    for d in (0..decisions.len()).rev() {
        let dec = &decisions[d];
        for alt in dec.chosen + 1..dec.try_order.len() {
            // Branch `alt != 0` switches away from a still-enabled previous
            // thread — that is a preemption; check the budget.
            let extra = usize::from(dec.prev_enabled && alt != 0);
            if dec.preemptions_before + extra <= max_preemptions {
                let mut replay: Vec<usize> = decisions[..d]
                    .iter()
                    .map(|x| x.try_order[x.chosen])
                    .collect();
                replay.push(dec.try_order[alt]);
                return Some(replay);
            }
        }
    }
    None
}

/// Systematically explores thread interleavings of `body`.
///
/// Runs `body` once per schedule until the preemption-bounded decision tree
/// is exhausted. See the crate docs for the model's scope and limitations.
/// Panics from any explored schedule propagate after the failing schedule's
/// statistics are printed to stderr.
pub fn model<F>(body: F)
where
    F: Fn(),
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iters = env_usize("LOOM_MAX_ITERS", 20_000);
    let mut replay: Vec<usize> = Vec::new();
    let mut iters: usize = 0;

    loop {
        iters += 1;
        let sched = Arc::new(Scheduler::new(replay.clone()));
        set_context(Some((Arc::clone(&sched), 0)));
        let result = catch_unwind(AssertUnwindSafe(&body));
        set_context(None);
        if let Err(payload) = result {
            sched.abort();
            eprintln!(
                "loom: panic under schedule {iters} (replay prefix {} decisions)",
                replay.len()
            );
            resume_unwind(payload);
        }
        let decisions = {
            let st = sched.inner.lock().unwrap();
            // tid 0 is the model body itself; it never calls finish().
            assert!(
                st.threads[1..].iter().all(|s| *s == ThreadState::Finished),
                "loom: model body returned with unjoined threads — join every \
                 spawned thread before the closure ends (states: {:?})",
                st.threads
            );
            st.decisions.clone()
        };
        match next_replay(&decisions, max_preemptions) {
            Some(r) if iters < max_iters => replay = r,
            Some(_) => {
                eprintln!(
                    "loom: exploration capped at {max_iters} schedules \
                     (LOOM_MAX_ITERS) — state space not exhausted"
                );
                break;
            }
            None => break,
        }
    }
}
