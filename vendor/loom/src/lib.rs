//! Offline vendored stand-in for `loom`: a CHESS-style systematic
//! concurrency model checker.
//!
//! [`model`] runs a test body repeatedly, each time under a different thread
//! interleaving, until the space of schedules (bounded by a preemption
//! budget) is exhausted. Threads created through [`thread::spawn`] and
//! every operation on the atomics in [`sync::atomic`] are *schedule
//! points*: a cooperative scheduler keeps exactly one thread runnable at a
//! time and decides at each point which thread proceeds next. The decision
//! tree is explored depth-first; a replayed prefix steers each execution to
//! the next unvisited branch.
//!
//! ## Scope and divergences from the real loom
//!
//! - **Sequential consistency only.** Atomic operations execute with
//!   `SeqCst` regardless of the ordering argument, so weak-memory
//!   reorderings (a `Relaxed` store overtaking a `Release` one, etc.) are
//!   *not* modeled — only interleavings of whole operations. Publication
//!   bugs that need an acquire/release pair to be observed as such are
//!   caught when they manifest as an operation-order interleaving.
//! - **No data-race detection for plain (non-atomic) accesses** — there is
//!   no `loom::cell::UnsafeCell` instrumentation; invariants must be
//!   asserted by the test body.
//! - **Preemption bounding.** Schedules with more than
//!   `LOOM_MAX_PREEMPTIONS` (default 2) involuntary context switches are
//!   pruned, per the CHESS result that most concurrency bugs manifest with
//!   very few preemptions.
//! - Exploration also stops after `LOOM_MAX_ITERS` schedules (default
//!   20 000) with a warning on stderr, so pathological state spaces cannot
//!   hang CI.
//!
//! Determinism requirement: the body passed to [`model`] must make the same
//! sequence of schedule-point calls given the same scheduling decisions (no
//! wall-clock, no OS randomness), otherwise replay diverges and the run
//! panics with a "replay divergence" message.

#![warn(missing_docs)]

mod rt;

pub mod thread;

pub use rt::model;

/// Synchronization primitives instrumented with schedule points.
pub mod sync {
    /// Unchanged std `Arc`: reference counting is not explored (its effects
    /// are not observable by the tests' assertions), only atomics are.
    pub use std::sync::Arc;

    /// Instrumented atomic types. Each operation is a schedule point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use crate::rt;

        /// An atomic fence; under the model this is only a schedule point
        /// (operations already execute sequentially consistent).
        pub fn fence(_order: Ordering) {
            rt::yield_point();
        }

        macro_rules! int_atomic {
            ($(#[$doc:meta] $name:ident: $int:ty => $std:ident),+ $(,)?) => {$(
                #[$doc]
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Creates a new atomic with the given value.
                    pub fn new(v: $int) -> Self {
                        $name(std::sync::atomic::$std::new(v))
                    }

                    /// Loads the value (schedule point; executes `SeqCst`).
                    pub fn load(&self, _order: Ordering) -> $int {
                        rt::yield_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Stores a value (schedule point; executes `SeqCst`).
                    pub fn store(&self, v: $int, _order: Ordering) {
                        rt::yield_point();
                        self.0.store(v, Ordering::SeqCst);
                    }

                    /// Swaps the value (schedule point).
                    pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                        rt::yield_point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Adds to the value, returning the previous value.
                    pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                        rt::yield_point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Subtracts from the value, returning the previous value.
                    pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                        rt::yield_point();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Bitwise-ors the value, returning the previous value.
                    pub fn fetch_or(&self, v: $int, _order: Ordering) -> $int {
                        rt::yield_point();
                        self.0.fetch_or(v, Ordering::SeqCst)
                    }

                    /// Maximum of current and given value, returning previous.
                    pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                        rt::yield_point();
                        self.0.fetch_max(v, Ordering::SeqCst)
                    }

                    /// Compare-and-exchange (schedule point; never spurious).
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$int, $int> {
                        rt::yield_point();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Weak compare-and-exchange; this model never fails
                    /// spuriously (a strict subset of allowed behaviours).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Consumes the atomic, returning the inner value.
                    pub fn into_inner(self) -> $int {
                        self.0.into_inner()
                    }
                }
            )+};
        }

        int_atomic! {
            /// Instrumented `AtomicUsize`.
            AtomicUsize: usize => AtomicUsize,
            /// Instrumented `AtomicU64`.
            AtomicU64: u64 => AtomicU64,
            /// Instrumented `AtomicI64`.
            AtomicI64: i64 => AtomicI64,
            /// Instrumented `AtomicU32`.
            AtomicU32: u32 => AtomicU32,
            /// Instrumented `AtomicU8`.
            AtomicU8: u8 => AtomicU8,
        }

        /// Instrumented `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic with the given value.
            pub fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            /// Loads the value (schedule point).
            pub fn load(&self, _order: Ordering) -> bool {
                rt::yield_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Stores a value (schedule point).
            pub fn store(&self, v: bool, _order: Ordering) {
                rt::yield_point();
                self.0.store(v, Ordering::SeqCst);
            }

            /// Swaps the value (schedule point).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                rt::yield_point();
                self.0.swap(v, Ordering::SeqCst)
            }
        }

        /// Instrumented `AtomicPtr`.
        #[derive(Debug)]
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> AtomicPtr<T> {
            /// Creates a new atomic pointer.
            pub fn new(p: *mut T) -> Self {
                AtomicPtr(std::sync::atomic::AtomicPtr::new(p))
            }

            /// Loads the pointer (schedule point).
            pub fn load(&self, _order: Ordering) -> *mut T {
                rt::yield_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Stores a pointer (schedule point).
            pub fn store(&self, p: *mut T, _order: Ordering) {
                rt::yield_point();
                self.0.store(p, Ordering::SeqCst);
            }

            /// Swaps the pointer (schedule point).
            pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
                rt::yield_point();
                self.0.swap(p, Ordering::SeqCst)
            }

            /// Compare-and-exchange (schedule point).
            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                rt::yield_point();
                self.0
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the inner pointer.
            pub fn into_inner(self) -> *mut T {
                self.0.into_inner()
            }

            /// Mutable access to the pointer (no schedule point: requires
            /// exclusive access, so no interleaving is possible).
            pub fn get_mut(&mut self) -> &mut *mut T {
                self.0.get_mut()
            }
        }

        impl<T> Default for AtomicPtr<T> {
            fn default() -> Self {
                AtomicPtr::new(std::ptr::null_mut())
            }
        }
    }
}

/// Miscellaneous instrumented hints.
pub mod hint {
    /// A spin-loop hint is a schedule point — under the model, spinning
    /// must let other threads run or exploration would never terminate.
    pub fn spin_loop() {
        crate::rt::yield_point();
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use crate::sync::Arc;

    /// The classic message-passing litmus test: with the flag published
    /// after the data, a reader that observes the flag must observe the
    /// data. The model must also visit schedules on both sides of the flag
    /// store — both reader outcomes have to occur.
    #[test]
    fn message_passing_holds_and_both_branches_explored() {
        use std::sync::atomic::{AtomicBool as StdBool, Ordering as StdOrd};
        let saw_flag = StdBool::new(false);
        let missed_flag = StdBool::new(false);
        crate::model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
                saw_flag.store(true, StdOrd::SeqCst);
            } else {
                missed_flag.store(true, StdOrd::SeqCst);
            }
            t.join().unwrap();
        });
        assert!(saw_flag.load(StdOrd::SeqCst), "never saw the flag set");
        assert!(missed_flag.load(StdOrd::SeqCst), "never saw the flag unset");
    }

    /// Counts distinct outcomes of a 2-thread race: both increments must be
    /// observed in some schedule, and a lost-update must NOT be possible
    /// with fetch_add.
    #[test]
    fn fetch_add_never_loses_updates() {
        crate::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = crate::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    }

    /// A racy read-modify-write (load then store) CAN lose updates; the
    /// model must find the interleaving that exposes it.
    #[test]
    fn racy_increment_bug_is_found() {
        let lost = std::sync::atomic::AtomicBool::new(false);
        crate::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = crate::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            if c.load(Ordering::SeqCst) == 1 {
                lost.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        });
        assert!(
            lost.load(std::sync::atomic::Ordering::SeqCst),
            "exploration failed to reach the lost-update interleaving"
        );
    }

    /// Three threads, join ordering, and schedule counts stay bounded.
    #[test]
    fn three_thread_joins() {
        crate::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    crate::thread::spawn(move || c.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 3);
        });
    }
}
