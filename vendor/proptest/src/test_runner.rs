//! The case runner: configuration, RNG, and the per-test driver loop.

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The inputs were unsuitable; the case is skipped (not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed property with a reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// A rejected (skipped) case with a reason.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Runner configuration. Only `cases` is honoured by this vendored build.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property (before env/Miri adjustment).
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG handed to strategies (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

fn effective_cases(config: &ProptestConfig) -> u32 {
    let mut cases = config.cases;
    if let Ok(env) = std::env::var("PROPTEST_CASES") {
        if let Ok(n) = env.trim().parse::<u32>() {
            cases = n;
        }
    }
    if cfg!(miri) {
        // Interpreted execution is ~100× slower; a handful of cases still
        // exercises the unsafe paths Miri is checking.
        cases = cases.min(4);
    }
    cases.max(1)
}

fn base_seed(name: &str) -> u64 {
    if let Ok(env) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = env.trim().parse::<u64>() {
            return n;
        }
    }
    // FNV-1a over the test name: distinct but reproducible per property.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: runs `f` for each case with a per-case RNG and a
/// description buffer the `proptest!` macro fills with the generated inputs.
/// Panics (failing the `#[test]`) on the first `Fail`; `Reject`s are skipped
/// up to a global budget.
pub fn run<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let cases = effective_cases(&config);
    let seed = base_seed(name);
    let max_rejects = cases.saturating_mul(8).max(64);
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut attempt = 0u64;
    while case < cases {
        let mut rng = TestRng::from_seed(seed ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F));
        attempt += 1;
        let mut desc = String::new();
        match f(&mut rng, &mut desc) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest `{name}`: too many rejected cases ({rejects}); last: {reason}"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest `{name}` failed at case {case} (seed {seed:#x}, attempt {})\n\
                     inputs:\n{desc}cause: {reason}",
                    attempt - 1
                );
            }
        }
    }
}
