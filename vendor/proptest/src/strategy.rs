//! Strategies: deterministic value generators with combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// How many times a filtered strategy retries before the case is abandoned.
const MAX_FILTER_RETRIES: u32 = 1_000;

/// A generator of values for property tests.
///
/// Unlike the real crate there is no value tree / shrinking; `generate`
/// produces one value per call, deterministically from the runner's RNG.
/// Combinator methods carry `where Self: Sized` so the trait stays
/// object-safe and `Box<dyn Strategy<Value = T>>` works (needed by
/// [`prop_oneof!`](crate::prop_oneof)).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `pred` is false, retrying (bounded). The
    /// `reason` string appears in the panic if the filter starves.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "proptest filter starved after {MAX_FILTER_RETRIES} retries: {}",
            self.reason
        );
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Width fits in u128 for every integer type we cover.
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % width) as i128;
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's full domain (`any::<i64>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats spanning a wide magnitude range — the full bit
        // pattern domain would mostly yield NaN-adjacent extremes.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mag * 10f64.powi(exp)
    }
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// A parsed atom of the supported regex subset.
enum ReAtom {
    /// Literal character.
    Lit(char),
    /// Character class: flattened set of candidate chars.
    Class(Vec<char>),
}

struct ReElem {
    atom: ReAtom,
    min: u32,
    max: u32,
}

/// `&str` doubles as a strategy generating strings matching the pattern, as
/// in the real crate. Supported subset: literal chars, `[...]` classes with
/// ranges, and `{n}` / `{n,m}` quantifiers — enough for identifier-shaped
/// patterns like `"[a-zA-Z_][a-zA-Z0-9_]{0,12}"`. Unsupported syntax panics
/// at generation time with a clear message.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let elems = parse_regex(self);
        let mut out = String::new();
        for e in &elems {
            let n = if e.min == e.max {
                e.min
            } else {
                e.min + (rng.next_u64() % u64::from(e.max - e.min + 1)) as u32
            };
            for _ in 0..n {
                match &e.atom {
                    ReAtom::Lit(c) => out.push(*c),
                    ReAtom::Class(set) => {
                        out.push(set[(rng.next_u64() % set.len() as u64) as usize])
                    }
                }
            }
        }
        out
    }
}

fn parse_regex(pat: &str) -> Vec<ReElem> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut elems = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in regex strategy {pat:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "inverted range in regex strategy {pat:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex strategy {pat:?}");
                i = close + 1;
                ReAtom::Class(set)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in regex strategy {pat:?}"));
                i += 2;
                ReAtom::Lit(c)
            }
            c @ ('*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$') => {
                panic!("regex strategy {pat:?}: `{c}` is outside the supported subset")
            }
            c => {
                i += 1;
                ReAtom::Lit(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in regex strategy {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let bounds = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {n,m} lower bound"),
                    hi.trim().parse().expect("bad {n,m} upper bound"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("bad {n} count");
                    (n, n)
                }
            };
            i = close + 1;
            bounds
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in regex strategy {pat:?}");
        elems.push(ReElem { atom, min, max });
    }
    elems
}
