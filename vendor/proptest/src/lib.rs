//! Offline vendored stand-in for `proptest`.
//!
//! Implements the strategy combinators, macros and runner this workspace's
//! property tests use, with deterministic generation (seeded per test name,
//! overridable via `PROPTEST_SEED`). Key divergence from the real crate:
//! **no shrinking** — a failing case is reported verbatim with its case
//! number and the Debug rendering of every generated input, which together
//! with the fixed seed makes failures reproducible.
//!
//! Case counts honour `ProptestConfig::with_cases`, can be overridden with
//! the `PROPTEST_CASES` env var, and are capped hard under Miri so
//! interpreter runs stay tractable.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `len` (half-open, like the real crate's `SizeRange` from a
    /// `Range`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with an
/// optional formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Weighted union of strategies producing a common value type:
/// `prop_oneof![3 => a, 1 => b]` or unweighted `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Mirrors the real crate's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0i64..10, mut v in collection::vec(any::<u64>(), 1..5)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` item inside [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                $config,
                stringify!($name),
                |__rng, __desc| {
                    $(
                        let __gen = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __desc.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($pat),
                            &__gen
                        ));
                        let $pat = __gen;
                    )+
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(i64),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (-50i64..50).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -100i64..100, y in 1u64..10, f in -1.5f64..2.5) {
            prop_assert!((-100..100).contains(&x));
            prop_assert!((1..10).contains(&y));
            prop_assert!((-1.5..2.5).contains(&f), "f={}", f);
        }

        #[test]
        fn vec_lengths(mut v in crate::collection::vec(0usize..7, 2..9)) {
            v.push(0);
            prop_assert!(v.len() >= 3 && v.len() <= 9);
        }

        #[test]
        fn oneof_and_map(ops in crate::collection::vec(op(), 1..30)) {
            let mut depth = 0i64;
            for o in &ops {
                match o {
                    Op::Push(_) => depth += 1,
                    Op::Pop => depth -= 1,
                }
            }
            prop_assert!(depth >= -(ops.len() as i64));
        }

        #[test]
        fn regex_ident(s in "[a-zA-Z_][a-zA-Z0-9_]{0,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().unwrap();
            prop_assert!(first.is_ascii_alphabetic() || first == '_');
        }

        #[test]
        fn filter_respected(x in (0i64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn question_mark_and_fail() {
        crate::test_runner::run(
            ProptestConfig::with_cases(4),
            "question_mark",
            |_rng, _desc| {
                let parsed: Result<i64, TestCaseError> = "42"
                    .parse()
                    .map_err(|e| TestCaseError::fail(format!("{e}")));
                let v = parsed?;
                assert_eq!(v, 42);
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_case_panics_with_inputs() {
        crate::test_runner::run(ProptestConfig::with_cases(8), "failing", |rng, desc| {
            let x = Strategy::generate(&(0i64..5), rng);
            desc.push_str(&format!("  x = {x:?}\n"));
            prop_assert!(x > 100);
            Ok(())
        });
    }
}
