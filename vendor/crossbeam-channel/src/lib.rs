//! Offline vendored stand-in for `crossbeam-channel`.
//!
//! Implements the subset the engines use: [`bounded`] MPMC channels with
//! cloneable [`Sender`]s and [`Receiver`]s, blocking `send`/`recv` with
//! disconnect detection, and `for msg in rx` iteration. Built on a
//! `Mutex<VecDeque>` plus two condvars — not as fast as the real crate's
//! lock-free rings, but every engine pays the identical cost, so relative
//! engine comparisons are preserved.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
/// Holds the unsent message, like the real crate.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::send_timeout`]. Holds the unsent message,
/// like the real crate.
#[derive(Debug, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> std::fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "timed out waiting on send operation"),
            SendTimeoutError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendTimeoutError<T> {}

/// Error returned by [`Sender::try_send`]. Holds the unsent message,
/// like the real crate.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is full (receivers still connected).
    Full(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still connected).
    Empty,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<State<T>>,
    /// Signalled when the queue gains an item or loses all senders.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or loses all receivers.
    not_full: Condvar,
    capacity: usize,
}

struct State<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates a bounded channel with space for `cap` in-flight messages.
/// A capacity of 0 is rounded up to 1 (the real crate supports rendezvous
/// channels; nothing in this workspace uses them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            buf: VecDeque::with_capacity(cap.max(1)),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: cap.max(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Blocks until there is queue space, then enqueues `msg`. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.buf.len() < self.shared.capacity {
                state.buf.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking send: enqueues `msg` if there is queue space right
    /// now, otherwise hands it back immediately. Never waits.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.buf.len() < self.shared.capacity {
            state.buf.push_back(msg);
            self.shared.not_empty.notify_one();
            return Ok(());
        }
        Err(TrySendError::Full(msg))
    }

    /// Like [`send`](Self::send), but gives up once `timeout` has elapsed
    /// without queue space appearing. The fast path (space available) is
    /// identical to `send`: no clock is read until the channel is full.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut deadline: Option<Instant> = None;
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            if state.buf.len() < self.shared.capacity {
                state.buf.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let dl = *deadline.get_or_insert_with(|| Instant::now() + timeout);
            let now = Instant::now();
            if now >= dl {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (s, _) = self
                .shared
                .not_full
                .wait_timeout(state, dl - now)
                .unwrap_or_else(|e| e.into_inner());
            state = s;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives. Fails only when the channel is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = state.buf.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator over received messages, ending at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Borrowing message iterator (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Owning message iterator (`for msg in rx`).
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn iteration_ends_on_disconnect() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_and_resumes() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = std::thread::spawn(move || tx.send(1).map_err(|_| ()));
        // The second send blocks until we drain one slot.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(0));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn send_timeout_fast_path_and_timeout() {
        let (tx, rx) = bounded(1);
        // Fast path: space available, behaves like send.
        tx.send_timeout(1, Duration::from_millis(1)).unwrap();
        // Full channel: times out and returns the message.
        let t0 = Instant::now();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        );
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // Space frees up: a concurrent send_timeout succeeds.
        let h = std::thread::spawn(move || tx.send_timeout(3, Duration::from_secs(5)));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_never_blocks() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn send_timeout_observes_disconnect() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(
            tx.send_timeout(7, Duration::from_secs(5)),
            Err(SendTimeoutError::Disconnected(7))
        );
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        // Capacity must cover every message: all 100 are enqueued before
        // either receiver starts draining.
        let (tx, rx) = bounded(128);
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || rx2.into_iter().count());
        let a = rx.into_iter().count();
        let b = h.join().unwrap();
        assert_eq!(a + b, 100);
    }
}
