//! **From-scratch reimplementation** of the `crossbeam-epoch` API for this
//! offline workspace. This is **not** vendored upstream code: the build
//! environment has no registry access, so the subset of the API the
//! workspace uses (`Atomic` / `Owned` / `Shared` / `Guard`, `pin`,
//! `unprotected`) was rewritten here. It backs the engine's unsafe memory
//! reclamation in release builds and is therefore the most
//! safety-critical code under `vendor/` — see `vendor/README.md` for the
//! full disclosure and [`internal`] for the protocol, and note that CI
//! runs this crate's own stress suite under AddressSanitizer and
//! ThreadSanitizer (`scripts/sanitize.sh`) in addition to the workspace
//! tests.
//!
//! ## Reclamation scheme (std mode)
//!
//! Classic three-epoch EBR. Each participating thread keeps a pin count and
//! the global epoch it observed when it pinned. The global epoch may only
//! advance when every pinned participant has observed the current value;
//! garbage retired at epoch `e` is reclaimed once the global epoch reaches
//! `e + 2` (no pinned thread can still hold a reference by then).
//!
//! Collection is **amortised**, as in upstream crossbeam: every 128th
//! outermost `pin` and every 64th retirement make a *non-blocking* offer
//! to collect (internal locks are only `try_lock`ed), `unpin` never
//! collects, and [`Guard::flush`] is the explicit blocking quiesce used
//! by tests and teardown to drain all garbage. Under `cfg(miri)` the last
//! unpin additionally collects eagerly so leak-checked interpreter runs
//! end clean. The epoch words use conservative `SeqCst` orderings plus
//! the same `SeqCst` fences upstream places in `pin`/`try_advance`.
//!
//! Pointer tags are not implemented (this workspace never tags pointers).
//!
//! ## Under `cfg(loom)`
//!
//! The pointer word inside [`Atomic`] becomes a `loom` atomic, so every
//! load/store/swap is a model schedule point. Pinning becomes a no-op and
//! deferred destructors are **leaked** instead of run: reclamation
//! correctness is epoch bookkeeping (deterministic, covered by the std-mode
//! tests and Miri), while the interleavings worth exploring are the
//! pointer publications. Leaking keeps every model iteration independent —
//! shared reclamation state across iterations would break deterministic
//! schedule replay.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::sync::atomic::Ordering;

#[cfg(not(loom))]
mod internal;

#[cfg(not(loom))]
use internal as imp;

#[cfg(loom)]
mod loom_imp;

#[cfg(loom)]
use loom_imp as imp;

// ---------------------------------------------------------------------------
// Guard / pin / unprotected
// ---------------------------------------------------------------------------

/// Keeps the current thread pinned; loaded [`Shared`] pointers are safe to
/// dereference while a guard is live.
pub struct Guard {
    pub(crate) kind: imp::GuardKind,
}

impl Guard {
    /// Defers an arbitrary closure until no pinned thread can still hold
    /// references retired before it.
    ///
    /// # Safety
    /// The closure must be safe to run on any thread at any later time;
    /// the caller guarantees whatever it captures stays valid until then
    /// and is not freed twice. (Unlike the real crate this bound requires
    /// `'static`, which every epoch-managed structure here satisfies.)
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R + 'static,
    {
        imp::defer(
            self,
            imp::Deferred::new(Box::new(move || {
                f();
            })),
        );
    }

    /// Defers dropping the boxed value behind `ptr` (which must have been
    /// created by [`Owned::new`] / [`Atomic::new`]).
    ///
    /// # Safety
    /// `ptr` must be unlinked (unreachable to new readers), non-null, and
    /// not retired twice.
    pub unsafe fn defer_destroy<T: 'static>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        // SAFETY: forwarded caller contract; the allocation came from Box.
        unsafe { self.defer_unchecked(move || drop(Box::from_raw(raw))) };
    }
}

impl Guard {
    /// Runs a blocking collection pass: advances the global epoch as far
    /// as the currently pinned threads allow and frees every retirement
    /// whose grace period has elapsed.
    ///
    /// A thread holding only this guard advances the epoch by at most one
    /// step per call (its own pin pins the new epoch), so loops of
    /// `pin().flush()` drain all garbage within a few iterations once no
    /// other thread stays pinned.
    pub fn flush(&self) {
        imp::flush();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        imp::unpin(self);
    }
}

/// Pins the current thread and returns the guard.
pub fn pin() -> Guard {
    imp::pin()
}

/// Returns a guard that does **not** pin the thread.
///
/// # Safety
/// Callers must guarantee no other thread can concurrently reclaim (or
/// mutate, where relevant) anything accessed through this guard — typically
/// because they hold `&mut self` or are inside `drop`.
pub unsafe fn unprotected() -> &'static Guard {
    imp::unprotected()
}

// ---------------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------------

/// An owned heap value, not yet shared (a `Box` in disguise).
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a [`Shared`], transferring ownership into the data
    /// structure (something must later retire or free it).
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr: ptr as *const T,
            _marker: PhantomData,
        }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: still owned (into_shared forgets self before this runs).
        unsafe { drop(Box::from_raw(self.ptr)) }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: owned, live allocation.
        unsafe { &*self.ptr }
    }
}

/// A pointer loaded from an [`Atomic`], valid while its guard is pinned.
pub struct Shared<'g, T> {
    ptr: *const T,
    _marker: PhantomData<&'g ()>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null(),
            _marker: PhantomData,
        }
    }

    /// Whether this is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    /// Must be non-null and point to a live value that outlives `'g` (i.e.
    /// protected by the guard this was loaded with, or otherwise owned).
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: forwarded caller contract (non-null, live for 'g).
        unsafe { &*self.ptr }
    }

    /// Like [`deref`](Self::deref) but returns `None` when null.
    ///
    /// # Safety
    /// Same contract as `deref` for the non-null case.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: forwarded caller contract for the non-null case.
        unsafe { self.ptr.as_ref() }
    }

    /// Takes back ownership of a `Box`-allocated value.
    ///
    /// # Safety
    /// Must be non-null, allocated by [`Owned::new`] / [`Atomic::new`],
    /// unreachable to other threads, and never used again.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.ptr.is_null(), "into_owned on null Shared");
        Owned {
            ptr: self.ptr as *mut T,
        }
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(ptr: *const T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

/// Either an [`Owned`] or a [`Shared`] — anything storable in an
/// [`Atomic`].
pub trait Pointer<T> {
    /// Consumes self, yielding the raw pointer.
    fn into_raw(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_raw(self) -> *mut T {
        let p = self.ptr;
        std::mem::forget(self);
        p
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_raw(self) -> *mut T {
        self.ptr as *mut T
    }
}

/// An atomic pointer to a `T`, the linking primitive of lock-free
/// structures.
pub struct Atomic<T> {
    inner: imp::AtomicCell<T>,
}

impl<T> Atomic<T> {
    /// An atomic holding null.
    pub fn null() -> Self {
        Atomic {
            inner: imp::AtomicCell::new(std::ptr::null_mut()),
        }
    }

    /// Allocates `value` and stores the pointer.
    pub fn new(value: T) -> Self {
        Atomic {
            inner: imp::AtomicCell::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.inner.load(ord) as *const T,
            _marker: PhantomData,
        }
    }

    /// Stores a pointer.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.inner.store(new.into_raw(), ord);
    }

    /// Swaps the pointer, returning the previous value.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.inner.swap(new.into_raw(), ord) as *const T,
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic(..)")
    }
}

// SAFETY: an Atomic<T> hands out &T across threads (via Shared::deref) and
// moves T between threads on reclamation — exactly the bounds below.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above; all mutation goes through atomic instructions.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as O};
    use std::sync::Arc;

    /// Counts drops so reclamation can be observed.
    struct DropCounter(Arc<AtomicUsize>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, O::SeqCst);
        }
    }

    /// Reclamation progress is global: another test's transient pin can
    /// stall an advance, so exact-count asserts must wait it out. Each
    /// probe is a blocking flush (a single flusher advances one epoch per
    /// call, so a few probes drain the two-epoch grace period).
    fn eventually(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..100_000 {
            if cond() {
                return;
            }
            pin().flush();
            std::thread::yield_now();
        }
        panic!("timed out waiting for: {what}");
    }

    #[test]
    fn deferred_destruction_runs_after_unpin() {
        let drops = Arc::new(AtomicUsize::new(0));
        let slot: Atomic<DropCounter> = Atomic::new(DropCounter(Arc::clone(&drops)));
        {
            let guard = pin();
            let old = slot.swap(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::AcqRel,
                &guard,
            );
            // SAFETY: `old` was just unlinked and is never touched again.
            unsafe { guard.defer_destroy(old) };
            assert_eq!(drops.load(O::SeqCst), 0, "freed while pinned");
        }
        // Once no pin blocks the epoch, flush probes reclaim it.
        eventually("swapped-out value reclaimed", || drops.load(O::SeqCst) == 1);
        // Free the final value manually, as data structures do in Drop.
        // SAFETY: the test owns `slot` exclusively here; the stored pointer
        // came from Owned::new and is dropped exactly once.
        unsafe {
            let guard = unprotected();
            let last = slot.load(Ordering::Relaxed, guard);
            drop(last.into_owned());
        }
        assert_eq!(drops.load(O::SeqCst), 2);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(Atomic::new(DropCounter(Arc::clone(&drops))));

        let reader_pinned = Arc::new(std::sync::Barrier::new(2));
        let writer_done = Arc::new(std::sync::Barrier::new(2));
        let slot2 = Arc::clone(&slot);
        let drops2 = Arc::clone(&drops);
        let (rp, wd) = (Arc::clone(&reader_pinned), Arc::clone(&writer_done));

        let reader = std::thread::spawn(move || {
            let guard = pin();
            let shared = slot2.load(Ordering::Acquire, &guard);
            rp.wait(); // writer may now retire the value
            wd.wait(); // writer has retired it
                       // Still pinned: the value must not have been dropped.
            assert_eq!(drops2.load(O::SeqCst), 0);
            // SAFETY: loaded under this guard, still pinned.
            let _ = unsafe { shared.deref() };
        });

        reader_pinned.wait();
        {
            let guard = pin();
            let old = slot.swap(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::AcqRel,
                &guard,
            );
            // SAFETY: unlinked, retired once.
            unsafe { guard.defer_destroy(old) };
        }
        writer_done.wait();
        reader.join().unwrap();

        // Reader unpinned; collection can now reclaim the old value.
        eventually("old value reclaimed after reader unpin", || {
            drops.load(O::SeqCst) == 1
        });
        // Cleanup the current value.
        // SAFETY: reader joined, so the test has exclusive access; the
        // pointer came from Owned::new and is dropped exactly once.
        unsafe {
            let guard = unprotected();
            drop(slot.load(Ordering::Relaxed, guard).into_owned());
        }
    }

    #[test]
    fn unprotected_defer_runs_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&drops);
        // SAFETY: single-threaded test; the closure captures only an Arc
        // and is safe to run at any time.
        unsafe {
            let guard = unprotected();
            guard.defer_unchecked(move || {
                d2.fetch_add(1, O::SeqCst);
            });
        }
        assert_eq!(drops.load(O::SeqCst), 1);
    }

    #[test]
    fn many_threads_defer_without_leaks_or_double_free() {
        let drops = Arc::new(AtomicUsize::new(0));
        let retired = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let drops = Arc::clone(&drops);
                let retired = Arc::clone(&retired);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let guard = pin();
                        let owned = Owned::new(DropCounter(Arc::clone(&drops)));
                        let shared = owned.into_shared(&guard);
                        retired.fetch_add(1, O::SeqCst);
                        // SAFETY: never published; sole owner retires it.
                        unsafe { guard.defer_destroy(shared) };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All threads idle: collection flushes everything that was retired.
        eventually("all retirements reclaimed", || {
            drops.load(O::SeqCst) == retired.load(O::SeqCst)
        });
    }

    /// Canary payload: the destructor scrambles the fields, so a reader
    /// that dereferences a prematurely reclaimed value trips the invariant
    /// check even without a sanitizer (and ASan/TSan catch the raw
    /// use-after-free / race directly).
    struct Canary {
        a: u64,
        b: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Canary {
        fn new(n: u64, drops: Arc<AtomicUsize>) -> Self {
            Canary {
                a: n,
                b: n ^ 0xDEAD_BEEF_DEAD_BEEF,
                drops,
            }
        }
    }

    impl Drop for Canary {
        fn drop(&mut self) {
            self.a = u64::MAX;
            self.b = 0;
            self.drops.fetch_add(1, O::SeqCst);
        }
    }

    /// Premature-reclamation stress: concurrent readers continuously pin,
    /// load and validate the live value while a writer swaps and retires
    /// at full speed. This is the test `scripts/sanitize.sh` runs under
    /// AddressSanitizer and ThreadSanitizer to exercise the EBR engine
    /// itself (amortised collection included) rather than its callers.
    #[test]
    fn stress_readers_never_observe_reclaimed_values() {
        use std::sync::atomic::AtomicBool;

        let drops = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(Atomic::new(Canary::new(0, Arc::clone(&drops))));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(O::SeqCst) {
                        let guard = pin();
                        let shared = slot.load(Ordering::Acquire, &guard);
                        // SAFETY: loaded under the pin; reclamation of the
                        // previous value must wait for this guard.
                        let c = unsafe { shared.deref() };
                        assert_eq!(c.a ^ 0xDEAD_BEEF_DEAD_BEEF, c.b, "torn or freed canary");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        const SWAPS: usize = if cfg!(miri) { 300 } else { 100_000 };
        for n in 1..=SWAPS as u64 {
            let guard = pin();
            let old = slot.swap(
                Owned::new(Canary::new(n, Arc::clone(&drops))),
                Ordering::AcqRel,
                &guard,
            );
            // SAFETY: `old` was just unlinked by the swap and is retired
            // exactly once.
            unsafe { guard.defer_destroy(old) };
        }
        stop.store(true, O::SeqCst);
        for h in readers {
            assert!(h.join().unwrap() > 0, "reader starved");
        }

        // Quiesce: everything retired (all but the live value) reclaims.
        eventually("all swapped-out canaries reclaimed", || {
            drops.load(O::SeqCst) == SWAPS
        });
        // SAFETY: readers joined; the test owns the slot exclusively and
        // the final value is dropped exactly once.
        unsafe {
            let guard = unprotected();
            drop(slot.load(Ordering::Relaxed, guard).into_owned());
        }
        assert_eq!(drops.load(O::SeqCst), SWAPS + 1);
    }
}
