//! Loom-mode backend: pointer words become loom atomics (every operation a
//! schedule point); pinning is a no-op and deferred destructors are leaked
//! so model iterations stay independent (see the crate docs).

use std::sync::atomic::Ordering;

use crate::Guard;

/// The pointer word of an `Atomic<T>`; each op is a loom schedule point.
pub(crate) struct AtomicCell<T>(loom::sync::atomic::AtomicPtr<T>);

impl<T> AtomicCell<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        AtomicCell(loom::sync::atomic::AtomicPtr::new(ptr))
    }

    pub(crate) fn load(&self, ord: Ordering) -> *mut T {
        self.0.load(ord)
    }

    pub(crate) fn store(&self, ptr: *mut T, ord: Ordering) {
        self.0.store(ptr, ord);
    }

    pub(crate) fn swap(&self, ptr: *mut T, ord: Ordering) -> *mut T {
        self.0.swap(ptr, ord)
    }
}

/// A retired destructor (leaked in loom mode).
pub(crate) struct Deferred(#[allow(dead_code)] Box<dyn FnOnce()>);

// SAFETY: never actually sent in loom mode (leaked in place); kept for
// signature parity with the std backend.
unsafe impl Send for Deferred {}

impl Deferred {
    pub(crate) fn new(f: Box<dyn FnOnce()>) -> Self {
        Deferred(f)
    }
}

/// What a `Guard` holds — nothing, in loom mode.
pub(crate) enum GuardKind {
    /// From `pin()`.
    Pinned,
    /// From `unprotected()`.
    Unprotected,
}

pub(crate) fn pin() -> Guard {
    Guard {
        kind: GuardKind::Pinned,
    }
}

pub(crate) fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        kind: GuardKind::Unprotected,
    };
    &UNPROTECTED
}

pub(crate) fn defer(guard: &Guard, d: Deferred) {
    match &guard.kind {
        // Exclusive context (Drop): run immediately, same as std mode —
        // structures rely on this to actually free in their destructors.
        GuardKind::Unprotected => (d.0)(),
        // Model execution: leak. Reclamation timing is out of scope for
        // the interleavings being explored, and freeing here would require
        // shared epoch state across model iterations (breaking replay).
        GuardKind::Pinned => std::mem::forget(d),
    }
}

pub(crate) fn unpin(_guard: &mut Guard) {}

/// Nothing to collect in loom mode (deferred destructors are leaked).
pub(crate) fn flush() {}
