//! Std-mode reclamation engine: classic three-epoch EBR with eager
//! collection on the last unpin (see the crate docs for the scheme).

use std::cell::RefCell;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::Guard;

/// The pointer word of an `Atomic<T>`; in std mode a plain `AtomicPtr`
/// honouring the caller's orderings.
pub(crate) struct AtomicCell<T>(AtomicPtr<T>);

impl<T> AtomicCell<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        AtomicCell(AtomicPtr::new(ptr))
    }

    pub(crate) fn load(&self, ord: Ordering) -> *mut T {
        self.0.load(ord)
    }

    pub(crate) fn store(&self, ptr: *mut T, ord: Ordering) {
        self.0.store(ptr, ord);
    }

    pub(crate) fn swap(&self, ptr: *mut T, ord: Ordering) -> *mut T {
        self.0.swap(ptr, ord)
    }
}

/// A retired destructor. The `Send` promise is the caller's (that is what
/// makes `defer_unchecked` unsafe): destructors run on whichever thread
/// performs the collection.
pub(crate) struct Deferred(Box<dyn FnOnce()>);

// SAFETY: see type docs — transferred under the defer_unchecked contract.
unsafe impl Send for Deferred {}

impl Deferred {
    pub(crate) fn new(f: Box<dyn FnOnce()>) -> Self {
        Deferred(f)
    }

    fn call(self) {
        (self.0)();
    }
}

/// Per-thread epoch record. `active` counts pin nesting; `epoch` is the
/// global epoch observed by the current outermost pin.
pub(crate) struct Participant {
    active: AtomicUsize,
    epoch: AtomicUsize,
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// (epoch at retirement, destructor) pairs.
    garbage: Mutex<Vec<(usize, Deferred)>>,
    /// Fast-path check so idle unpins skip the garbage mutex.
    garbage_count: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
        garbage_count: AtomicUsize::new(0),
    })
}

thread_local! {
    static PARTICIPANT: RefCell<Option<Arc<Participant>>> = const { RefCell::new(None) };
}

fn participant() -> Arc<Participant> {
    PARTICIPANT.with(|p| {
        let mut slot = p.borrow_mut();
        if let Some(ref arc) = *slot {
            return Arc::clone(arc);
        }
        let arc = Arc::new(Participant {
            active: AtomicUsize::new(0),
            epoch: AtomicUsize::new(0),
        });
        global().participants.lock().unwrap().push(Arc::clone(&arc));
        *slot = Some(Arc::clone(&arc));
        arc
    })
}

/// What a `Guard` holds.
pub(crate) enum GuardKind {
    /// A real pin on this thread's participant record.
    Pinned(Arc<Participant>),
    /// `unprotected()`: no participation.
    Unprotected,
}

pub(crate) fn pin() -> Guard {
    let p = participant();
    let prev = p.active.fetch_add(1, Ordering::SeqCst);
    if prev == 0 {
        // Publish the epoch this pin is entering. The reload loop closes
        // the window where the global epoch advances between our read and
        // our store — after it, either our stored epoch is current, or a
        // concurrent advancer saw us active and stalled.
        loop {
            let e = global().epoch.load(Ordering::SeqCst);
            p.epoch.store(e, Ordering::SeqCst);
            if global().epoch.load(Ordering::SeqCst) == e {
                break;
            }
        }
    }
    Guard {
        kind: GuardKind::Pinned(p),
    }
}

pub(crate) fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        kind: GuardKind::Unprotected,
    };
    &UNPROTECTED
}

pub(crate) fn defer(guard: &Guard, d: Deferred) {
    match &guard.kind {
        // With no pin there is no grace period to wait for; run now. This
        // matches how `unprotected()` is used: exclusive contexts (Drop).
        GuardKind::Unprotected => d.call(),
        GuardKind::Pinned(_) => {
            let g = global();
            let e = g.epoch.load(Ordering::SeqCst);
            g.garbage.lock().unwrap().push((e, d));
            g.garbage_count.fetch_add(1, Ordering::SeqCst);
        }
    }
}

pub(crate) fn unpin(guard: &mut Guard) {
    if let GuardKind::Pinned(p) = &guard.kind {
        let prev = p.active.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1, "unpin without pin");
        if prev == 1 && global().garbage_count.load(Ordering::SeqCst) > 0 {
            collect();
        }
    }
}

/// Advances the global epoch if every pinned participant has observed the
/// current one; also prunes records of exited threads.
fn try_advance() -> bool {
    let g = global();
    let mut parts = g.participants.lock().unwrap();
    // A record owned solely by the global list belongs to an exited thread.
    parts.retain(|p| Arc::strong_count(p) > 1 || p.active.load(Ordering::SeqCst) > 0);
    let e = g.epoch.load(Ordering::SeqCst);
    for p in parts.iter() {
        if p.active.load(Ordering::SeqCst) > 0 && p.epoch.load(Ordering::SeqCst) != e {
            return false;
        }
    }
    // Single-advancer discipline: the participants lock is held, so only
    // one thread can pass the check above for a given epoch value.
    g.epoch.store(e + 1, Ordering::SeqCst);
    true
}

/// Advances as far as possible and runs every destructor whose grace
/// period (2 epochs past retirement) has elapsed.
fn collect() {
    let g = global();
    while g.garbage_count.load(Ordering::SeqCst) > 0 {
        if !try_advance() {
            break;
        }
        let e = g.epoch.load(Ordering::SeqCst);
        // Drain eligible garbage while holding the lock, run it after —
        // destructors must never run under the garbage mutex.
        let ready: Vec<Deferred> = {
            let mut garbage = g.garbage.lock().unwrap();
            let mut ready = Vec::new();
            garbage.retain_mut(|(retired, d)| {
                if *retired + 2 <= e {
                    // Replace with a no-op so retain can move it out.
                    let taken = std::mem::replace(d, Deferred(Box::new(|| {})));
                    ready.push(taken);
                    false
                } else {
                    true
                }
            });
            g.garbage_count.fetch_sub(ready.len(), Ordering::SeqCst);
            ready
        };
        for d in ready {
            d.call();
        }
    }
}
