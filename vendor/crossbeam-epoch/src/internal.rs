//! Std-mode reclamation engine: classic three-epoch EBR (see the crate
//! docs for the scheme and for how this reimplementation diverges from
//! upstream crossbeam-epoch).
//!
//! ## Hot-path cost model
//!
//! Readers must stay wait-free on the pin/unpin fast path — the engine's
//! read latency is part of what this repository measures:
//!
//! - `pin` touches only the calling thread's participant record (one RMW,
//!   one epoch publish, one `SeqCst` fence). Every `PIN_INTERVAL`-th
//!   outermost pin it *offers* to collect, using `try_lock` so it can
//!   never block behind another thread.
//! - `unpin` is a single `fetch_sub`. It never collects (except under
//!   `cfg(miri)`, where eager collection keeps leak-checked interpreter
//!   runs clean and performance is irrelevant).
//! - `defer` (a writer-side operation in this workspace: skip-list
//!   eviction and RCU replacement) appends under the garbage mutex and
//!   every `DEFER_INTERVAL`-th retirement offers to collect, again
//!   non-blocking. The retiring thread thus pays the amortised
//!   reclamation cost, matching the paper's design where the single
//!   writer owns expiration work.
//! - `Guard::flush` is the explicit quiescence API: a *blocking* collect
//!   that advances the epoch as far as currently possible. Tests and
//!   teardown paths loop it to drain all garbage.
//!
//! The global mutexes (participant registry, garbage queue) are therefore
//! confined to registration (once per thread), retirement, and collection
//! — never to the read-only pin/unpin path.
//!
//! ## Ordering
//!
//! The epoch protocol itself is deliberately conservative: participant
//! and global epoch words use `SeqCst` RMWs/stores, and — mirroring
//! upstream crossbeam — `pin` issues a `SeqCst` fence after publishing
//! its epoch and `try_advance` issues one before reading participant
//! records, so a collector that misses a concurrent pin is guaranteed
//! that the pinning thread's subsequent loads see every store that
//! happened before the collector's check.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::Guard;

/// Outermost pins between collection offers on the reader path (the same
/// amortisation interval upstream crossbeam-epoch uses).
const PIN_INTERVAL: u64 = 128;

/// Retirements between collection offers on the defer path.
const DEFER_INTERVAL: u64 = 64;

/// The pointer word of an `Atomic<T>`; in std mode a plain `AtomicPtr`
/// honouring the caller's orderings.
pub(crate) struct AtomicCell<T>(AtomicPtr<T>);

impl<T> AtomicCell<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        AtomicCell(AtomicPtr::new(ptr))
    }

    pub(crate) fn load(&self, ord: Ordering) -> *mut T {
        self.0.load(ord)
    }

    pub(crate) fn store(&self, ptr: *mut T, ord: Ordering) {
        self.0.store(ptr, ord);
    }

    pub(crate) fn swap(&self, ptr: *mut T, ord: Ordering) -> *mut T {
        self.0.swap(ptr, ord)
    }
}

/// A retired destructor. The `Send` promise is the caller's (that is what
/// makes `defer_unchecked` unsafe): destructors run on whichever thread
/// performs the collection.
pub(crate) struct Deferred(Box<dyn FnOnce()>);

// SAFETY: see type docs — transferred under the defer_unchecked contract.
unsafe impl Send for Deferred {}

impl Deferred {
    pub(crate) fn new(f: Box<dyn FnOnce()>) -> Self {
        Deferred(f)
    }

    fn call(self) {
        (self.0)();
    }
}

/// Per-thread epoch record. `active` counts pin nesting; `epoch` is the
/// global epoch observed by the current outermost pin.
pub(crate) struct Participant {
    active: AtomicUsize,
    epoch: AtomicUsize,
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// (epoch at retirement, destructor) pairs.
    garbage: Mutex<Vec<(usize, Deferred)>>,
    /// Fast-path check so collection offers with no garbage are free.
    garbage_count: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
        garbage_count: AtomicUsize::new(0),
    })
}

thread_local! {
    static PARTICIPANT: RefCell<Option<Arc<Participant>>> = const { RefCell::new(None) };
    /// Outermost pins on this thread, for the 1-in-`PIN_INTERVAL` offer.
    static PIN_TICK: Cell<u64> = const { Cell::new(0) };
    /// Retirements by this thread, for the 1-in-`DEFER_INTERVAL` offer.
    static DEFER_TICK: Cell<u64> = const { Cell::new(0) };
}

fn participant() -> Arc<Participant> {
    PARTICIPANT.with(|p| {
        let mut slot = p.borrow_mut();
        if let Some(ref arc) = *slot {
            return Arc::clone(arc);
        }
        let arc = Arc::new(Participant {
            active: AtomicUsize::new(0),
            epoch: AtomicUsize::new(0),
        });
        global().participants.lock().unwrap().push(Arc::clone(&arc));
        *slot = Some(Arc::clone(&arc));
        arc
    })
}

/// What a `Guard` holds.
pub(crate) enum GuardKind {
    /// A real pin on this thread's participant record.
    Pinned(Arc<Participant>),
    /// `unprotected()`: no participation.
    Unprotected,
}

pub(crate) fn pin() -> Guard {
    let p = participant();
    let prev = p.active.fetch_add(1, Ordering::SeqCst);
    if prev == 0 {
        // Publish the epoch this pin is entering. The reload loop closes
        // the window where the global epoch advances between our read and
        // our store — after it, either our stored epoch is current, or a
        // concurrent advancer saw us active and stalled.
        loop {
            let e = global().epoch.load(Ordering::SeqCst);
            p.epoch.store(e, Ordering::SeqCst);
            if global().epoch.load(Ordering::SeqCst) == e {
                break;
            }
        }
        // Pair with the fence in `try_advance`: everything the data
        // structure loads after this point is at least as new as what any
        // collector that failed to observe this pin had already seen.
        fence(Ordering::SeqCst);
        // Amortised reader-side reclamation, as in upstream crossbeam:
        // a 1-in-PIN_INTERVAL *non-blocking* offer. A reader never waits
        // on another thread's collection.
        let tick = PIN_TICK.with(|t| {
            let n = t.get().wrapping_add(1);
            t.set(n);
            n
        });
        if tick.is_multiple_of(PIN_INTERVAL) && global().garbage_count.load(Ordering::SeqCst) > 0 {
            collect(false);
        }
    }
    Guard {
        kind: GuardKind::Pinned(p),
    }
}

pub(crate) fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        kind: GuardKind::Unprotected,
    };
    &UNPROTECTED
}

pub(crate) fn defer(guard: &Guard, d: Deferred) {
    match &guard.kind {
        // With no pin there is no grace period to wait for; run now. This
        // matches how `unprotected()` is used: exclusive contexts (Drop).
        GuardKind::Unprotected => d.call(),
        GuardKind::Pinned(_) => {
            let g = global();
            let e = g.epoch.load(Ordering::SeqCst);
            g.garbage.lock().unwrap().push((e, d));
            g.garbage_count.fetch_add(1, Ordering::SeqCst);
            // The retiring thread pays the amortised collection cost.
            let tick = DEFER_TICK.with(|t| {
                let n = t.get().wrapping_add(1);
                t.set(n);
                n
            });
            if tick.is_multiple_of(DEFER_INTERVAL) {
                collect(false);
            }
        }
    }
}

pub(crate) fn unpin(guard: &mut Guard) {
    if let GuardKind::Pinned(p) = &guard.kind {
        let prev = p.active.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1, "unpin without pin");
        // Never collect on the unpin path: collection work on read-only
        // threads would distort the read-latency profile this repository
        // exists to measure. Under Miri, eager collection on the last
        // unpin keeps leak-checked interpreter runs clean instead
        // (performance is irrelevant there).
        #[cfg(miri)]
        if prev == 1 && global().garbage_count.load(Ordering::SeqCst) > 0 {
            collect(true);
        }
    }
}

/// Runs a full blocking collection (for `Guard::flush`).
pub(crate) fn flush() {
    if global().garbage_count.load(Ordering::SeqCst) > 0 {
        collect(true);
    }
}

/// Advances the global epoch if every pinned participant has observed the
/// current one; also prunes records of exited threads. `blocking` decides
/// whether to wait for the registry lock; `None` means the lock was busy
/// (only possible when non-blocking).
fn try_advance(blocking: bool) -> Option<bool> {
    let g = global();
    let mut parts = if blocking {
        g.participants.lock().unwrap()
    } else {
        g.participants.try_lock().ok()?
    };
    // Pair with the fence in `pin`: a pin not visible to the loop below
    // ordered its subsequent loads after this point, so advancing (and
    // later freeing) cannot strand that reader with stale pointers.
    fence(Ordering::SeqCst);
    // A record owned solely by the global list belongs to an exited thread.
    parts.retain(|p| Arc::strong_count(p) > 1 || p.active.load(Ordering::SeqCst) > 0);
    let e = g.epoch.load(Ordering::SeqCst);
    for p in parts.iter() {
        if p.active.load(Ordering::SeqCst) > 0 && p.epoch.load(Ordering::SeqCst) != e {
            return Some(false);
        }
    }
    // Single-advancer discipline: the participants lock is held, so only
    // one thread can pass the check above for a given epoch value.
    g.epoch.store(e + 1, Ordering::SeqCst);
    Some(true)
}

/// Advances as far as possible and runs every destructor whose grace
/// period (2 epochs past retirement) has elapsed. When `blocking` is
/// false both internal locks are only tried, so the offer from a reader's
/// pin can never stall behind another thread.
fn collect(blocking: bool) {
    let g = global();
    while g.garbage_count.load(Ordering::SeqCst) > 0 {
        match try_advance(blocking) {
            Some(true) => {}
            // Epoch stalled on a straggling pin, or (non-blocking) the
            // registry was busy — someone else is already collecting.
            Some(false) | None => break,
        }
        let e = g.epoch.load(Ordering::SeqCst);
        // Drain eligible garbage while holding the lock, run it after —
        // destructors must never run under the garbage mutex.
        let ready: Vec<Deferred> = {
            let mut garbage = if blocking {
                g.garbage.lock().unwrap()
            } else {
                match g.garbage.try_lock() {
                    Ok(l) => l,
                    Err(_) => break,
                }
            };
            let mut ready = Vec::new();
            garbage.retain_mut(|(retired, d)| {
                if *retired + 2 <= e {
                    // Replace with a no-op so retain can move it out.
                    let taken = std::mem::replace(d, Deferred(Box::new(|| {})));
                    ready.push(taken);
                    false
                } else {
                    true
                }
            });
            g.garbage_count.fetch_sub(ready.len(), Ordering::SeqCst);
            ready
        };
        for d in ready {
            d.call();
        }
    }
}
