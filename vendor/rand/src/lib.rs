//! Offline vendored stand-in for `rand` 0.8.
//!
//! Implements the subset the workload generators and tests use: a
//! deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! [`Rng::gen_bool`], [`Rng::gen`] for primitives, and
//! [`distributions::Uniform`]. Stream contents differ from the real crate
//! (different PRNG), but every generator in this workspace is seeded, so
//! runs remain reproducible.

#![warn(missing_docs)]

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        distributions::unit_f64(self.next_u64()) < p
    }

    /// A sample of the [`distributions::Standard`] distribution for `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A sample of an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**.
    ///
    /// Not the real crate's ChaCha12 — streams differ — but passes the
    /// statistical bar for workload synthesis and is much cheaper.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and range sampling.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution producing values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type (full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Maps 64 random bits to `[0, 1)` with 53-bit precision.
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform distribution over a half-open range `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd + std::fmt::Debug> Uniform<T> {
        /// Creates the distribution. Panics if `low >= high`, like the real
        /// crate.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * unit_f64(rng.next_u64())
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    let span = (self.high as i128 - self.low as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.low as i128 + v as i128) as $t
                }
            }
        )*};
    }
    uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// A range usable with [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl SampleRange<f64> for std::ops::Range<f64> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            self.start + (self.end - self.start) * unit_f64(rng.next_u64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0u64..=3);
            assert!(w <= 3);
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(-100.0f64, 100.0);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((-100.0..100.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < -90.0 && max > 90.0);
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
