//! Offline vendored stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! minimal API surface it actually uses: [`Bytes`], an immutable, cheaply
//! cloneable byte buffer. Cloning shares the underlying allocation through an
//! `Arc`, matching the real crate's zero-copy clone semantics for the
//! `Vec<u8>`-backed case (slicing APIs are omitted — nothing here uses them).

#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable, cheaply cloneable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn empty_and_len() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![0u8; 64]).len(), 64);
    }
}
