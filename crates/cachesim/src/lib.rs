//! # oij-cachesim — software LLC model
//!
//! The paper explains two throughput cliffs (Figures 8b and 13d) with
//! hardware **last-level-cache miss counters**: as the number of unique
//! keys grows, the per-join touched footprint (`#keys × window`) exceeds
//! the LLC and misses surge. Reading PMU counters is neither portable nor
//! possible in many CI environments, so this crate provides the standard
//! software stand-in: a **set-associative LRU cache simulator** fed with
//! the tuple-buffer addresses the engines actually touch. The simulator
//! reproduces the same footprint-driven miss growth, which is all the
//! paper's argument needs.
//!
//! The default geometry matches the paper's Intel Xeon Gold 6252:
//! 35.75 MB, 11-way, 64-byte lines.
//!
//! Engines run with instrumentation **off** by default (zero cost); the
//! benchmark harness enables it for the two miss-rate figures.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes (power of two).
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// The LLC of the paper's evaluation machine (Xeon Gold 6252):
    /// 35.75 MB, 11-way, 64 B lines.
    pub fn xeon_gold_6252_llc() -> Self {
        CacheConfig {
            size_bytes: 35 * 1024 * 1024 + 768 * 1024, // 35.75 MB
            line_bytes: 64,
            associativity: 11,
        }
    }

    /// A small cache for tests (4 KiB, 4-way, 64 B lines).
    pub fn tiny() -> Self {
        CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            associativity: 4,
        }
    }

    /// Number of sets implied by the geometry (at least 1).
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.associativity)).max(1)
    }
}

/// A set-associative LRU cache simulator counting hits and misses.
///
/// Not thread-safe by design: each joiner owns one simulator (modelling its
/// slice of the shared LLC) and the harness sums the counters afterwards.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl CacheSim {
    /// Builds a simulator for the given geometry. The set count is rounded
    /// down to a power of two so set selection is a mask.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(config.associativity > 0, "associativity must be positive");
        let raw_sets = config.sets();
        let sets = if raw_sets.is_power_of_two() {
            raw_sets
        } else {
            (raw_sets.next_power_of_two() >> 1).max(1)
        };
        CacheSim {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            assoc: config.associativity,
            tags: vec![u64::MAX; sets * config.associativity],
            stamps: vec![0; sets * config.associativity],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Simulates one access to `addr` covering `bytes` bytes (every covered
    /// line is accessed). Returns the number of misses incurred.
    pub fn access(&mut self, addr: usize, bytes: usize) -> u64 {
        let first = (addr as u64) >> self.line_shift;
        let last = (addr as u64 + bytes.max(1) as u64 - 1) >> self.line_shift;
        let mut misses = 0;
        for line in first..=last {
            if !self.touch_line(line) {
                misses += 1;
            }
        }
        misses
    }

    /// Touches one line address; returns `true` on hit.
    fn touch_line(&mut self, line: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];

        // Hit path: refresh LRU stamp.
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return true;
        }

        // Miss: evict LRU way.
        self.misses += 1;
        let lru = (0..self.assoc)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("assoc > 0");
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        false
    }

    /// Total simulated line accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total simulated misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0.0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets the counters but keeps cache contents (for warmup phases).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivation() {
        let c = CacheConfig::xeon_gold_6252_llc();
        // 35.75MB / (64B * 11) = 53248 sets
        assert_eq!(c.sets(), 53_248);
        assert_eq!(CacheConfig::tiny().sets(), 16);
    }

    #[test]
    fn repeated_access_hits() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        assert_eq!(sim.access(0x1000, 8), 1); // cold miss
        assert_eq!(sim.access(0x1000, 8), 0); // hit
        assert_eq!(sim.access(0x1004, 8), 0); // same line → hit
        assert_eq!(sim.misses(), 1);
        assert_eq!(sim.accesses(), 3);
    }

    #[test]
    fn access_spanning_lines_touches_each() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        // 128 bytes from a line-aligned address = 2 lines.
        assert_eq!(sim.access(0x2000, 128), 2);
        assert_eq!(sim.accesses(), 2);
        // Unaligned 64B spanning two lines.
        assert_eq!(sim.access(0x3020, 64), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // tiny: 16 sets, 4 ways, 64B lines. Same set: addresses 64*16 apart.
        let mut sim = CacheSim::new(CacheConfig::tiny());
        let stride = 64 * 16;
        for i in 0..4 {
            assert_eq!(sim.access(i * stride, 1), 1); // fill set 0
        }
        for i in 0..4 {
            assert_eq!(sim.access(i * stride, 1), 0, "way {i} resident");
        }
        assert_eq!(sim.access(4 * stride, 1), 1); // evicts line 0 (LRU)
        assert_eq!(sim.access(0, 1), 1); // line 0 gone; its refill evicts the next LRU (line 16)
        assert_eq!(sim.access(4 * stride, 1), 0); // line 64 still resident
        assert_eq!(sim.access(stride, 1), 1); // line 16 was the second victim
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        // Touch 16 KiB (4× capacity) cyclically: after warmup every access misses.
        for _round in 0..4 {
            for line in 0..256u64 {
                sim.access((line * 64) as usize, 1);
            }
        }
        sim.reset_counters();
        for line in 0..256u64 {
            sim.access((line * 64) as usize, 1);
        }
        assert_eq!(sim.miss_ratio(), 1.0);
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        for _ in 0..2 {
            for line in 0..32u64 {
                sim.access((line * 64) as usize, 1); // 2 KiB, fits in 4 KiB
            }
        }
        sim.reset_counters();
        for line in 0..32u64 {
            sim.access((line * 64) as usize, 1);
        }
        assert_eq!(sim.misses(), 0);
    }

    #[test]
    fn footprint_driven_miss_growth() {
        // The property the paper's Figures 8b/13d rely on: with fixed total
        // accesses, a larger key footprint produces more misses.
        let misses_for_keys = |keys: usize| {
            let mut sim = CacheSim::new(CacheConfig::tiny());
            let mut x = 1u64;
            for _ in 0..100_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = (x >> 32) as usize % keys;
                sim.access(key * 256, 64); // each key owns a 256B buffer
            }
            sim.misses()
        };
        let few = misses_for_keys(8);
        let many = misses_for_keys(4096);
        assert!(
            many > few * 10,
            "expected strong miss growth: few={few} many={many}"
        );
    }
}
