//! Property tests: the set-associative LRU simulator must agree with a
//! naive reference model on arbitrary access traces.

use std::collections::HashMap;

use oij_cachesim::{CacheConfig, CacheSim};
use proptest::prelude::*;

/// Naive reference: per set, a map line→last-use stamp; evict the smallest
/// stamp when over capacity.
struct RefCache {
    sets: Vec<HashMap<u64, u64>>,
    set_mask: u64,
    line_shift: u32,
    assoc: usize,
    clock: u64,
    misses: u64,
    accesses: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let raw_sets = config.sets();
        let sets = if raw_sets.is_power_of_two() {
            raw_sets
        } else {
            (raw_sets.next_power_of_two() >> 1).max(1)
        };
        RefCache {
            sets: vec![HashMap::new(); sets],
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            assoc: config.associativity,
            clock: 0,
            misses: 0,
            accesses: 0,
        }
    }

    fn access(&mut self, addr: usize, bytes: usize) {
        let first = (addr as u64) >> self.line_shift;
        let last = (addr as u64 + bytes.max(1) as u64 - 1) >> self.line_shift;
        for line in first..=last {
            self.accesses += 1;
            self.clock += 1;
            let set = &mut self.sets[(line & self.set_mask) as usize];
            if let std::collections::hash_map::Entry::Occupied(mut hit) = set.entry(line) {
                hit.insert(self.clock);
                continue;
            }
            self.misses += 1;
            if set.len() >= self.assoc {
                let victim = *set
                    .iter()
                    .min_by_key(|(_, &stamp)| stamp)
                    .map(|(line, _)| line)
                    .expect("non-empty");
                set.remove(&victim);
            }
            set.insert(line, self.clock);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simulator equals the reference model on random traces over a space
    /// larger than the cache (forcing evictions).
    #[test]
    fn simulator_matches_reference(
        trace in proptest::collection::vec((0usize..32_768, 1usize..256), 1..2_000),
    ) {
        let config = CacheConfig::tiny();
        let mut sim = CacheSim::new(config);
        let mut reference = RefCache::new(config);
        for &(addr, bytes) in &trace {
            sim.access(addr, bytes);
            reference.access(addr, bytes);
        }
        prop_assert_eq!(sim.accesses(), reference.accesses);
        prop_assert_eq!(sim.misses(), reference.misses);
    }

    /// Misses never exceed accesses and replays are deterministic.
    #[test]
    fn determinism_and_bounds(
        trace in proptest::collection::vec((0usize..1_000_000, 1usize..128), 1..500),
    ) {
        let run = |t: &[(usize, usize)]| {
            let mut sim = CacheSim::new(CacheConfig::xeon_gold_6252_llc());
            for &(a, b) in t {
                sim.access(a, b);
            }
            (sim.accesses(), sim.misses())
        };
        let (a1, m1) = run(&trace);
        let (a2, m2) = run(&trace);
        prop_assert_eq!((a1, m1), (a2, m2));
        prop_assert!(m1 <= a1);
    }
}
