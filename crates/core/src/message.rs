//! Internal driver → joiner channel messages.

use std::time::Instant;

use oij_common::{Side, Timestamp, Tuple};

/// One unit of work handed to a joiner.
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// A data tuple.
    Data(Box<DataMsg>),
    /// Periodic watermark broadcast so that joiners receiving little or no
    /// data still advance their published progress (enabling expiration
    /// and watermark-mode emission on their teammates).
    Heartbeat(Timestamp),
    /// End of input. After receiving this a joiner drains its pending
    /// state and reports its statistics.
    Flush,
}

/// The payload of a data message. Boxed to keep the channel slot small.
#[derive(Debug, Clone)]
pub(crate) struct DataMsg {
    /// Which stream the tuple belongs to.
    pub side: Side,
    /// The tuple.
    pub tuple: Tuple,
    /// Global arrival sequence number.
    pub seq: u64,
    /// Wall-clock instant the driver accepted the tuple (latency anchor).
    pub arrival: Instant,
    /// The driver's watermark **before** observing this tuple. Joiners use
    /// it for expiration and, in watermark emission mode, for deciding when
    /// pending base tuples are complete. Pre-observation semantics make
    /// `tuple.ts > watermark + lateness` the exact "this tuple advances the
    /// maximum" test (see Scale-OIJ's late-insert hint).
    pub watermark: Timestamp,
}
