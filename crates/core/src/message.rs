//! Internal driver → joiner channel messages.

use std::time::Instant;

use oij_common::{Side, Timestamp, Tuple};

/// One unit of work handed to a joiner.
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// A data tuple.
    Data(Box<DataMsg>),
    /// A coalesced run of data tuples for this destination (see
    /// [`BatchMsg`]). Only produced when `EngineConfig::batch_size > 1`.
    Batch(Box<BatchMsg>),
    /// Periodic watermark broadcast so that joiners receiving little or no
    /// data still advance their published progress (enabling expiration
    /// and watermark-mode emission on their teammates).
    ///
    /// Ordering contract: the driver flushes every coalescing buffer
    /// *before* broadcasting a heartbeat, so a heartbeat can never advance
    /// a joiner's watermark past tuples still parked in a driver-side
    /// batch buffer (see DESIGN.md §10).
    Heartbeat(Timestamp),
    /// End of input. After receiving this a joiner drains its pending
    /// state and reports its statistics.
    Flush,
}

/// Up to `EngineConfig::batch_size` data messages for one destination, in
/// arrival order. Semantically equivalent to sending each [`DataMsg`]
/// individually: joiners process the run element by element (late
/// accounting, watermark bookkeeping and expiration cadence are applied
/// per tuple), and fault ordinals keep addressing individual data
/// messages inside the batch. Batching only amortizes channel
/// synchronization and lets joiners pin a key/index lookup across a
/// same-key run.
#[derive(Debug, Clone)]
pub(crate) struct BatchMsg {
    /// The coalesced messages, oldest first. The backing `Vec` is drawn
    /// from (and returned to) the engine's [`SlotPool`]
    /// (crate::batch::SlotPool) so steady state allocates nothing per
    /// tuple on the routing path.
    pub msgs: Vec<DataMsg>,
}

/// The payload of a data message. Boxed to keep the channel slot small.
#[derive(Debug, Clone)]
pub(crate) struct DataMsg {
    /// Which stream the tuple belongs to.
    pub side: Side,
    /// The tuple.
    pub tuple: Tuple,
    /// Global arrival sequence number.
    pub seq: u64,
    /// Wall-clock instant the driver accepted the tuple (latency anchor).
    pub arrival: Instant,
    /// The driver's watermark **before** observing this tuple. Joiners use
    /// it for expiration and, in watermark emission mode, for deciding when
    /// pending base tuples are complete. Pre-observation semantics make
    /// `tuple.ts > watermark + lateness` the exact "this tuple advances the
    /// maximum" test (see Scale-OIJ's late-insert hint).
    pub watermark: Timestamp,
}
