//! Per-joiner instrumentation bundle.
//!
//! Every engine's joiner owns one [`JoinerInstruments`], configured from
//! [`crate::config::Instrumentation`]. All probes are `Option`al so that a
//! disabled probe costs one branch on the hot path and nothing else.

use std::time::Instant;

use oij_cachesim::CacheSim;
use oij_metrics::{
    BatchOccupancy, BusyTimeline, EffectivenessMeter, LatencyHistogram, TimeBreakdown,
};

use crate::config::Instrumentation;

/// The measurement state carried by one joiner thread.
pub struct JoinerInstruments {
    /// Result latency histogram.
    pub latency: Option<LatencyHistogram>,
    /// Lookup/match/other breakdown.
    pub breakdown: Option<TimeBreakdown>,
    /// Effectiveness meter.
    pub effectiveness: Option<EffectivenessMeter>,
    /// LLC simulator (per joiner; the harness sums counters).
    pub cache: Option<CacheSim>,
    /// Busy-time timeline.
    pub timeline: Option<BusyTimeline>,
    /// Tuples processed by this joiner (its workload `W_i`).
    pub processed: u64,
    /// Tuples that violated the lateness bound (arrived below the
    /// watermark). Processed best-effort but counted.
    pub late_violations: u64,
    /// Lateness marker rows routed to the sink under
    /// [`LatePolicy::SideOutput`](crate::config::LatePolicy).
    pub late_side_outputs: u64,
    /// Tuples evicted by expiration.
    pub evicted: u64,
    /// Fill levels of the `Msg::Batch`es this joiner received (always on:
    /// two adds per *batch*, nothing per tuple; empty when unbatched).
    pub batch_occupancy: BatchOccupancy,
}

impl JoinerInstruments {
    /// Builds the bundle for one joiner. `origin` anchors the busy timeline
    /// (pass the same instant to all joiners).
    pub fn new(spec: &Instrumentation, origin: Instant) -> Self {
        JoinerInstruments {
            latency: spec.latency.then(LatencyHistogram::new),
            breakdown: spec.breakdown.then(TimeBreakdown::new),
            effectiveness: spec.effectiveness.then(EffectivenessMeter::new),
            cache: spec.cache.map(CacheSim::new),
            timeline: spec
                .timeline_bucket
                .map(|b| BusyTimeline::new(origin, b.as_nanos() as u64)),
            processed: 0,
            late_violations: 0,
            late_side_outputs: 0,
            evicted: 0,
            batch_occupancy: BatchOccupancy::new(),
        }
    }

    /// Records the fill level of one received batch.
    #[inline]
    pub fn record_batch(&mut self, len: usize) {
        self.batch_occupancy.record(len);
    }

    /// Records one emitted result's latency given its arrival instant.
    #[inline]
    pub fn record_latency(&mut self, arrival: Instant) {
        if let Some(h) = &mut self.latency {
            h.record(arrival.elapsed().as_nanos() as u64);
        }
    }

    /// Records a base tuple's matched/visited counts.
    #[inline]
    pub fn record_effectiveness(&mut self, matched: u64, visited: u64) {
        if let Some(e) = &mut self.effectiveness {
            e.record(matched, visited);
        }
    }

    /// Feeds one buffer access into the cache simulator.
    #[inline]
    pub fn record_access(&mut self, addr: usize, bytes: usize) {
        if let Some(c) = &mut self.cache {
            c.access(addr, bytes);
        }
    }

    /// Attributes a busy span that ends now to the timeline.
    #[inline]
    pub fn record_busy(&mut self, started: Instant) {
        if let Some(t) = &mut self.timeline {
            let now = Instant::now();
            t.record(now, now.duration_since(started).as_nanos() as u64);
        }
    }

    /// Whether breakdown timing should be taken for this message.
    #[inline]
    pub fn wants_breakdown(&self) -> bool {
        self.breakdown.is_some()
    }

    /// Adds to the breakdown buckets (no-ops when disabled).
    #[inline]
    pub fn add_breakdown(&mut self, lookup_ns: u64, match_ns: u64, other_ns: u64) {
        if let Some(b) = &mut self.breakdown {
            b.lookup_ns += lookup_ns;
            b.match_ns += match_ns;
            b.other_ns += other_ns;
        }
    }
}

/// What a joiner thread reports after flush; merged by the engine into
/// [`crate::engine::RunStats`].
pub struct JoinerReport {
    /// The instruments, final.
    pub instruments: JoinerInstruments,
    /// Feature rows this joiner emitted.
    pub results: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_stay_none() {
        let i = JoinerInstruments::new(&Instrumentation::none(), Instant::now());
        assert!(i.latency.is_none());
        assert!(i.breakdown.is_none());
        assert!(i.effectiveness.is_none());
        assert!(i.cache.is_none());
        assert!(i.timeline.is_none());
    }

    #[test]
    fn enabled_probes_record() {
        let mut i = JoinerInstruments::new(&Instrumentation::full(), Instant::now());
        i.record_latency(Instant::now());
        i.record_effectiveness(1, 2);
        i.add_breakdown(10, 20, 30);
        assert_eq!(i.latency.as_ref().unwrap().count(), 1);
        assert_eq!(i.effectiveness.as_ref().unwrap().count(), 1);
        assert_eq!(i.breakdown.unwrap().total_ns(), 60);
    }
}
