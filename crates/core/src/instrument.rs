//! Per-joiner instrumentation bundle.
//!
//! Every engine's joiner owns one [`JoinerInstruments`], configured from
//! [`crate::config::Instrumentation`]. All probes are `Option`al so that a
//! disabled probe costs one branch on the hot path and nothing else.

use std::time::Instant;

use oij_cachesim::CacheSim;
use oij_common::protowit::ProtoChannel;
use oij_common::Timestamp;
use oij_metrics::{
    BatchOccupancy, BusyTimeline, EffectivenessMeter, LatencyHistogram, TimeBreakdown,
};

use crate::config::Instrumentation;

/// Receive-side shadow of one message-protocol edge (DESIGN.md §8,
/// R8/R9). Always on: the checks are a few integer compares per
/// *message* (not per tuple), and a protocol regression — a heartbeat
/// running backwards, a heartbeat below data already delivered, traffic
/// after `Flush` — must fail plain `cargo test`, not only `--cfg
/// protowit` runs. The wrapped [`ProtoChannel`] is the cfg-gated witness
/// half: under `--cfg protowit` it additionally traces first-observed
/// sends to `OIJ_PROTO_LOG` for `cargo xtask proto-check`; otherwise it
/// is a zero-sized no-op.
///
/// A panic from here surfaces through the engine supervisors as a
/// `WorkerFailure`, so a violating run fails loudly instead of emitting
/// wrong windows.
#[derive(Debug)]
pub struct ProtoProbe {
    edge: &'static str,
    witness: ProtoChannel,
    last_heartbeat: Option<Timestamp>,
    max_data: Option<Timestamp>,
    finished: bool,
}

impl ProtoProbe {
    /// Opens the shadow of protocol edge `edge` (a `lint.toml
    /// [protocol]` alias).
    pub fn new(edge: &'static str) -> ProtoProbe {
        ProtoProbe {
            edge,
            witness: ProtoChannel::new(edge),
            last_heartbeat: None,
            max_data: None,
            finished: false,
        }
    }

    fn check_open(&self, sym: &str) {
        if self.finished {
            panic!(
                "protocol violation on edge `{}`: `{sym}` observed after the edge's \
                 terminal Flush",
                self.edge
            );
        }
    }

    /// Observes one `Data` message carrying `watermark`.
    #[inline]
    pub fn data(&mut self, watermark: Timestamp) {
        self.check_open("data");
        self.max_data = Some(self.max_data.map_or(watermark, |m| m.max(watermark)));
        self.witness.data(watermark);
    }

    /// Observes one `Batch` of `len` messages (per-message watermarks go
    /// through [`data`](Self::data)).
    #[inline]
    pub fn batch(&mut self, len: usize) {
        self.check_open("batch");
        self.witness.batch(len);
    }

    /// Observes one `Heartbeat` carrying `ts`; panics on a regression
    /// against earlier heartbeats or already-observed data watermarks.
    #[inline]
    pub fn heartbeat(&mut self, ts: Timestamp) {
        self.check_open("heartbeat");
        if let Some(prev) = self.last_heartbeat {
            assert!(
                ts >= prev,
                "protocol violation on edge `{}`: heartbeat regression ({} after {})",
                self.edge,
                ts.as_micros(),
                prev.as_micros()
            );
        }
        if let Some(max) = self.max_data {
            assert!(
                ts >= max,
                "protocol violation on edge `{}`: heartbeat {} below the watermark {} of \
                 data already observed",
                self.edge,
                ts.as_micros(),
                max.as_micros()
            );
        }
        self.last_heartbeat = Some(ts);
        self.witness.heartbeat(ts);
    }

    /// Observes the edge's terminal `Flush`; anything after panics.
    pub fn finish(&mut self) {
        self.check_open("finish");
        self.finished = true;
        self.witness.finish();
    }
}

/// The measurement state carried by one joiner thread.
pub struct JoinerInstruments {
    /// Result latency histogram.
    pub latency: Option<LatencyHistogram>,
    /// Lookup/match/other breakdown.
    pub breakdown: Option<TimeBreakdown>,
    /// Effectiveness meter.
    pub effectiveness: Option<EffectivenessMeter>,
    /// LLC simulator (per joiner; the harness sums counters).
    pub cache: Option<CacheSim>,
    /// Busy-time timeline.
    pub timeline: Option<BusyTimeline>,
    /// Tuples processed by this joiner (its workload `W_i`).
    pub processed: u64,
    /// Tuples that violated the lateness bound (arrived below the
    /// watermark). Processed best-effort but counted.
    pub late_violations: u64,
    /// Lateness marker rows routed to the sink under
    /// [`LatePolicy::SideOutput`](crate::config::LatePolicy).
    pub late_side_outputs: u64,
    /// Tuples evicted by expiration.
    pub evicted: u64,
    /// Fill levels of the `Msg::Batch`es this joiner received (always on:
    /// two adds per *batch*, nothing per tuple; empty when unbatched).
    pub batch_occupancy: BatchOccupancy,
    /// Receive-side protocol shadow of the driver→joiner edge (always
    /// on; every joiner, in every engine, receives on that edge).
    pub proto: ProtoProbe,
}

impl JoinerInstruments {
    /// Builds the bundle for one joiner. `origin` anchors the busy timeline
    /// (pass the same instant to all joiners).
    pub fn new(spec: &Instrumentation, origin: Instant) -> Self {
        Self::with_edge(spec, origin, "driver-joiner")
    }

    /// [`new`](Self::new) with an explicit protocol edge for the receive
    /// probe — the serving runtime's workers sit on `ingest-query`, not
    /// the engines' `driver-joiner`.
    pub fn with_edge(spec: &Instrumentation, origin: Instant, edge: &'static str) -> Self {
        JoinerInstruments {
            latency: spec.latency.then(LatencyHistogram::new),
            breakdown: spec.breakdown.then(TimeBreakdown::new),
            effectiveness: spec.effectiveness.then(EffectivenessMeter::new),
            cache: spec.cache.map(CacheSim::new),
            timeline: spec
                .timeline_bucket
                .map(|b| BusyTimeline::new(origin, b.as_nanos() as u64)),
            processed: 0,
            late_violations: 0,
            late_side_outputs: 0,
            evicted: 0,
            batch_occupancy: BatchOccupancy::new(),
            proto: ProtoProbe::new(edge),
        }
    }

    /// Records the fill level of one received batch.
    #[inline]
    pub fn record_batch(&mut self, len: usize) {
        self.batch_occupancy.record(len);
    }

    /// Records one emitted result's latency given its arrival instant.
    #[inline]
    pub fn record_latency(&mut self, arrival: Instant) {
        if let Some(h) = &mut self.latency {
            h.record(arrival.elapsed().as_nanos() as u64);
        }
    }

    /// Records a base tuple's matched/visited counts.
    #[inline]
    pub fn record_effectiveness(&mut self, matched: u64, visited: u64) {
        if let Some(e) = &mut self.effectiveness {
            e.record(matched, visited);
        }
    }

    /// Feeds one buffer access into the cache simulator.
    #[inline]
    pub fn record_access(&mut self, addr: usize, bytes: usize) {
        if let Some(c) = &mut self.cache {
            c.access(addr, bytes);
        }
    }

    /// Attributes a busy span that ends now to the timeline.
    #[inline]
    pub fn record_busy(&mut self, started: Instant) {
        if let Some(t) = &mut self.timeline {
            let now = Instant::now();
            t.record(now, now.duration_since(started).as_nanos() as u64);
        }
    }

    /// Whether breakdown timing should be taken for this message.
    #[inline]
    pub fn wants_breakdown(&self) -> bool {
        self.breakdown.is_some()
    }

    /// Adds to the breakdown buckets (no-ops when disabled).
    #[inline]
    pub fn add_breakdown(&mut self, lookup_ns: u64, match_ns: u64, other_ns: u64) {
        if let Some(b) = &mut self.breakdown {
            b.lookup_ns += lookup_ns;
            b.match_ns += match_ns;
            b.other_ns += other_ns;
        }
    }
}

/// What a joiner thread reports after flush; merged by the engine into
/// [`crate::engine::RunStats`].
pub struct JoinerReport {
    /// The instruments, final.
    pub instruments: JoinerInstruments,
    /// Feature rows this joiner emitted.
    pub results: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_stay_none() {
        let i = JoinerInstruments::new(&Instrumentation::none(), Instant::now());
        assert!(i.latency.is_none());
        assert!(i.breakdown.is_none());
        assert!(i.effectiveness.is_none());
        assert!(i.cache.is_none());
        assert!(i.timeline.is_none());
    }

    #[test]
    fn enabled_probes_record() {
        let mut i = JoinerInstruments::new(&Instrumentation::full(), Instant::now());
        i.record_latency(Instant::now());
        i.record_effectiveness(1, 2);
        i.add_breakdown(10, 20, 30);
        assert_eq!(i.latency.as_ref().unwrap().count(), 1);
        assert_eq!(i.effectiveness.as_ref().unwrap().count(), 1);
        assert_eq!(i.breakdown.unwrap().total_ns(), 60);
    }
}
