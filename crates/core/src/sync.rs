//! Facade over the synchronization primitives the engine hot paths use.
//!
//! Mirrors `oij-skiplist`'s `sync` module (see DESIGN.md §8): in the
//! normal configuration `atomic` re-exports `std::sync::atomic`, and
//! under `RUSTFLAGS="--cfg loom"` it re-exports the vendored loom model
//! checker's instrumented atomics, so the engines compile unchanged
//! against either backend. The `cargo xtask lint` rule R2 enforces that
//! every module in this crate imports atomics and locks from here, never
//! `std::sync` directly — otherwise an atomic added in a refactor would
//! silently fall outside loom's view and the coverage map would rot.
//!
//! `Mutex` is re-exported from std in both configurations: the vendored
//! loom stand-in has no lock support, and the engines' locks sit on
//! cold control paths (sink flushing, fault bookkeeping) whose
//! interleavings are exercised by the TSan job instead (`scripts/
//! sanitize.sh`). Routing them through the facade anyway keeps the
//! import-surface audit complete and gives loom a single splice point if
//! lock modelling lands later.

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize};
    pub(crate) use std::sync::atomic::Ordering;
}

pub(crate) use std::sync::Mutex;
