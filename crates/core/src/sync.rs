//! Facade over the synchronization primitives the engine hot paths use.
//!
//! Mirrors `oij-skiplist`'s `sync` module (see DESIGN.md §8): in the
//! normal configuration `atomic` re-exports `std::sync::atomic`, and
//! under `RUSTFLAGS="--cfg loom"` it re-exports the vendored loom model
//! checker's instrumented atomics, so the engines compile unchanged
//! against either backend. The `cargo xtask lint` rule R2 enforces that
//! every module in this crate imports atomics and locks from here, never
//! `std::sync` directly — otherwise an atomic added in a refactor would
//! silently fall outside loom's view and the coverage map would rot.
//!
//! `Mutex` and `RwLock` come from `oij_common::lockdep` in both
//! configurations: the wrappers are non-poisoning, carry their declared
//! lock class (see `lint.toml [lockorder]` and rule R6), and under
//! `RUSTFLAGS="--cfg lockdep"` record every acquisition in a runtime
//! lock-order witness that panics on observed cycles and re-entrancy.
//! The vendored loom stand-in has no lock support, and the engines'
//! locks sit on cold control paths (sink flushing, fault bookkeeping)
//! whose interleavings are exercised by the TSan job instead
//! (`scripts/sanitize.sh`). Routing them through the facade keeps the
//! import-surface audit complete and gives loom a single splice point if
//! lock modelling lands later.

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize};
    pub(crate) use std::sync::atomic::Ordering;
}

pub(crate) use oij_common::lockdep::{Mutex, RwLock};
