//! Crash recovery: rebuild an engine from its durability log.
//!
//! The flow (DESIGN.md §11): [`recover`] scans the WAL + newest
//! checkpoint left behind by a crashed run, spawns a fresh engine over
//! the same [`EngineConfig`] (which must name the same durability
//! directory), and replays every retained event through
//! [`OijEngine::push_stamped`] with its **original** pre-observation
//! watermark stamp, so late/on-time classification is identical across
//! the crash. The durability runtime's emitted-output frontier —
//! restored before replay begins — silently drops every row the crashed
//! run already delivered, giving exactly-once output at the user sink.
//!
//! After `recover` returns, the harness resumes live ingest at
//! `seq > RecoveryReport::last_seq` and finishes the run normally; the
//! union of pre-crash and post-recovery sink output equals the
//! uninterrupted run's output.

use std::time::{Duration as StdDuration, Instant};

use oij_common::{Error, Event, Result, Timestamp, Tuple};

use crate::config::EngineConfig;
use crate::engine::{EngineKind, OijEngine};
use crate::keyoij::KeyOij;
use crate::openmldb::OpenMldbBaseline;
use crate::scaleoij::ScaleOij;
use crate::sink::Sink;
use crate::splitjoin::SplitJoin;

/// What [`recover`] found in the durability log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Highest event sequence number restored from the log, if any.
    /// Live ingest must resume strictly after it.
    pub last_seq: Option<u64>,
    /// Events replayed through the engine.
    pub replayed: u64,
    /// Wall-clock time spent scanning the log and replaying.
    pub duration: StdDuration,
}

/// Spawns the engine named by `kind` over `cfg` (no recovery).
pub fn spawn_engine(kind: EngineKind, cfg: EngineConfig, sink: Sink) -> Result<Box<dyn OijEngine>> {
    Ok(match kind {
        EngineKind::KeyOij => Box::new(KeyOij::spawn(cfg, sink)?),
        EngineKind::ScaleOij => Box::new(ScaleOij::spawn(cfg, sink)?),
        EngineKind::ScaleOijNoInc => Box::new(ScaleOij::spawn(cfg.without_incremental(), sink)?),
        EngineKind::SplitJoin => Box::new(SplitJoin::spawn(cfg, sink)?),
        EngineKind::OpenMldb => Box::new(OpenMldbBaseline::spawn(cfg, sink)?),
    })
}

/// Recovers a crashed durable run: scans the log at
/// `cfg.durability.dir`, spawns a fresh engine and replays the retained
/// events with their original watermark stamps. Errors if `cfg` has no
/// durability configured.
pub fn recover(
    kind: EngineKind,
    cfg: EngineConfig,
    sink: Sink,
) -> Result<(Box<dyn OijEngine>, RecoveryReport)> {
    let Some(dcfg) = cfg.durability.clone() else {
        return Err(Error::InvalidConfig(
            "recover() needs EngineConfig::durability to locate the log".into(),
        ));
    };
    let started = Instant::now();
    // Read-only scan first: the engine's own runtime re-opens the same
    // directory when it spawns, so the retained events must be captured
    // before any new segment writes happen.
    let log = oij_durability::scan(&dcfg)?;
    let mut engine = spawn_engine(kind, cfg, sink)?;
    let mut replayed = 0u64;
    for ev in &log.events {
        engine.push_stamped(
            Event::data(
                ev.seq,
                ev.side,
                Tuple::new(Timestamp::from_micros(ev.ts), ev.key, ev.value),
            ),
            Timestamp::from_micros(ev.stamp),
        )?;
        replayed += 1;
    }
    Ok((
        engine,
        RecoveryReport {
            last_seq: log.last_seq,
            replayed,
            duration: started.elapsed(),
        },
    ))
}
