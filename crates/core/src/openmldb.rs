//! **OpenMLDB baseline** — the unmodified feature-store execution path the
//! paper compares against in §V-E (Figures 22–23).
//!
//! OpenMLDB's online engine is a read-optimised in-memory store: ordered
//! per-key time series, shared by all processing threads. Two properties
//! make it struggle with streams, both modelled here:
//!
//! 1. **Shared-state insertion**: "all the processing threads share the
//!    same data structure; thus insertion will become a potential
//!    performance bottleneck". We model the store as one map behind a
//!    writer-exclusive `RwLock`: every insert blocks all readers and
//!    writers.
//! 2. **No disorder handling**: "it cannot properly handle data
//!    out-of-order". The paper disables accuracy checking for this
//!    comparison, so the baseline ignores lateness entirely: tuples join
//!    against whatever is present (eager), and retention ignores `l`.
//!
//! The read path is genuinely good — an ordered time-range scan over the
//! configured index backend (OpenMLDB's skip-list storage) — which is why
//! the baseline holds up at low arrival rates (Workload D) and collapses
//! at high ones.

use crate::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use crate::sync::RwLock;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Sender};

use oij_agg::FullWindowAgg;
use oij_common::{EmitMode, Error, Event, FeatureRow, Key, Result, Side, Timestamp};
use oij_index::{BackendReader, BackendWriter, Exclusive, OijIndexReader, OijIndexWriter};

use crate::batch::{Batcher, SlotPool};
use crate::config::EngineConfig;
use crate::driver::{open_durability, Driver, Prepared};
use crate::engine::{OijEngine, RunStats};
use crate::faults::{
    join_within, run_supervised, send_guarded, FailureCell, FaultAction, WorkerFaults,
};
use crate::instrument::{JoinerInstruments, JoinerReport};
use crate::message::{DataMsg, Msg};
use crate::sink::{worker_sink_stack, Sink};

const ENGINE: &str = "openmldb";

/// The shared store: one backend index writer behind a writer-exclusive
/// lock (the insertion bottleneck the paper measures), plus its snapshot
/// reader handle. Workers still scan under the *read* lock: this models
/// OpenMLDB's reader/writer contention faithfully, and it is also
/// load-bearing for correctness — `insert_batch` may defer publication to
/// the end of a run, and the run executes under the write lock, so no
/// reader can observe a half-published batch.
struct Store {
    writer: RwLock<Exclusive<BackendWriter>>,
    reader: BackendReader,
}

/// The OpenMLDB-style baseline engine. See the [module docs](self).
///
/// Only `EmitMode::Eager` is supported — the store has no watermark
/// machinery, which is precisely the paper's point.
pub struct OpenMldbBaseline {
    cfg: EngineConfig,
    driver: Driver,
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<Option<JoinerReport>>>,
    reports: Vec<JoinerReport>,
    failures: Arc<FailureCell>,
    kill: Arc<AtomicBool>,
    poison: Option<Error>,
    rr: usize,
    done: bool,
    /// Per-worker coalescing buffers (pass-through when `batch_size == 1`).
    batcher: Batcher,
    /// Sink-retry count across all workers (folded into `RunStats`).
    retries: Arc<AtomicU64>,
}

impl OpenMldbBaseline {
    /// Spawns the worker threads over one shared store.
    pub fn spawn(cfg: EngineConfig, sink: Sink) -> Result<Self> {
        cfg.validate()?;
        if cfg.query.emit == EmitMode::Watermark {
            return Err(Error::InvalidConfig(
                "the OpenMLDB baseline has no out-of-order handling; \
                 watermark emission is unsupported (paper §V-E)"
                    .into(),
            ));
        }
        let origin = Instant::now();
        let (writer, reader) = cfg.index_backend.build();
        let store: Arc<Store> = Arc::new(Store {
            writer: RwLock::new("openmldb_store", Exclusive::new(writer)),
            reader,
        });
        // Deduplicates concurrent expiration sweeps.
        let expired_to = Arc::new(AtomicI64::new(i64::MIN));
        let failures = Arc::new(FailureCell::new());
        let kill = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(SlotPool::new(cfg.joiners * 8 + 16));
        // The baseline never emits side-output markers.
        let durable = open_durability(&cfg, false)?;
        let retries = Arc::new(AtomicU64::new(0));

        let mut senders = Vec::with_capacity(cfg.joiners);
        let mut handles = Vec::with_capacity(cfg.joiners);
        for id in 0..cfg.joiners {
            // CHANNEL: driver -> joiner (round-robin over the shared store)
            let (tx, rx) = bounded::<Msg>(cfg.channel_capacity);
            let worker = MldbWorker {
                inst: JoinerInstruments::new(&cfg.instrument, origin),
                cfg: cfg.clone(),
                sink: worker_sink_stack(
                    &cfg,
                    id,
                    sink.clone(),
                    &durable,
                    &failures,
                    &retries,
                    &kill,
                ),
                store: Arc::clone(&store),
                expired_to: Arc::clone(&expired_to),
                pool: Arc::clone(&pool),
                results: 0,
                since_expire: 0,
                last_wm: Timestamp::MIN,
            };
            let faults = cfg.faults.for_worker(id, ENGINE, id, &failures);
            let cell = Arc::clone(&failures);
            let wkill = Arc::clone(&kill);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("openmldb-worker-{id}"))
                    .spawn(move || {
                        run_supervised(ENGINE, id, &cell, move || worker.run(rx, faults, wkill))
                    })
                    .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?,
            );
            senders.push(tx);
        }
        let lateness = cfg.query.window.lateness;
        let batcher = Batcher::new(cfg.joiners, cfg.batch_size, cfg.flush_deadline, pool);
        Ok(OpenMldbBaseline {
            cfg,
            driver: Driver::with_durability(lateness, durable),
            senders,
            handles,
            reports: Vec::new(),
            failures,
            kill,
            poison: None,
            rr: 0,
            done: false,
            batcher,
            retries,
        })
    }

    /// Routes one prepared data message: round-robin over the shared
    /// store, through the coalescing batcher.
    fn dispatch(&mut self, msg: DataMsg) -> Result<()> {
        // No key affinity — any thread can serve any request
        // against the shared store (round-robin dispatch).
        self.rr = (self.rr + 1) % self.senders.len();
        let worker = self.rr;
        let now = msg.arrival;
        if let Some(out) = self.batcher.push(worker, msg) {
            self.route(worker, out)?;
        }
        while let Some((dest, out)) = self.batcher.pop_expired(now) {
            self.route(dest, out)?;
        }
        Ok(())
    }

    #[inline]
    fn route(&mut self, worker: usize, msg: Msg) -> Result<()> {
        match send_guarded(
            &self.senders[worker],
            msg,
            self.cfg.send_timeout,
            ENGINE,
            worker,
            &self.failures,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    fn join_workers(&mut self) -> Result<()> {
        let mut first_err: Option<Error> = None;
        while !self.handles.is_empty() {
            let worker = self.cfg.joiners - self.handles.len();
            let handle = self.handles.remove(0);
            let (report, err) = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                worker,
                &self.failures,
                &self.kill,
            );
            if let Some(r) = report {
                self.reports.push(r);
            }
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }
}

impl OijEngine for OpenMldbBaseline {
    fn push(&mut self, event: Event) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare(event)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn push_stamped(&mut self, event: Event, stamp: Timestamp) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare_stamped(event, stamp)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn finish(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("finish called twice".into()));
        }
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        // End of input: hand over any partially filled batches first.
        while let Some((dest, out)) = self.batcher.pop_any() {
            self.route(dest, out)?;
        }
        for j in 0..self.senders.len() {
            // PROTO: driver-joiner.closed
            self.route(j, Msg::Flush)?;
        }
        self.senders.clear();
        self.join_workers()?;
        self.done = true;
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats = RunStats::from_reports(input, elapsed, reports, 0);
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }

    fn abort(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("abort after a completed finish".into()));
        }
        self.done = true;
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        let _ = self.join_workers();
        let lost = self.cfg.joiners - self.reports.len();
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats = RunStats::from_reports(input, elapsed, reports, 0).mark_aborted(lost);
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }
}

impl Drop for OpenMldbBaseline {
    fn drop(&mut self) {
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        while let Some(handle) = self.handles.pop() {
            let _ = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                self.handles.len(),
                &self.failures,
                &self.kill,
            );
        }
    }
}

struct MldbWorker {
    cfg: EngineConfig,
    sink: Sink,
    inst: JoinerInstruments,
    store: Arc<Store>,
    expired_to: Arc<AtomicI64>,
    /// Returns drained batch buffers to the driver (DESIGN.md §10).
    pool: Arc<SlotPool<Vec<DataMsg>>>,
    results: u64,
    since_expire: usize,
    last_wm: Timestamp,
}

impl MldbWorker {
    fn run(
        mut self,
        rx: Receiver<Msg>,
        faults: Option<WorkerFaults>,
        kill: Arc<AtomicBool>,
    ) -> JoinerReport {
        let timeline_on = self.inst.timeline.is_some();
        let mut ordinal = 0u64;
        for msg in rx {
            match msg {
                Msg::Flush => {
                    self.inst.proto.finish();
                    break;
                }
                Msg::Heartbeat(wm) => {
                    self.inst.proto.heartbeat(wm);
                    self.last_wm = self.last_wm.max(wm);
                }
                Msg::Data(data) => {
                    self.inst.proto.data(data.watermark);
                    if let Some(f) = &faults {
                        let action = f.before_message(ordinal, &kill);
                        ordinal += 1;
                        if action == FaultAction::Exit {
                            return JoinerReport {
                                instruments: self.inst,
                                results: self.results,
                            };
                        }
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    self.handle(*data);
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                }
                Msg::Batch(mut batch) => {
                    self.inst.record_batch(batch.msgs.len());
                    self.inst.proto.batch(batch.msgs.len());
                    for m in &batch.msgs {
                        self.inst.proto.data(m.watermark);
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    if let Some(f) = &faults {
                        // Fault ordinals address individual data messages
                        // inside the batch (mid-batch injection points
                        // fire exactly where they would unbatched).
                        for msg in batch.msgs.drain(..) {
                            let action = f.before_message(ordinal, &kill);
                            ordinal += 1;
                            if action == FaultAction::Exit {
                                return JoinerReport {
                                    instruments: self.inst,
                                    results: self.results,
                                };
                            }
                            self.handle(msg);
                        }
                    } else {
                        self.handle_batch(&batch.msgs);
                    }
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                    batch.msgs.clear();
                    let _ = self.pool.put(batch.msgs);
                }
            }
        }
        JoinerReport {
            instruments: self.inst,
            results: self.results,
        }
    }

    fn handle(&mut self, msg: DataMsg) {
        self.inst.processed += 1;
        self.last_wm = msg.watermark;
        if msg.tuple.ts < msg.watermark {
            self.inst.late_violations += 1;
        }
        match msg.side {
            Side::Probe => {
                // The bottleneck the paper measures: a writer-exclusive
                // lock over the whole store per insertion.
                // LOCK: openmldb_store
                let mut store = self.store.writer.write();
                store.get_mut().insert(msg.tuple);
            }
            Side::Base => {
                self.join_and_emit(msg.tuple.key, msg.tuple.ts, msg.seq, msg.arrival);
            }
        }
        self.since_expire += 1;
        if self.since_expire >= self.cfg.expire_every {
            self.since_expire = 0;
            self.expire();
        }
    }

    /// Processes one coalesced batch; semantically identical to calling
    /// [`handle`](Self::handle) once per message. The pinned resource here
    /// is the store's writer lock: one acquisition covers a whole run of
    /// consecutive probes, handed to the backend as one
    /// [`insert_batch`](OijIndexWriter::insert_batch) call — deferred
    /// publication is safe because readers scan under the read lock, so no
    /// reader can overlap the run. Runs are capped at the remaining
    /// expiration budget so the sweep cadence matches the unbatched path
    /// exactly.
    fn handle_batch(&mut self, msgs: &[DataMsg]) {
        let mut i = 0;
        while i < msgs.len() {
            if msgs[i].side != Side::Probe {
                self.handle(msgs[i].clone());
                i += 1;
                continue;
            }
            let budget = (self.cfg.expire_every - self.since_expire).max(1);
            let mut end = i + 1;
            while end < msgs.len() && end - i < budget && msgs[end].side == Side::Probe {
                end += 1;
            }
            {
                let mut run = Vec::with_capacity(end - i);
                for m in &msgs[i..end] {
                    self.inst.processed += 1;
                    self.last_wm = m.watermark;
                    if m.tuple.ts < m.watermark {
                        self.inst.late_violations += 1;
                    }
                    run.push((m.tuple.clone(), false));
                }
                // One writer-exclusive acquisition for the whole probe run.
                // LOCK: openmldb_store
                let mut store = self.store.writer.write();
                store.get_mut().insert_batch(run);
            }
            self.since_expire += end - i;
            if self.since_expire >= self.cfg.expire_every {
                self.since_expire = 0;
                self.expire();
            }
            i = end;
        }
    }

    fn join_and_emit(&mut self, key: Key, ts: Timestamp, seq: u64, arrival: Instant) {
        let window = self.cfg.query.window.window_of(ts);
        let (lo, hi) = (window.start.as_micros(), window.end.as_micros());
        let mut agg = FullWindowAgg::new(self.cfg.query.agg);
        {
            // Read path: ordered range scan — OpenMLDB is good at this. The
            // read lock models the shared-store contention (and guarantees
            // no half-published batch is visible; see [`Store`]).
            // LOCK: openmldb_store
            let store = self.store.writer.read();
            let lookup_t0 = self.inst.wants_breakdown().then(Instant::now);
            self.store.reader.scan_ts_range(
                key,
                Timestamp::from_micros(lo),
                Timestamp::from_micros(hi),
                |t| agg.add(t.value),
            );
            if let Some(t0) = lookup_t0 {
                // Ordered scans fuse lookup+match; attribute to lookup.
                self.inst
                    .add_breakdown(t0.elapsed().as_nanos() as u64, 0, 0);
            }
            drop(store);
        }
        let matched = agg.count();
        self.inst.record_effectiveness(matched, matched);
        self.sink
            .emit(FeatureRow::new(ts, key, seq, agg.finish(), matched));
        self.results += 1;
        self.inst.record_latency(arrival);
    }

    fn expire(&mut self) {
        if self.last_wm == Timestamp::MIN {
            return;
        }
        // No lateness slack — the baseline ignores disorder. Retention is
        // the window length only.
        let bound = (self.last_wm + self.cfg.query.window.lateness)
            .saturating_sub(self.cfg.query.window.length())
            .as_micros();
        // ORDERING: AcqRel — the winning worker both observes the previous bound (Acquire) and publishes the new one to later callers (Release), so expiry never runs twice for one bound.
        // Skip if another worker already expired past this bound.
        if self.expired_to.fetch_max(bound, Ordering::AcqRel) >= bound {
            return;
        }
        // LOCK: openmldb_store
        let mut store = self.store.writer.write();
        let evicted = store.get_mut().evict_below(Timestamp::from_micros(bound)) as u64;
        drop(store);
        self.inst.evicted += evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use oij_common::{AggSpec, Duration, OijQuery, Tuple};

    fn query(pre: i64) -> OijQuery {
        OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .agg(AggSpec::Sum)
            .build()
            .unwrap()
    }

    fn in_order_events(n: u64, keys: u64) -> Vec<Event> {
        let mut events = Vec::new();
        let mut x = 41u64;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(3) {
                Side::Base
            } else {
                Side::Probe
            };
            events.push(Event::data(
                i,
                side,
                Tuple::new(Timestamp::from_micros(i as i64), x % keys, (x % 15) as f64),
            ));
        }
        events
    }

    #[test]
    fn rejects_watermark_mode() {
        let q = OijQuery {
            emit: EmitMode::Watermark,
            ..query(10)
        };
        let (sink, _) = Sink::collect();
        assert!(OpenMldbBaseline::spawn(EngineConfig::new(q, 1).unwrap(), sink).is_err());
    }

    #[test]
    fn single_worker_matches_eager_oracle() {
        let q = query(80);
        let events = in_order_events(3000, 5);
        let want = Oracle::new(q.clone()).run(&events);
        let (sink, rows) = Sink::collect();
        let mut engine = OpenMldbBaseline::spawn(EngineConfig::new(q, 1).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert_eq!(stats.results as usize, want.len());
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        for (g, o) in got.iter().zip(&want) {
            assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    #[test]
    fn multi_worker_is_near_oracle_on_in_order_streams() {
        // The shared store is globally consistent, but round-robin dispatch
        // means a base may be served before an earlier probe is inserted —
        // bounded by the in-flight window.
        let q = query(100);
        let events = in_order_events(6000, 4);
        let want = Oracle::new(q.clone()).run(&events);
        let (sink, rows) = Sink::collect();
        let mut engine = OpenMldbBaseline::spawn(EngineConfig::new(q, 4).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        assert_eq!(got.len(), want.len());
        let close = got
            .iter()
            .zip(&want)
            .filter(|(g, o)| g.matched.abs_diff(o.matched) <= 4)
            .count();
        assert!(
            close as f64 > got.len() as f64 * 0.9,
            "{close}/{} rows close to oracle",
            got.len()
        );
    }

    #[test]
    fn expiration_runs_once_per_bound() {
        let q = query(50);
        let mut cfg = EngineConfig::new(q, 2).unwrap();
        cfg.expire_every = 16;
        let events = in_order_events(4000, 3);
        let (sink, _) = Sink::collect();
        let mut engine = OpenMldbBaseline::spawn(cfg, sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert!(stats.evicted > 0);
        // With retention = window only, storage stays near the window size;
        // most of the stream must have been evicted.
        assert!(stats.evicted > events.len() as u64 / 4);
    }
}
