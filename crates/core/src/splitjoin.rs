//! **SplitJoin-OIJ** — SplitJoin (Najafi et al., USENIX ATC'16) adapted to
//! online interval join semantics (paper §V-D).
//!
//! SplitJoin's top-down model splits the join into independent *store* and
//! *process* steps: every incoming tuple is **broadcast** to all joiners;
//! each joiner **stores** only its round-robin slice of the probe stream
//! but **processes** every base tuple against that slice, emitting a
//! partial window aggregate. A collector merges the `J` partials per base
//! tuple into the final feature row. Per the paper's adaptation, each join
//! comparison carries an extra predicate filtering tuples outside the
//! relative window.
//!
//! Characteristics the paper observes, reproduced by construction:
//! perfectly balanced load (everybody processes everything) but heavy
//! broadcast traffic and full-scan lookups, so throughput trails Scale-OIJ
//! and degrades with thread count when windows are small (Figure 21).

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Sender};

use oij_agg::PartialAgg;
use oij_common::{EmitMode, Error, Event, FeatureRow, Key, Result, Side, Timestamp};
use oij_index::{BackendReader, BackendWriter, OijIndexReader, OijIndexWriter};

use crate::batch::{Batcher, SlotPool};
use crate::config::EngineConfig;
use crate::driver::{open_durability, Driver, Prepared};
use crate::engine::{OijEngine, RunStats};
use crate::faults::{
    join_within, run_supervised, send_guarded, FailureCell, FaultAction, WorkerFaults,
};
use crate::instrument::{JoinerInstruments, JoinerReport};
use crate::message::{DataMsg, Msg};
use crate::sink::{worker_sink_stack, Sink};

const ENGINE: &str = "splitjoin";
const COLLECTOR: &str = "splitjoin-collector";

/// The SplitJoin-OIJ engine. See the [module docs](self).
///
/// In a [`FaultPlan`](crate::faults::FaultPlan), the collector is
/// addressed as worker `joiners` (one past the last joiner id) — its sink
/// faults and message faults bind there.
pub struct SplitJoin {
    cfg: EngineConfig,
    driver: Driver,
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<Option<JoinerReport>>>,
    collector: Option<JoinHandle<Option<CollectorReport>>>,
    reports: Vec<JoinerReport>,
    col_report: Option<CollectorReport>,
    failures: Arc<FailureCell>,
    kill: Arc<AtomicBool>,
    poison: Option<Error>,
    done: bool,
    /// One coalescing buffer for the whole broadcast group: every joiner
    /// receives the same batch (pass-through when `batch_size == 1`).
    batcher: Batcher,
    /// Sink-retry count (the collector is the only emitter).
    retries: Arc<AtomicU64>,
}

/// What one joiner tells the collector about one base tuple.
struct Partial {
    seq: u64,
    key: Key,
    ts: Timestamp,
    arrival: Instant,
    agg: PartialAgg,
}

enum ToCollector {
    Partial(Box<Partial>),
    JoinerDone,
}

struct CollectorReport {
    results: u64,
    latency: Option<oij_metrics::LatencyHistogram>,
}

impl SplitJoin {
    /// Spawns the joiners and the collector.
    pub fn spawn(cfg: EngineConfig, sink: Sink) -> Result<Self> {
        cfg.validate()?;
        let origin = Instant::now();
        let joiners = cfg.joiners;
        // CHANNEL: joiner -> collector (partial results fan in)
        let (col_tx, col_rx) = bounded::<ToCollector>(cfg.channel_capacity);
        let failures = Arc::new(FailureCell::new());
        let kill = Arc::new(AtomicBool::new(false));
        // Every joiner returns its own clone of a broadcast batch, so size
        // the pool generously; overflow is one dropped buffer, not an error.
        let pool = Arc::new(SlotPool::new(joiners * 8 + 16));
        // SplitJoin never emits side-output markers.
        let durable = open_durability(&cfg, false)?;
        let retries = Arc::new(AtomicU64::new(0));

        let mut senders = Vec::with_capacity(joiners);
        let mut handles = Vec::with_capacity(joiners);
        for id in 0..joiners {
            // CHANNEL: driver -> joiner (broadcast: every joiner sees every batch)
            let (tx, rx) = bounded::<Msg>(cfg.channel_capacity);
            let worker = SplitJoiner::new(id, &cfg, origin, col_tx.clone(), Arc::clone(&pool));
            let faults = cfg.faults.for_worker(id, ENGINE, id, &failures);
            let cell = Arc::clone(&failures);
            let wkill = Arc::clone(&kill);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("splitjoin-joiner-{id}"))
                    .spawn(move || {
                        run_supervised(ENGINE, id, &cell, move || worker.run(rx, faults, wkill))
                    })
                    .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?,
            );
            senders.push(tx);
        }
        drop(col_tx);

        let latency_on = cfg.instrument.latency;
        let spec = cfg.query.agg;
        // The sink lives on the collector; its faults (and any message
        // faults for the collector itself) are addressed as worker
        // `joiners` in the plan.
        let col_sink = worker_sink_stack(&cfg, joiners, sink, &durable, &failures, &retries, &kill);
        let col_faults = cfg
            .faults
            .for_worker(joiners, COLLECTOR, joiners, &failures);
        let cell = Arc::clone(&failures);
        let ckill = Arc::clone(&kill);
        let collector = std::thread::Builder::new()
            .name("splitjoin-collector".into())
            .spawn(move || {
                run_supervised(COLLECTOR, joiners, &cell, move || {
                    collector_loop(
                        col_rx, joiners, spec, col_sink, latency_on, col_faults, ckill,
                    )
                })
            })
            .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?;

        let lateness = cfg.query.window.lateness;
        let batcher = Batcher::new(1, cfg.batch_size, cfg.flush_deadline, pool);
        Ok(SplitJoin {
            cfg,
            driver: Driver::with_durability(lateness, durable),
            senders,
            handles,
            collector: Some(collector),
            reports: Vec::new(),
            col_report: None,
            failures,
            kill,
            poison: None,
            done: false,
            batcher,
            retries,
        })
    }

    /// Routes one prepared data message: everyone receives every batch.
    fn dispatch(&mut self, msg: DataMsg) -> Result<()> {
        // The arrival stamp doubles as "now" for the flush
        // deadline (no extra clock reads per tuple).
        let now = msg.arrival;
        if let Some(out) = self.batcher.push(0, msg) {
            self.broadcast(out)?;
        }
        while let Some((_, out)) = self.batcher.pop_expired(now) {
            self.broadcast(out)?;
        }
        Ok(())
    }

    /// The SplitJoin distribution tree: everyone gets the message (the
    /// last sender receives the original, the rest clones).
    fn broadcast(&mut self, msg: Msg) -> Result<()> {
        let last = self.senders.len() - 1;
        for j in 0..last {
            self.route(j, msg.clone())?;
        }
        self.route(last, msg)
    }

    #[inline]
    fn route(&mut self, worker: usize, msg: Msg) -> Result<()> {
        match send_guarded(
            &self.senders[worker],
            msg,
            self.cfg.send_timeout,
            ENGINE,
            worker,
            &self.failures,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Joins every joiner and then the collector, bounded, salvaging
    /// whatever reports arrive; returns (and records) the first failure.
    fn join_workers(&mut self) -> Result<()> {
        let mut first_err: Option<Error> = None;
        while !self.handles.is_empty() {
            let worker = self.cfg.joiners - self.handles.len();
            let handle = self.handles.remove(0);
            let (report, err) = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                worker,
                &self.failures,
                &self.kill,
            );
            if let Some(r) = report {
                self.reports.push(r);
            }
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        if let Some(handle) = self.collector.take() {
            let (report, err) = join_within(
                handle,
                self.cfg.send_timeout,
                COLLECTOR,
                self.cfg.joiners,
                &self.failures,
                &self.kill,
            );
            self.col_report = report;
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Merges joiner reports + the collector report into run stats. The
    /// collector is the only thread that emits to the sink, so without its
    /// report no emitted-row count can be claimed.
    fn build_stats(&mut self, aborted: bool) -> Result<RunStats> {
        let expected = self.cfg.joiners + 1;
        let salvaged = self.reports.len() + usize::from(self.col_report.is_some());
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats = RunStats::from_reports(input, elapsed, reports, 0);
        match self.col_report.take() {
            Some(col) => {
                stats.results = col.results;
                match (&mut stats.latency, col.latency) {
                    (Some(acc), Some(h)) => acc.merge(&h),
                    (slot @ None, Some(h)) => *slot = Some(h),
                    _ => {}
                }
            }
            None => stats.results = 0,
        }
        if aborted {
            stats = stats.mark_aborted(expected - salvaged);
        }
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }
}

fn collector_loop(
    rx: Receiver<ToCollector>,
    joiners: usize,
    spec: oij_common::AggSpec,
    sink: Sink,
    latency_on: bool,
    faults: Option<WorkerFaults>,
    kill: Arc<AtomicBool>,
) -> CollectorReport {
    let mut open: HashMap<u64, (Partial, usize)> = HashMap::new();
    let mut done = 0usize;
    let mut results = 0u64;
    let mut ordinal = 0u64;
    let mut latency = latency_on.then(oij_metrics::LatencyHistogram::new);
    // Receive-side shadow of the joiner→collector edge. The edge is a
    // fan-in of `joiners` senders, so the protocol's single terminal
    // `Finish` is realized by the LAST `JoinerDone` marker; individual
    // markers before that are not terminal for the merged edge.
    let mut proto = crate::instrument::ProtoProbe::new("joiner-collector");
    for msg in rx {
        match msg {
            ToCollector::JoinerDone => {
                done += 1;
                if done == joiners {
                    proto.finish();
                    break;
                }
            }
            ToCollector::Partial(p) => {
                proto.data(p.ts);
                if let Some(f) = &faults {
                    let action = f.before_message(ordinal, &kill);
                    ordinal += 1;
                    if action == FaultAction::Exit {
                        return CollectorReport { results, latency };
                    }
                }
                let p = *p;
                let seq = p.seq;
                let entry = open.entry(seq).or_insert_with(|| {
                    (
                        Partial {
                            seq: p.seq,
                            key: p.key,
                            ts: p.ts,
                            arrival: p.arrival,
                            agg: PartialAgg::empty(),
                        },
                        0,
                    )
                });
                entry.0.agg.merge(&p.agg);
                entry.1 += 1;
                if entry.1 == joiners {
                    let (full, _) = open.remove(&seq).expect("just inserted");
                    sink.emit(FeatureRow::new(
                        full.ts,
                        full.key,
                        full.seq,
                        full.agg.finish(spec),
                        full.agg.count,
                    ));
                    results += 1;
                    if let Some(h) = &mut latency {
                        h.record(full.arrival.elapsed().as_nanos() as u64);
                    }
                }
            }
        }
    }
    // On a clean shutdown every partial merged; after a joiner failure the
    // channel disconnects early and unmerged partials are expected.
    debug_assert!(
        done < joiners || open.is_empty(),
        "unmerged partial results at clean shutdown"
    );
    CollectorReport { results, latency }
}

impl OijEngine for SplitJoin {
    fn push(&mut self, event: Event) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare(event)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn push_stamped(&mut self, event: Event, stamp: Timestamp) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare_stamped(event, stamp)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn finish(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("finish called twice".into()));
        }
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        // End of input: hand over any partially filled batch first.
        while let Some((_, out)) = self.batcher.pop_any() {
            self.broadcast(out)?;
        }
        for j in 0..self.senders.len() {
            // PROTO: driver-joiner.closed
            self.route(j, Msg::Flush)?;
        }
        self.senders.clear();
        self.join_workers()?;
        self.done = true;
        self.build_stats(false)
    }

    fn abort(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("abort after a completed finish".into()));
        }
        self.done = true;
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        let _ = self.join_workers();
        self.build_stats(true)
    }
}

impl Drop for SplitJoin {
    fn drop(&mut self) {
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        while let Some(handle) = self.handles.pop() {
            let _ = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                self.handles.len(),
                &self.failures,
                &self.kill,
            );
        }
        if let Some(c) = self.collector.take() {
            let _ = join_within(
                c,
                self.cfg.send_timeout,
                COLLECTOR,
                self.cfg.joiners,
                &self.failures,
                &self.kill,
            );
        }
    }
}

struct SplitJoiner {
    id: usize,
    cfg: EngineConfig,
    inst: JoinerInstruments,
    collector: Sender<ToCollector>,
    /// This joiner's round-robin storage slice, behind the configured
    /// index backend. The process step still scans a key's whole slice —
    /// the backend's timestamp order is not used to prune.
    writer: BackendWriter,
    reader: BackendReader,
    node_bytes: usize,
    /// Watermark mode: pending base tuples.
    pending: BTreeMap<(i64, u64), (Key, Timestamp, Instant)>,
    /// Returns drained batch buffers to the driver (DESIGN.md §10).
    pool: Arc<SlotPool<Vec<DataMsg>>>,
    since_expire: usize,
    last_wm: Timestamp,
    results: u64,
}

impl SplitJoiner {
    fn new(
        id: usize,
        cfg: &EngineConfig,
        origin: Instant,
        collector: Sender<ToCollector>,
        pool: Arc<SlotPool<Vec<DataMsg>>>,
    ) -> Self {
        let (writer, reader) = cfg.index_backend.build();
        let node_bytes = writer.node_footprint();
        SplitJoiner {
            id,
            inst: JoinerInstruments::new(&cfg.instrument, origin),
            cfg: cfg.clone(),
            collector,
            writer,
            reader,
            node_bytes,
            pending: BTreeMap::new(),
            pool,
            since_expire: 0,
            last_wm: Timestamp::MIN,
            results: 0,
        }
    }

    fn run(
        mut self,
        rx: Receiver<Msg>,
        faults: Option<WorkerFaults>,
        kill: Arc<AtomicBool>,
    ) -> JoinerReport {
        let timeline_on = self.inst.timeline.is_some();
        let mut ordinal: u64 = 0;
        for msg in rx {
            match msg {
                Msg::Flush => {
                    self.inst.proto.finish();
                    break;
                }
                Msg::Heartbeat(wm) => {
                    self.inst.proto.heartbeat(wm);
                    self.last_wm = self.last_wm.max(wm);
                    if self.cfg.query.emit == EmitMode::Watermark {
                        self.drain_pending(self.last_wm);
                    }
                }
                Msg::Data(data) => {
                    self.inst.proto.data(data.watermark);
                    if let Some(f) = &faults {
                        let action = f.before_message(ordinal, &kill);
                        ordinal += 1;
                        if action == FaultAction::Exit {
                            return JoinerReport {
                                instruments: self.inst,
                                results: self.results,
                            };
                        }
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    self.handle(*data);
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                }
                Msg::Batch(mut batch) => {
                    self.inst.record_batch(batch.msgs.len());
                    self.inst.proto.batch(batch.msgs.len());
                    for m in &batch.msgs {
                        self.inst.proto.data(m.watermark);
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    if let Some(f) = &faults {
                        // Fault ordinals address individual data messages
                        // inside the batch (mid-batch injection points
                        // fire exactly where they would unbatched).
                        for msg in batch.msgs.drain(..) {
                            let action = f.before_message(ordinal, &kill);
                            ordinal += 1;
                            if action == FaultAction::Exit {
                                return JoinerReport {
                                    instruments: self.inst,
                                    results: self.results,
                                };
                            }
                            self.handle(msg);
                        }
                    } else {
                        self.handle_batch(&batch.msgs);
                    }
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                    batch.msgs.clear();
                    let _ = self.pool.put(batch.msgs);
                }
            }
        }
        // Every broadcast message reached every joiner, so the local slice
        // is complete: drain pending bases unconditionally.
        self.drain_pending(Timestamp::MAX);
        // SEND-OK: teardown marker; the collector drains until every joiner's
        // Done arrives, so this send can only block while it is still reading.
        // PROTO: joiner-collector.closed
        let _ = self.collector.send(ToCollector::JoinerDone);
        JoinerReport {
            instruments: self.inst,
            results: self.results,
        }
    }

    fn handle(&mut self, msg: DataMsg) {
        self.inst.processed += 1;
        self.last_wm = msg.watermark;
        if msg.tuple.ts < msg.watermark {
            self.inst.late_violations += 1;
        }
        match msg.side {
            Side::Probe => {
                // Store step: only the round-robin owner keeps the tuple.
                if msg.seq as usize % self.cfg.joiners == self.id {
                    if self.inst.cache.is_some() {
                        let addr = self.writer.insert_hinted_traced(msg.tuple, false);
                        self.inst.record_access(addr, self.node_bytes);
                    } else {
                        self.writer.insert(msg.tuple);
                    }
                }
            }
            Side::Base => match self.cfg.query.emit {
                // Process step: everyone scans their slice.
                EmitMode::Eager => {
                    self.partial_join(msg.tuple.key, msg.tuple.ts, msg.seq, msg.arrival)
                }
                EmitMode::Watermark => {
                    let emit_ts = msg.tuple.ts + self.cfg.query.window.following;
                    self.pending.insert(
                        (emit_ts.as_micros(), msg.seq),
                        (msg.tuple.key, msg.tuple.ts, msg.arrival),
                    );
                }
            },
        }
        if self.cfg.query.emit == EmitMode::Watermark {
            self.drain_pending(msg.watermark);
        }
        self.since_expire += 1;
        if self.since_expire >= self.cfg.expire_every {
            self.since_expire = 0;
            self.expire();
        }
    }

    /// Processes one coalesced batch; semantically identical to calling
    /// [`handle`](Self::handle) once per message. Runs of consecutive
    /// same-key probes in eager mode hand their *owned* subset to the
    /// backend as one [`insert_batch`](OijIndexWriter::insert_batch) call
    /// (no read happens mid-run, so deferred publication is safe), and
    /// non-owned probes in the run only pay their bookkeeping. Runs are
    /// capped at the remaining expiration budget so the sweep cadence
    /// matches the unbatched path exactly.
    fn handle_batch(&mut self, msgs: &[DataMsg]) {
        let eager = self.cfg.query.emit == EmitMode::Eager;
        let mut i = 0;
        while i < msgs.len() {
            if !(eager && msgs[i].side == Side::Probe) {
                // Bases and watermark mode can emit — keep the scalar path.
                self.handle(msgs[i].clone());
                i += 1;
                continue;
            }
            let key = msgs[i].tuple.key;
            let budget = (self.cfg.expire_every - self.since_expire).max(1);
            let mut end = i + 1;
            while end < msgs.len()
                && end - i < budget
                && msgs[end].side == Side::Probe
                && msgs[end].tuple.key == key
            {
                end += 1;
            }
            if self.inst.cache.is_some() {
                // The cache model needs a node address per insert, so the
                // traced scalar path stays in charge here.
                for m in &msgs[i..end] {
                    self.inst.processed += 1;
                    self.last_wm = m.watermark;
                    if m.tuple.ts < m.watermark {
                        self.inst.late_violations += 1;
                    }
                    if m.seq as usize % self.cfg.joiners == self.id {
                        let addr = self.writer.insert_hinted_traced(m.tuple.clone(), false);
                        self.inst.record_access(addr, self.node_bytes);
                    }
                }
            } else {
                // Owned probes become one deferred-publication run; a run
                // with no owned probe inserts nothing, so no key state is
                // created (matching the scalar path).
                let mut run = Vec::new();
                for m in &msgs[i..end] {
                    self.inst.processed += 1;
                    self.last_wm = m.watermark;
                    if m.tuple.ts < m.watermark {
                        self.inst.late_violations += 1;
                    }
                    if m.seq as usize % self.cfg.joiners == self.id {
                        run.push((m.tuple.clone(), false));
                    }
                }
                if !run.is_empty() {
                    self.writer.insert_batch(run);
                }
            }
            self.since_expire += end - i;
            if self.since_expire >= self.cfg.expire_every {
                self.since_expire = 0;
                self.expire();
            }
            i = end;
        }
    }

    fn drain_pending(&mut self, watermark: Timestamp) {
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 > watermark.as_micros() {
                break;
            }
            let ((_, seq), (key, ts, arrival)) = entry.remove_entry();
            self.partial_join(key, ts, seq, arrival);
        }
    }

    /// Full scan of the local slice (the key's whole retained range, with
    /// the relative-window predicate applied engine-side); ships the
    /// partial aggregate to the collector.
    fn partial_join(&mut self, key: Key, ts: Timestamp, seq: u64, arrival: Instant) {
        let window = self.cfg.query.window.window_of(ts);
        let (lo, hi) = (window.start.as_micros(), window.end.as_micros());
        let mut agg = PartialAgg::empty();
        let visited;
        let reader = &self.reader;
        let node_bytes = self.node_bytes;
        if let Some(cache) = self.inst.cache.as_mut() {
            visited = reader.scan_ts_range_addr(key, Timestamp::MIN, Timestamp::MAX, |t, addr| {
                cache.access(addr, node_bytes);
                let s = t.ts.as_micros();
                if s >= lo && s <= hi {
                    agg.add(t.value);
                }
            }) as u64;
        } else if self.inst.wants_breakdown() {
            let t0 = Instant::now();
            let mut hits: Vec<f64> = Vec::with_capacity(16);
            visited = reader.scan_ts_range(key, Timestamp::MIN, Timestamp::MAX, |t| {
                let s = t.ts.as_micros();
                if s >= lo && s <= hi {
                    hits.push(t.value);
                }
            }) as u64;
            let t1 = Instant::now();
            for v in hits {
                agg.add(v);
            }
            let t2 = Instant::now();
            self.inst.add_breakdown(
                t1.duration_since(t0).as_nanos() as u64,
                t2.duration_since(t1).as_nanos() as u64,
                0,
            );
        } else {
            visited = reader.scan_ts_range(key, Timestamp::MIN, Timestamp::MAX, |t| {
                let s = t.ts.as_micros();
                if s >= lo && s <= hi {
                    agg.add(t.value);
                }
            }) as u64;
        }
        self.inst.record_effectiveness(agg.count, visited);
        self.results += 1; // partial results produced by this joiner
                           // SEND-OK: the collector loops on recv until all JoinerDone markers
                           // arrive and never sends back to joiners, so this edge cannot cycle;
                           // a dead collector surfaces as a send error, not a wedge.
                           // PROTO: joiner-collector.stream
        let _ = self.collector.send(ToCollector::Partial(Box::new(Partial {
            seq,
            key,
            ts,
            arrival,
            agg,
        })));
    }

    fn expire(&mut self) {
        if self.last_wm == Timestamp::MIN {
            return;
        }
        let bound = self.last_wm.saturating_sub(self.cfg.query.window.length());
        self.inst.evicted += self.writer.evict_below(bound) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use oij_common::{AggSpec, Duration, OijQuery, Tuple};

    fn query(pre: i64, lateness: i64, emit: EmitMode) -> OijQuery {
        OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(lateness))
            .agg(AggSpec::Sum)
            .emit(emit)
            .build()
            .unwrap()
    }

    fn run_split(cfg: EngineConfig, events: &[Event]) -> (RunStats, Vec<FeatureRow>) {
        let (sink, rows) = Sink::collect();
        let mut engine = SplitJoin::spawn(cfg, sink).unwrap();
        for e in events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        (stats, got)
    }

    fn random_events(n: u64, keys: u64, jitter: i64) -> Vec<Event> {
        let mut staged: Vec<(i64, Side, Tuple)> = Vec::new();
        let mut x = 77u64;
        for i in 0..n as i64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(3) {
                Side::Base
            } else {
                Side::Probe
            };
            let j = if jitter > 0 {
                (x >> 11) as i64 % jitter
            } else {
                0
            };
            staged.push((
                i + j,
                side,
                Tuple::new(Timestamp::from_micros(i), x % keys, (x % 20) as f64),
            ));
        }
        staged.sort_by_key(|(a, _, _)| *a);
        staged
            .into_iter()
            .enumerate()
            .map(|(s, (_, side, t))| Event::data(s as u64, side, t))
            .collect()
    }

    #[test]
    fn broadcast_slicing_is_exact_in_eager_mode() {
        // Unlike Scale-OIJ, SplitJoin's broadcast gives every joiner a
        // consistent arrival prefix, so eager results are deterministic and
        // match the oracle for any J — even under disorder.
        let q = query(100, 80, EmitMode::Eager);
        let events = random_events(4000, 6, 80);
        let want = Oracle::new(q.clone()).run(&events);
        for joiners in [1usize, 3] {
            let (stats, got) = run_split(EngineConfig::new(q.clone(), joiners).unwrap(), &events);
            assert_eq!(stats.results as usize, want.len(), "J={joiners}");
            assert_eq!(got.len(), want.len());
            for (g, o) in got.iter().zip(&want) {
                assert_eq!(g.matched, o.matched, "J={joiners} seq {}", g.seq);
                assert!(g.agg_approx_eq(o, 1e-9), "J={joiners} seq {}", g.seq);
            }
        }
    }

    #[test]
    fn watermark_mode_is_exact() {
        let q = query(90, 200, EmitMode::Watermark);
        let events = random_events(4000, 4, 200);
        let want = Oracle::new(q.clone()).run(&events);
        let mut want = want;
        want.sort_by_key(|r| r.seq);
        let (_, got) = run_split(EngineConfig::new(q, 4).unwrap(), &events);
        assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    #[test]
    fn loads_are_perfectly_balanced() {
        let q = query(50, 0, EmitMode::Eager);
        let events = random_events(3000, 2, 0); // few keys — SplitJoin doesn't care
        let (stats, _) = run_split(EngineConfig::new(q, 4).unwrap(), &events);
        assert!(
            stats.unbalancedness < 1e-9,
            "loads: {:?}",
            stats.joiner_loads
        );
        // Everyone processed everything (the broadcast cost).
        for &l in &stats.joiner_loads {
            assert_eq!(l, events.len() as u64);
        }
    }

    #[test]
    fn min_aggregate_through_partials() {
        let mut q = query(100, 0, EmitMode::Eager);
        q.agg = AggSpec::Min;
        let events = random_events(2000, 3, 0);
        let want = Oracle::new(q.clone()).run(&events);
        let (_, got) = run_split(EngineConfig::new(q, 3).unwrap(), &events);
        for (g, o) in got.iter().zip(&want) {
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    #[test]
    fn expiration_preserves_results() {
        let q = query(40, 30, EmitMode::Eager);
        let mut cfg = EngineConfig::new(q.clone(), 2).unwrap();
        cfg.expire_every = 4;
        let events = random_events(3000, 4, 30);
        let want = Oracle::new(q).run(&events);
        let (stats, got) = run_split(cfg, &events);
        assert!(stats.evicted > 0);
        for (g, o) in got.iter().zip(&want) {
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }
}
