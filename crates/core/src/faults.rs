//! Deterministic fault injection and worker supervision.
//!
//! The paper pitches Scale-OIJ for *online* feature extraction, where a
//! hung joiner or a silently swallowed panic means wrong features under
//! live traffic. This module is the liveness/failure verification layer
//! that sits next to the memory-safety layer (DESIGN.md §8):
//!
//! - [`FaultPlan`] describes faults to inject, keyed by worker id and the
//!   worker-local ordinal of the data message that triggers them: a panic,
//!   a fixed per-message stall, a wedged (never-receiving) worker, and a
//!   slow or erroring sink. The plan is compiled in always but **zero-cost
//!   when empty**: workers carry `Option<WorkerFaults>` (one branch per
//!   message when `None`) and the engine front-ends add exactly one branch
//!   (the poison check) to `push`.
//! - [`FailureCell`] is the shared crash report: every worker body runs
//!   under [`run_supervised`] (`catch_unwind`), and the first panic's
//!   payload + worker identity land here, turning the old
//!   "worker panicked" guess into a structured
//!   [`Error::WorkerFailed`] report.
//! - [`send_guarded`] is the stall-tolerant routing primitive: a bounded
//!   `send_timeout` whose timeout consults the `FailureCell` to classify
//!   the outcome as a structured failure (worker died) or a stall (worker
//!   wedged but alive, [`Error::WorkerStalled`]).
//! - [`DrainBarrier`] replaces `std::sync::Barrier` for Scale-OIJ's final
//!   team drain: a plain barrier deadlocks forever when a teammate dies
//!   before arriving; this one falls through (and reports degradation)
//!   when the failure cell is poisoned or the engine raised its kill flag.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use crossbeam_channel::{SendTimeoutError, Sender};
use oij_common::{Error, Result};

use crate::config::{DISCONNECT_ATTRIBUTION_GRACE, JOIN_KILL_GRACE};
use crate::sink::Sink;

/// Worker-id alias for the Scale-OIJ scheduler thread in a [`FaultPlan`]
/// (the scheduler has no message ordinals; its ordinal counts ticks).
pub const SCHEDULER: usize = usize::MAX;

/// A deterministic fault-injection plan, plumbed through
/// [`EngineConfig`](crate::config::EngineConfig). Empty by default; every
/// fault is keyed by `(worker, ordinal)` where `ordinal` is the 0-based
/// index of the data message as received by that worker (heartbeats and
/// flush markers do not count), so injection is deterministic in the
/// worker's local message sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

#[derive(Debug, Clone)]
struct FaultEntry {
    worker: usize,
    ordinal: u64,
    kind: FaultKind,
}

/// What to inject (see the builder methods on [`FaultPlan`]).
#[derive(Debug, Clone)]
enum FaultKind {
    /// Panic with this payload when the worker reaches the ordinal.
    Panic(String),
    /// Sleep this long before every message from the ordinal onward.
    Stall(StdDuration),
    /// Stop receiving at the ordinal: the worker blocks (checking the
    /// engine's kill flag) and never drains its channel again.
    Wedge,
    /// Simulate a process crash at the ordinal: the worker marks the
    /// whole engine crashed (gating durable sinks) and exits without
    /// unwinding, as if the process had been killed.
    Crash,
    /// Sleep this long on every sink emission from the ordinal onward.
    SinkStall(StdDuration),
    /// Panic on `count` consecutive sink emissions starting at the
    /// ordinal (an erroring sink escalates to a supervised worker
    /// failure unless a retry policy absorbs it).
    SinkFail {
        /// How many consecutive emissions fail.
        count: u64,
    },
}

impl FaultPlan {
    /// The empty plan (no faults — the production configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Panic inside `worker` when it receives its `ordinal`-th data
    /// message, with `message` as the panic payload.
    pub fn panic_at(mut self, worker: usize, ordinal: u64, message: &str) -> Self {
        self.entries.push(FaultEntry {
            worker,
            ordinal,
            kind: FaultKind::Panic(message.to_string()),
        });
        self
    }

    /// Stall `worker` by `delay` on every data message from `ordinal` on.
    pub fn stall_from(mut self, worker: usize, ordinal: u64, delay: StdDuration) -> Self {
        self.entries.push(FaultEntry {
            worker,
            ordinal,
            kind: FaultKind::Stall(delay),
        });
        self
    }

    /// Wedge `worker` at `ordinal`: it stops receiving (without dying)
    /// until the engine tears down.
    pub fn wedge_at(mut self, worker: usize, ordinal: u64) -> Self {
        self.entries.push(FaultEntry {
            worker,
            ordinal,
            kind: FaultKind::Wedge,
        });
        self
    }

    /// Slow `worker`'s sink: every emission from `emit_ordinal` on sleeps
    /// `delay` (for SplitJoin the sink lives on the collector, addressed
    /// as worker `joiners`).
    pub fn sink_stall_from(mut self, worker: usize, emit_ordinal: u64, delay: StdDuration) -> Self {
        self.entries.push(FaultEntry {
            worker,
            ordinal: emit_ordinal,
            kind: FaultKind::SinkStall(delay),
        });
        self
    }

    /// Make `worker`'s sink fail (panic) on its `emit_ordinal`-th
    /// emission.
    pub fn sink_fail_at(self, worker: usize, emit_ordinal: u64) -> Self {
        self.sink_fail_burst(worker, emit_ordinal, 1)
    }

    /// Make `worker`'s sink fail on `count` consecutive emissions
    /// starting at `emit_ordinal`. Because each retry attempt advances
    /// the emission ordinal, a single-ordinal failure is transient by
    /// construction under [`SinkRetryPolicy`](crate::SinkRetryPolicy);
    /// a burst longer than the retry budget models a permanent outage.
    pub fn sink_fail_burst(mut self, worker: usize, emit_ordinal: u64, count: u64) -> Self {
        self.entries.push(FaultEntry {
            worker,
            ordinal: emit_ordinal,
            kind: FaultKind::SinkFail {
                count: count.max(1),
            },
        });
        self
    }

    /// Simulate a process crash inside `worker` when it receives its
    /// `ordinal`-th data message: the engine-wide crash flag is raised
    /// (durable sinks stop admitting rows, as nothing leaves a dead
    /// process), and the worker exits without unwinding. With
    /// durability configured, `oij_core::recovery` brings the run back.
    pub fn crash_at(mut self, worker: usize, ordinal: u64) -> Self {
        self.entries.push(FaultEntry {
            worker,
            ordinal,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Compiles the message-path faults for one worker. `None` (the empty
    /// plan, or no faults for this worker) keeps the worker loop at a
    /// single never-taken branch per message. `engine`/`report_as`
    /// identify the worker in crash reports (auxiliary threads report
    /// under their own label), and `cell` is where a simulated crash is
    /// recorded.
    pub fn for_worker(
        &self,
        worker: usize,
        engine: &'static str,
        report_as: usize,
        cell: &Arc<FailureCell>,
    ) -> Option<WorkerFaults> {
        let mut faults = WorkerFaults {
            panic_at: None,
            stall_from: None,
            wedge_at: None,
            crash_at: None,
            engine,
            worker: report_as,
            cell: Arc::clone(cell),
        };
        let mut any = false;
        for e in self.entries.iter().filter(|e| e.worker == worker) {
            match &e.kind {
                FaultKind::Panic(msg) => {
                    faults.panic_at = Some((e.ordinal, msg.clone()));
                    any = true;
                }
                FaultKind::Stall(d) => {
                    faults.stall_from = Some((e.ordinal, *d));
                    any = true;
                }
                FaultKind::Wedge => {
                    faults.wedge_at = Some(e.ordinal);
                    any = true;
                }
                FaultKind::Crash => {
                    faults.crash_at = Some(e.ordinal);
                    any = true;
                }
                FaultKind::SinkStall(_) | FaultKind::SinkFail { .. } => {}
            }
        }
        any.then_some(faults)
    }

    /// Wraps `sink` with this plan's sink faults for `worker` (identity
    /// when there are none). `kill` lets injected sink stalls cut short at
    /// engine teardown instead of serving out their backlog.
    pub fn wrap_sink(&self, worker: usize, sink: Sink, kill: Arc<AtomicBool>) -> Sink {
        let mut delay = None;
        let mut stall_from = 0;
        let mut fail = None;
        for e in self.entries.iter().filter(|e| e.worker == worker) {
            match &e.kind {
                FaultKind::SinkStall(d) => {
                    delay = Some(*d);
                    stall_from = e.ordinal;
                }
                FaultKind::SinkFail { count } => fail = Some((e.ordinal, *count)),
                _ => {}
            }
        }
        if delay.is_none() && fail.is_none() {
            return sink;
        }
        Sink::faulty(sink, delay, stall_from, fail, kill)
    }
}

/// Compiled message-path faults for one worker (see
/// [`FaultPlan::for_worker`]).
#[derive(Debug, Clone)]
pub struct WorkerFaults {
    panic_at: Option<(u64, String)>,
    stall_from: Option<(u64, StdDuration)>,
    wedge_at: Option<u64>,
    crash_at: Option<u64>,
    /// Identity under which a simulated crash is recorded.
    engine: &'static str,
    worker: usize,
    cell: Arc<FailureCell>,
}

/// What the worker loop should do after consulting the faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Process the message normally.
    Continue,
    /// The worker was wedged and the engine has torn down: return the
    /// report immediately (skip the final drain — degraded output).
    Exit,
}

impl WorkerFaults {
    /// Applies the faults due at `ordinal`. May panic (the supervisor
    /// catches it), sleep, or block wedged until `kill` is raised.
    ///
    /// Ordinals count individual **data messages**, not channel messages:
    /// a joiner draining a [`crate::message::BatchMsg`] calls this once
    /// per contained [`crate::message::DataMsg`], so an injection point
    /// that falls mid-batch fires exactly where it would on the
    /// unbatched path (remaining tuples in the batch are dropped on
    /// `Exit`, matching a worker death between channel receives).
    pub fn before_message(&self, ordinal: u64, kill: &AtomicBool) -> FaultAction {
        if let Some(at) = self.crash_at {
            if ordinal == at {
                // Simulated process death: gate durable sinks first (a
                // dead process emits nothing more), then exit without
                // unwinding — no drain, no partial-batch processing.
                self.cell.record_crash(self.engine, self.worker);
                return FaultAction::Exit;
            }
        }
        if let Some((at, msg)) = &self.panic_at {
            if ordinal == *at {
                panic!("{msg}");
            }
        }
        if let Some(at) = self.wedge_at {
            if ordinal >= at {
                // Wedged: alive but never receiving. Only the engine's
                // kill flag (raised at teardown) releases the worker.
                // ORDERING: Acquire — pairs with the Release `kill` store in the supervisor's deadline path, so teardown state set before the flag is visible here.
                while !kill.load(Ordering::Acquire) {
                    std::thread::sleep(StdDuration::from_millis(1));
                }
                return FaultAction::Exit;
            }
        }
        if let Some((from, delay)) = self.stall_from {
            if ordinal >= from {
                interruptible_sleep(delay, kill);
            }
        }
        FaultAction::Continue
    }
}

/// Sleeps `total` in small slices, returning early once `kill` is raised.
pub fn interruptible_sleep(total: StdDuration, kill: &AtomicBool) {
    let slice = StdDuration::from_millis(1);
    let mut remaining = total;
    while !remaining.is_zero() {
        // ORDERING: Acquire — pairs with the Release `kill` store in the supervisor's deadline path, so teardown state set before the flag is visible here.
        if kill.load(Ordering::Acquire) {
            return;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining -= step;
    }
}

/// A structured crash report: who died and with what payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Engine label (auxiliary threads use their own labels, e.g.
    /// `"scale-oij-scheduler"`).
    pub engine: &'static str,
    /// Worker index within the engine.
    pub worker: usize,
    /// Captured panic payload (or disconnect description).
    pub cause: String,
}

/// Shared first-failure slot for one engine instance. Workers record into
/// it from their supervisor; the driver thread consults it to classify
/// send timeouts and disconnects. First failure wins — later ones are
/// usually cascading effects of the first.
#[derive(Debug)]
pub struct FailureCell {
    poisoned: AtomicBool,
    crashed: AtomicBool,
    slot: Mutex<Option<WorkerFailure>>,
}

impl Default for FailureCell {
    fn default() -> Self {
        FailureCell {
            poisoned: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            slot: Mutex::new("failure_slot", None),
        }
    }
}

impl FailureCell {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a failure; keeps the first one.
    pub fn record(&self, engine: &'static str, worker: usize, cause: String) {
        // LOCK: failure_slot
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(WorkerFailure {
                engine,
                worker,
                cause,
            });
        }
        drop(slot);
        // ORDERING: Release — publishes the recorded failure before the flag; pairs with the Acquire load in `is_poisoned`.
        self.poisoned.store(true, Ordering::Release);
    }

    /// Records a simulated process crash: raises the crash flag (gating
    /// durable sinks) before recording the failure, so by the time the
    /// driver observes poison, the sinks have stopped admitting rows.
    pub fn record_crash(&self, engine: &'static str, worker: usize) {
        // ORDERING: Release — the crash gate must be visible to sinks no later than the failure record; pairs with the Acquire load in `is_crashed`.
        self.crashed.store(true, Ordering::Release);
        self.record(engine, worker, "simulated process crash".into());
    }

    /// Whether a simulated process crash has been recorded (consulted by
    /// durable sinks on every emission; cheap, lock-free).
    pub fn is_crashed(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release store in `record_crash`.
        self.crashed.load(Ordering::Acquire)
    }

    /// Whether any failure has been recorded (cheap, lock-free).
    pub fn is_poisoned(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release store in `record`, so a true flag guarantees the failure entry is readable.
        self.poisoned.load(Ordering::Acquire)
    }

    /// The first recorded failure, if any.
    pub fn failure(&self) -> Option<WorkerFailure> {
        if !self.is_poisoned() {
            return None;
        }
        // LOCK: failure_slot
        self.slot.lock().clone()
    }

    /// The first recorded failure as a structured error.
    pub fn to_error(&self) -> Option<Error> {
        self.failure().map(|f| Error::WorkerFailed {
            engine: f.engine,
            worker: f.worker,
            cause: f.cause,
        })
    }
}

/// Renders a panic payload into the `cause` string (the common `&str` /
/// `String` payloads verbatim; anything else by type name only).
fn panic_payload(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one worker body under supervision: a panic is caught, its payload
/// and the worker's identity are recorded into `cell`, and `None` is
/// returned instead of unwinding through the thread boundary.
pub fn run_supervised<R>(
    engine: &'static str,
    worker: usize,
    cell: &FailureCell,
    body: impl FnOnce() -> R,
) -> Option<R> {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(r) => Some(r),
        Err(payload) => {
            cell.record(engine, worker, panic_payload(payload.as_ref()));
            None
        }
    }
}

/// Stall-tolerant routed send: bounded by `deadline`, with the outcome
/// classified against the failure cell.
///
/// - fits within the deadline → `Ok`;
/// - the worker recorded a panic (timeout or disconnect) →
///   [`Error::WorkerFailed`] with the original cause;
/// - deadline exceeded with no recorded failure → the worker is wedged:
///   [`Error::WorkerStalled`];
/// - disconnected with no recorded failure → the receiving thread is gone
///   without a panic report (should not happen) → [`Error::WorkerFailed`]
///   with disconnect evidence.
pub fn send_guarded<T>(
    tx: &Sender<T>,
    msg: T,
    deadline: StdDuration,
    engine: &'static str,
    worker: usize,
    cell: &FailureCell,
) -> Result<()> {
    // SEND-OK: this IS send_guarded's body — the wait is deadline-bounded
    // and a timeout is translated into a WorkerStalled/WorkerFailed error.
    match tx.send_timeout(msg, deadline) {
        Ok(()) => Ok(()),
        Err(SendTimeoutError::Timeout(_)) => Err(cell.to_error().unwrap_or(Error::WorkerStalled {
            engine,
            worker,
            waited: deadline,
        })),
        Err(SendTimeoutError::Disconnected(_)) => {
            // A panicking worker drops its receiver while unwinding —
            // strictly before its supervisor records the payload. Grant the
            // supervisor a short grace so the disconnect is attributed to
            // the actual panic instead of a generic disconnect report.
            Err(
                await_failure(cell, DISCONNECT_ATTRIBUTION_GRACE).unwrap_or(Error::WorkerFailed {
                    engine,
                    worker,
                    cause: "input channel disconnected without a recorded panic".into(),
                }),
            )
        }
    }
}

/// Polls the failure cell for up to `grace` (the record usually lands
/// microseconds after the observable side effect of the failure).
fn await_failure(cell: &FailureCell, grace: StdDuration) -> Option<Error> {
    let start = std::time::Instant::now();
    loop {
        if let Some(e) = cell.to_error() {
            return Some(e);
        }
        if start.elapsed() >= grace {
            return None;
        }
        std::thread::sleep(StdDuration::from_micros(200));
    }
}

/// Resolves a supervised `JoinHandle` result into either the worker's
/// report or the structured failure (falling back to a generic report when
/// the cell is — unexpectedly — empty).
pub(crate) fn join_outcome<R>(
    outcome: std::thread::Result<Option<R>>,
    engine: &'static str,
    worker: usize,
    cell: &FailureCell,
) -> Result<R> {
    match outcome {
        Ok(Some(r)) => Ok(r),
        // `Ok(None)`: the supervisor caught a panic and recorded it.
        // `Err(_)`: the panic escaped `catch_unwind` (abort-on-unwind
        // payloads) — still surface whatever the cell knows.
        Ok(None) | Err(_) => Err(cell.to_error().unwrap_or(Error::WorkerFailed {
            engine,
            worker,
            cause: "worker terminated abnormally (no payload captured)".into(),
        })),
    }
}

/// Joins a supervised worker with a bounded deadline — never a blocking
/// `join` on a thread that may be wedged.
///
/// Returns `(salvaged report, error)`:
/// - worker wound down in time → its report, or the structured failure if
///   it panicked;
/// - deadline exceeded → the kill flag is raised (releasing injected
///   wedges and stalls) and a short grace granted; the worker's report is
///   salvaged if it then exits, the handle is **detached** if it does not.
///   Either way the outcome carries an error — the failure already in the
///   cell if one was recorded, [`Error::WorkerStalled`] otherwise.
pub fn join_within<R>(
    handle: std::thread::JoinHandle<Option<R>>,
    deadline: StdDuration,
    engine: &'static str,
    worker: usize,
    cell: &FailureCell,
    kill: &AtomicBool,
) -> (Option<R>, Option<Error>) {
    let poll = StdDuration::from_micros(200);
    let start = std::time::Instant::now();
    while !handle.is_finished() {
        if start.elapsed() >= deadline {
            // ORDERING: Release — publishes supervisor teardown state before workers observe the kill flag via their Acquire loads.
            kill.store(true, Ordering::Release);
            let grace = std::time::Instant::now();
            while !handle.is_finished() {
                if grace.elapsed() >= JOIN_KILL_GRACE {
                    let err = cell.to_error().unwrap_or(Error::WorkerStalled {
                        engine,
                        worker,
                        waited: deadline,
                    });
                    drop(handle); // detach: never block on a wedged worker
                    return (None, Some(err));
                }
                std::thread::sleep(poll);
            }
            let report = join_outcome(handle.join(), engine, worker, cell).ok();
            let err = cell.to_error().unwrap_or(Error::WorkerStalled {
                engine,
                worker,
                waited: deadline,
            });
            return (report, Some(err));
        }
        std::thread::sleep(poll);
    }
    match join_outcome(handle.join(), engine, worker, cell) {
        Ok(r) => (Some(r), None),
        Err(e) => (None, Some(e)),
    }
}

/// A failure-aware drain barrier for Scale-OIJ's end-of-input team
/// rendezvous. `wait` returns `true` when the whole team arrived (safe to
/// run the final drain) and `false` when a failure or the engine's kill
/// flag was observed first — the caller then skips the final drain and
/// reports partial output instead of deadlocking on a dead teammate.
#[derive(Debug)]
pub(crate) struct DrainBarrier {
    arrived: AtomicUsize,
    total: usize,
}

impl DrainBarrier {
    pub(crate) fn new(total: usize) -> Self {
        DrainBarrier {
            arrived: AtomicUsize::new(0),
            total,
        }
    }

    pub(crate) fn wait(&self, cell: &FailureCell, kill: &AtomicBool) -> bool {
        // ORDERING: AcqRel — each arrival is published to (and ordered with) every other worker's Acquire load below.
        self.arrived.fetch_add(1, Ordering::AcqRel);
        loop {
            // ORDERING: Acquire — pairs with the AcqRel `fetch_add` above: seeing `total` arrivals implies all pre-barrier writes are visible.
            if self.arrived.load(Ordering::Acquire) >= self.total {
                return true;
            }
            // ORDERING: Acquire — pairs with the Release `kill` store in the supervisor's deadline path, so teardown state set before the flag is visible here.
            if kill.load(Ordering::Acquire) || cell.is_poisoned() {
                return false;
            }
            std::thread::sleep(StdDuration::from_micros(50));
        }
    }
}

/// Shared sink-fault state (interior mutability because `Sink::emit` takes
/// `&self`; cloned sinks share the emission counter, matching how one
/// worker's sink handle may be cloned internally).
#[derive(Debug)]
pub struct SinkFaults {
    pub(crate) emitted: AtomicU64,
    pub(crate) delay: Option<StdDuration>,
    pub(crate) stall_from: u64,
    /// `(first_ordinal, count)`: fail this many consecutive emissions.
    pub(crate) fail: Option<(u64, u64)>,
    pub(crate) kill: Arc<AtomicBool>,
}

impl SinkFaults {
    /// Applies the configured sink faults to the emission with this
    /// ordinal; panics on an injected sink failure.
    pub(crate) fn before_emit(&self) {
        // ORDERING: Relaxed — ordinal allocator only; the panic decision needs no cross-thread ordering.
        let n = self.emitted.fetch_add(1, Ordering::Relaxed);
        if let Some((from, count)) = self.fail {
            if n >= from && n - from < count {
                panic!("injected sink failure at emit {n}");
            }
        }
        if let Some(d) = self.delay {
            if n >= self.stall_from {
                interruptible_sleep(d, &self.kill);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(plan: &FaultPlan, worker: usize) -> Option<WorkerFaults> {
        plan.for_worker(worker, "test-engine", worker, &Arc::new(FailureCell::new()))
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(compile(&plan, 0).is_none());
        let kill = Arc::new(AtomicBool::new(false));
        let sink = plan.wrap_sink(0, Sink::null(), kill);
        assert!(matches!(sink, Sink::Null));
    }

    #[test]
    fn faults_bind_to_their_worker() {
        let plan =
            FaultPlan::none()
                .panic_at(2, 10, "boom")
                .stall_from(1, 0, StdDuration::from_millis(1));
        assert!(compile(&plan, 0).is_none());
        assert!(compile(&plan, 1).is_some());
        assert!(compile(&plan, 2).is_some());
    }

    #[test]
    fn crash_records_and_exits_without_unwinding() {
        let cell = Arc::new(FailureCell::new());
        let plan = FaultPlan::none().crash_at(3, 2);
        let faults = plan.for_worker(3, "test-engine", 3, &cell).unwrap();
        let kill = AtomicBool::new(false);
        assert_eq!(faults.before_message(0, &kill), FaultAction::Continue);
        assert!(!cell.is_crashed());
        assert_eq!(faults.before_message(2, &kill), FaultAction::Exit);
        assert!(cell.is_crashed());
        assert!(cell.is_poisoned());
        let f = cell.failure().expect("crash recorded");
        assert_eq!((f.engine, f.worker), ("test-engine", 3));
        assert!(f.cause.contains("simulated process crash"));
    }

    #[test]
    fn sink_fail_burst_spans_consecutive_emissions() {
        let faults = SinkFaults {
            emitted: AtomicU64::new(0),
            delay: None,
            stall_from: 0,
            fail: Some((1, 2)),
            kill: Arc::new(AtomicBool::new(false)),
        };
        faults.before_emit(); // ordinal 0: fine
        for expect_panic in [true, true, false] {
            let r = catch_unwind(AssertUnwindSafe(|| faults.before_emit()));
            assert_eq!(r.is_err(), expect_panic);
        }
    }

    #[test]
    fn supervision_captures_payload_and_identity() {
        let cell = FailureCell::new();
        let out = run_supervised("test-engine", 7, &cell, || -> u32 {
            panic!("injected panic payload");
        });
        assert!(out.is_none());
        let f = cell.failure().expect("recorded");
        assert_eq!(f.engine, "test-engine");
        assert_eq!(f.worker, 7);
        assert_eq!(f.cause, "injected panic payload");
        // First failure wins.
        cell.record("test-engine", 9, "later".into());
        assert_eq!(cell.failure().unwrap().worker, 7);
    }

    #[test]
    fn supervision_passes_results_through() {
        let cell = FailureCell::new();
        let out = run_supervised("test-engine", 0, &cell, || 41 + 1);
        assert_eq!(out, Some(42));
        assert!(!cell.is_poisoned());
    }

    #[test]
    fn send_guarded_classifies_timeout_vs_failure() {
        let cell = FailureCell::new();
        let (tx, _rx) = crossbeam_channel::bounded::<u32>(1);
        tx.send(0).unwrap();
        // Full channel, empty cell → stalled.
        let err = send_guarded(&tx, 1, StdDuration::from_millis(10), "e", 3, &cell).unwrap_err();
        assert!(matches!(err, Error::WorkerStalled { worker: 3, .. }));
        // Full channel, poisoned cell → the recorded failure.
        cell.record("e", 5, "died first".into());
        let err = send_guarded(&tx, 1, StdDuration::from_millis(10), "e", 3, &cell).unwrap_err();
        assert!(matches!(err, Error::WorkerFailed { worker: 5, .. }));
    }

    #[test]
    fn send_guarded_classifies_disconnect() {
        let cell = FailureCell::new();
        let (tx, rx) = crossbeam_channel::bounded::<u32>(1);
        drop(rx);
        let err = send_guarded(&tx, 1, StdDuration::from_secs(5), "e", 0, &cell).unwrap_err();
        assert!(matches!(err, Error::WorkerFailed { .. }));
    }

    #[test]
    fn join_within_salvages_and_classifies() {
        let cell = FailureCell::new();
        let kill = Arc::new(AtomicBool::new(false));
        // Clean worker: report, no error.
        let h = std::thread::spawn(|| Some(7u32));
        let (r, e) = join_within(h, StdDuration::from_secs(1), "e", 0, &cell, &kill);
        assert_eq!(r, Some(7));
        assert!(e.is_none());
        // Worker that only winds down once killed: the deadline raises the
        // kill flag, the report is salvaged, the outcome is a stall.
        let k2 = Arc::clone(&kill);
        let h = std::thread::spawn(move || {
            while !k2.load(Ordering::Acquire) {
                std::thread::sleep(StdDuration::from_millis(1));
            }
            Some(9u32)
        });
        let (r, e) = join_within(h, StdDuration::from_millis(50), "e", 1, &cell, &kill);
        assert_eq!(r, Some(9));
        assert!(matches!(e, Some(Error::WorkerStalled { worker: 1, .. })));
    }

    #[test]
    fn drain_barrier_falls_through_on_poison() {
        let cell = Arc::new(FailureCell::new());
        let kill = AtomicBool::new(false);
        let barrier = DrainBarrier::new(2);
        cell.record("e", 0, "dead teammate".into());
        // Only one of two arrives; without the poison check this would
        // block forever.
        assert!(!barrier.wait(&cell, &kill));
    }

    #[test]
    fn wedge_releases_on_kill() {
        let plan = FaultPlan::none().wedge_at(0, 0);
        let faults = compile(&plan, 0).unwrap();
        let kill = Arc::new(AtomicBool::new(false));
        let k2 = Arc::clone(&kill);
        let h = std::thread::spawn(move || faults.before_message(0, &k2));
        std::thread::sleep(StdDuration::from_millis(20));
        assert!(!h.is_finished(), "wedge must hold until kill");
        kill.store(true, Ordering::Release);
        assert_eq!(h.join().unwrap(), FaultAction::Exit);
    }
}
