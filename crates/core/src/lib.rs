//! # oij-core — the online interval join engines
//!
//! This crate is the primary contribution of the reproduction: four
//! complete parallel OIJ engines behind one [`engine::OijEngine`] interface,
//! matching the systems evaluated in the paper.
//!
//! | Engine | Paper role | Module |
//! |---|---|---|
//! | **Key-OIJ** | the existing Flink-style baseline: static key partitioning, unsorted buffers, full scans | [`keyoij`] |
//! | **Scale-OIJ** | the paper's proposal: SWMR time-travel index, virtual-team shared processing, dynamic balanced schedule, incremental window aggregation | [`scaleoij`] |
//! | **SplitJoin-OIJ** | SplitJoin (USENIX ATC'16) adapted to OIJ semantics: broadcast distribution, sliced storage, partial-aggregate collection | [`splitjoin`] |
//! | **OpenMLDB baseline** | the unmodified feature-store path: one shared ordered store behind a writer-exclusive lock, no disorder handling | [`openmldb`] |
//!
//! A single-threaded brute-force [`oracle`] provides ground truth for the
//! test suite.
//!
//! ## Lifecycle
//!
//! ```
//! use oij_core::{engine::OijEngine, keyoij::KeyOij, config::EngineConfig, sink::Sink};
//! use oij_common::{Event, Side, Tuple, Timestamp, OijQuery, Duration};
//!
//! let query = OijQuery::sum_over_preceding(
//!     Duration::from_micros(100), Duration::ZERO).unwrap();
//! let config = EngineConfig::new(query, 2).unwrap();
//! let (sink, rows) = Sink::collect();
//! let mut engine = KeyOij::spawn(config, sink).unwrap();
//!
//! engine.push(Event::data(0, Side::Probe, Tuple::new(Timestamp::from_micros(10), 7, 2.5))).unwrap();
//! engine.push(Event::data(1, Side::Base, Tuple::new(Timestamp::from_micros(50), 7, 0.0))).unwrap();
//! let stats = engine.finish().unwrap();
//!
//! assert_eq!(stats.results, 1);
//! assert_eq!(rows.lock()[0].agg, Some(2.5));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub(crate) mod driver;
pub mod engine;
pub mod faults;
pub mod instrument;
pub mod keyoij;
pub(crate) mod message;
pub mod openmldb;
pub mod oracle;
pub mod recovery;
pub mod scaleoij;
pub mod sink;
pub mod splitjoin;
pub(crate) mod sync;

pub use batch::SlotPool;
pub use config::SinkRetryPolicy;
pub use config::{EngineConfig, Instrumentation, LatePolicy};
pub use engine::{EngineKind, OijEngine, RunStats};
pub use faults::{FailureCell, FaultPlan, WorkerFailure, SCHEDULER};
pub use keyoij::KeyOij;
pub use oij_durability::{DurabilityConfig, FsyncPolicy};
pub use openmldb::OpenMldbBaseline;
pub use oracle::Oracle;
pub use recovery::{recover, spawn_engine, RecoveryReport};
pub use scaleoij::ScaleOij;
pub use sink::Sink;
pub use splitjoin::SplitJoin;

/// 64-bit finalising mix (from MurmurHash3): maps keys to well-spread hash
/// values for partitioning.
#[inline]
pub fn hash_key(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}
