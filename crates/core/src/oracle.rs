//! Brute-force single-threaded reference implementation.
//!
//! The oracle computes ground-truth feature rows for both emission modes
//! and is the yardstick every parallel engine is tested against:
//!
//! - **Eager** mode replays events in arrival order and, for each base
//!   tuple, aggregates the probe tuples *that have already arrived* and lie
//!   in its window — the semantics of Flink's interval join and of all
//!   engines in `EmitMode::Eager`.
//! - **Watermark** mode aggregates, for each base tuple, **all** probe
//!   tuples in its window regardless of arrival order. Engines in
//!   `EmitMode::Watermark` must match this exactly whenever the stream's
//!   disorder respects the lateness bound.
//!
//! The oracle never evicts: expiration in the engines only drops tuples
//! that no lateness-compliant base tuple can still match, so the
//! no-eviction answer is identical on compliant streams.

use std::collections::BTreeMap;

use oij_agg::FullWindowAgg;
use oij_common::{EmitMode, Event, FeatureRow, Key, OijQuery, Side};

/// The reference implementation. Construct, feed the whole event feed, and
/// read the rows.
pub struct Oracle {
    query: OijQuery,
}

impl Oracle {
    /// Creates an oracle for `query` (its `emit` field selects the mode).
    pub fn new(query: OijQuery) -> Self {
        Oracle { query }
    }

    /// Computes the ground-truth rows for an arrival-ordered event feed.
    /// Rows are returned in base-tuple arrival order.
    pub fn run(&self, events: &[Event]) -> Vec<FeatureRow> {
        match self.query.emit {
            EmitMode::Eager => self.run_eager(events),
            EmitMode::Watermark => self.run_watermark(events),
        }
    }

    fn run_eager(&self, events: &[Event]) -> Vec<FeatureRow> {
        let mut probes: BTreeMap<Key, BTreeMap<(i64, u64), f64>> = BTreeMap::new();
        let mut rows = Vec::new();
        for event in events {
            let Some((side, tuple)) = event.as_data() else {
                continue;
            };
            match side {
                Side::Probe => {
                    probes
                        .entry(tuple.key)
                        .or_default()
                        .insert((tuple.ts.as_micros(), event.seq), tuple.value);
                }
                Side::Base => {
                    let w = self.query.window.window_of(tuple.ts);
                    let mut agg = FullWindowAgg::new(self.query.agg);
                    if let Some(series) = probes.get(&tuple.key) {
                        for (_, &v) in
                            series.range((w.start.as_micros(), 0)..=(w.end.as_micros(), u64::MAX))
                        {
                            agg.add(v);
                        }
                    }
                    rows.push(FeatureRow::new(
                        tuple.ts,
                        tuple.key,
                        event.seq,
                        agg.finish(),
                        agg.count(),
                    ));
                }
            }
        }
        rows
    }

    fn run_watermark(&self, events: &[Event]) -> Vec<FeatureRow> {
        // Full knowledge: index every probe tuple first.
        let mut probes: BTreeMap<Key, BTreeMap<(i64, u64), f64>> = BTreeMap::new();
        for event in events {
            if let Some((Side::Probe, tuple)) = event.as_data() {
                probes
                    .entry(tuple.key)
                    .or_default()
                    .insert((tuple.ts.as_micros(), event.seq), tuple.value);
            }
        }
        let mut rows = Vec::new();
        for event in events {
            if let Some((Side::Base, tuple)) = event.as_data() {
                let w = self.query.window.window_of(tuple.ts);
                let mut agg = FullWindowAgg::new(self.query.agg);
                if let Some(series) = probes.get(&tuple.key) {
                    for (_, &v) in
                        series.range((w.start.as_micros(), 0)..=(w.end.as_micros(), u64::MAX))
                    {
                        agg.add(v);
                    }
                }
                rows.push(FeatureRow::new(
                    tuple.ts,
                    tuple.key,
                    event.seq,
                    agg.finish(),
                    agg.count(),
                ));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{AggSpec, Duration, Timestamp, Tuple};

    fn ev(seq: u64, side: Side, ts: i64, key: Key, value: f64) -> Event {
        Event::data(
            seq,
            side,
            Tuple::new(Timestamp::from_micros(ts), key, value),
        )
    }

    fn query(pre: i64, emit: EmitMode) -> OijQuery {
        OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(1000))
            .agg(AggSpec::Sum)
            .emit(emit)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_figure_3a_example() {
        // Window (-2s, 0); streams from Figure 3a (times in seconds→µs).
        let s = |t: i64| t * 1_000_000;
        let events = vec![
            ev(0, Side::Probe, s(1), 1, 10.0), // r1 @1s
            ev(1, Side::Base, s(2), 1, 0.0),   // s1 @2s → {r1}
            ev(2, Side::Probe, s(3), 1, 20.0), // r2 @3s
            ev(3, Side::Probe, s(5), 1, 30.0), // r3 @5s
            ev(4, Side::Probe, s(6), 1, 40.0), // r4 @6s
            ev(5, Side::Base, s(7), 1, 0.0),   // s2 @7s → {r3, r4}
            ev(6, Side::Probe, s(8), 1, 50.0), // r5 @8s
            ev(7, Side::Base, s(9), 1, 0.0),   // s3 @9s → {r5} (r4 @6s < 7s)
        ];
        let q = OijQuery::builder()
            .preceding(Duration::from_secs(2))
            .agg(AggSpec::Sum)
            .build()
            .unwrap();
        let rows = Oracle::new(q).run(&events);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].agg, Some(10.0)); // s1: r1
        assert_eq!(rows[1].agg, Some(70.0)); // s2: r3+r4
        assert_eq!(rows[2].agg, Some(50.0)); // s3: r5 only (r4 @6s < 7s)
    }

    #[test]
    fn eager_misses_probes_arriving_after_base() {
        let events = vec![
            ev(0, Side::Base, 100, 1, 0.0), // base first
            ev(1, Side::Probe, 90, 1, 5.0), // in-window probe arrives late
        ];
        let eager = Oracle::new(query(50, EmitMode::Eager)).run(&events);
        assert_eq!(eager[0].agg, Some(0.0));
        assert_eq!(eager[0].matched, 0);

        let exact = Oracle::new(query(50, EmitMode::Watermark)).run(&events);
        assert_eq!(exact[0].agg, Some(5.0));
        assert_eq!(exact[0].matched, 1);
    }

    #[test]
    fn modes_agree_on_in_order_streams() {
        let mut events = Vec::new();
        let mut x = 5u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(2) {
                Side::Probe
            } else {
                Side::Base
            };
            events.push(ev(i, side, i as i64 * 3, x % 4, (x % 100) as f64));
        }
        let eager = Oracle::new(query(40, EmitMode::Eager)).run(&events);
        let exact = Oracle::new(query(40, EmitMode::Watermark)).run(&events);
        assert_eq!(eager, exact);
        assert!(!eager.is_empty());
    }

    #[test]
    fn keys_never_cross_join() {
        let events = vec![
            ev(0, Side::Probe, 10, 1, 100.0),
            ev(1, Side::Probe, 10, 2, 7.0),
            ev(2, Side::Base, 12, 2, 0.0),
        ];
        let rows = Oracle::new(query(50, EmitMode::Eager)).run(&events);
        assert_eq!(rows[0].agg, Some(7.0));
    }

    #[test]
    fn window_bounds_are_inclusive() {
        let events = vec![
            ev(0, Side::Probe, 50, 1, 1.0),  // exactly at window start
            ev(1, Side::Probe, 100, 1, 2.0), // exactly at base ts
            ev(2, Side::Probe, 49, 1, 4.0),  // just outside
            ev(3, Side::Base, 100, 1, 0.0),
        ];
        let rows = Oracle::new(query(50, EmitMode::Eager)).run(&events);
        assert_eq!(rows[0].agg, Some(3.0));
        assert_eq!(rows[0].matched, 2);
    }
}
