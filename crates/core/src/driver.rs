//! Driver-side bookkeeping shared by all engines.
//!
//! Each engine's `push` runs on the caller's thread ("the driver"). This
//! helper owns the watermark tracker and run timing and converts public
//! [`Event`]s into internal [`DataMsg`]s. With durability configured it
//! also write-ahead-logs every ingested tuple (with its pre-observation
//! watermark stamp) before the engine may dispatch it, and replays
//! recovered tuples with their **original** stamps so late/on-time
//! classification is identical across the crash (DESIGN.md §11).

use std::sync::Arc;
use std::time::Instant;

use oij_common::{Duration, Error, Event, EventKind, Result, Timestamp, WatermarkTracker};
use oij_durability::{DurabilityRuntime, LoggedEvent, RetentionSpec};

use crate::config::EngineConfig;
use crate::engine::RunStats;
use crate::message::DataMsg;

/// Opens the durability runtime for `cfg` (or `None` when durability is
/// off). `side_output` tells the checkpoint compactor whether late
/// tuples are diverted to markers (Scale-OIJ under
/// `LatePolicy::SideOutput`) or processed best-effort like everywhere
/// else.
pub(crate) fn open_durability(
    cfg: &EngineConfig,
    side_output: bool,
) -> Result<Option<Arc<DurabilityRuntime>>> {
    match &cfg.durability {
        Some(d) => {
            let spec = RetentionSpec {
                extent: cfg.query.window.length(),
                lateness: cfg.query.window.lateness,
                side_output,
            };
            Ok(Some(Arc::new(DurabilityRuntime::open(d, spec)?)))
        }
        None => Ok(None),
    }
}

/// Watermark + timing state for one run.
pub(crate) struct Driver {
    tracker: WatermarkTracker,
    durable: Option<Arc<DurabilityRuntime>>,
    started: Option<Instant>,
    pushed: u64,
    finished: bool,
}

/// What `Driver::prepare` tells the engine to do with an event.
pub(crate) enum Prepared {
    /// Route this data message.
    Data(DataMsg),
    /// The event was an input flush marker; stop accepting input.
    Flush,
}

impl Driver {
    /// A driver with optional durability. On recovery the watermark
    /// tracker is re-seeded with the maximum event time restored from
    /// the log, so the first live event after replay sees the same
    /// watermark it would have in the uninterrupted run.
    pub(crate) fn with_durability(
        lateness: Duration,
        durable: Option<Arc<DurabilityRuntime>>,
    ) -> Self {
        let tracker = WatermarkTracker::new(lateness);
        if let Some(rt) = &durable {
            if let Some(max_ts) = rt.recovered_max_ts() {
                tracker.observe(Timestamp::from_micros(max_ts));
            }
        }
        Driver {
            tracker,
            durable,
            started: None,
            pushed: 0,
            finished: false,
        }
    }

    /// Converts an incoming event, stamping arrival time and the
    /// **pre-observation** watermark (see [`DataMsg::watermark`]). With
    /// durability enabled the event is appended to the WAL *before* it
    /// is returned for dispatch: once the caller sees `Ok`, the tuple
    /// survives a crash.
    pub(crate) fn prepare(&mut self, event: Event) -> Result<Prepared> {
        if self.finished {
            return Err(Error::InvalidState("push after finish".into()));
        }
        let now = Instant::now();
        if self.started.is_none() {
            self.started = Some(now);
        }
        match event.kind {
            EventKind::Flush => Ok(Prepared::Flush),
            EventKind::Data { side, tuple } => {
                // The stamp must be read BEFORE the tracker observes the
                // tuple (the "pre-observation watermark" contract) and the
                // WAL append must precede dispatch (crash durability).
                // STAMP: stamp-observe.pre
                let watermark = self.tracker.current().time();
                if let Some(rt) = &self.durable {
                    // STAMP: wal-dispatch.pre
                    rt.record_event(LoggedEvent {
                        seq: event.seq,
                        side,
                        ts: tuple.ts.as_micros(),
                        key: tuple.key,
                        value: tuple.value,
                        stamp: watermark.as_micros(),
                    })?;
                }
                // STAMP: stamp-observe.post
                self.tracker.observe(tuple.ts);
                self.pushed += 1;
                // STAMP: wal-dispatch.post
                Ok(Prepared::Data(DataMsg {
                    side,
                    tuple,
                    seq: event.seq,
                    arrival: now,
                    watermark,
                }))
            }
        }
    }

    /// Converts a **replayed** event: the message carries the logged
    /// pre-observation watermark `stamp` instead of a freshly computed
    /// one (identical late classification), nothing is appended to the
    /// WAL (the event is already in it), and the replay counter ticks.
    pub(crate) fn prepare_stamped(&mut self, event: Event, stamp: Timestamp) -> Result<Prepared> {
        if self.finished {
            return Err(Error::InvalidState("push after finish".into()));
        }
        let now = Instant::now();
        if self.started.is_none() {
            self.started = Some(now);
        }
        match event.kind {
            EventKind::Flush => Ok(Prepared::Flush),
            EventKind::Data { side, tuple } => {
                self.tracker.observe(tuple.ts);
                self.pushed += 1;
                if let Some(rt) = &self.durable {
                    rt.note_replayed();
                }
                Ok(Prepared::Data(DataMsg {
                    side,
                    tuple,
                    seq: event.seq,
                    arrival: now,
                    watermark: stamp,
                }))
            }
        }
    }

    /// Marks the run finished; returns `(input_tuples, elapsed)`.
    pub(crate) fn finish(&mut self) -> Result<(u64, std::time::Duration)> {
        if self.finished {
            return Err(Error::InvalidState("finish called twice".into()));
        }
        self.finished = true;
        let elapsed = self
            .started
            .map(|s| s.elapsed())
            .unwrap_or_else(|| std::time::Duration::from_nanos(1));
        Ok((self.pushed, elapsed))
    }

    /// Folds durability metrics into the run stats. With durability
    /// enabled the ingest/emission counters are replaced by the
    /// *lifetime* counters restored from the log, so a crashed-and-
    /// recovered run reports the same totals as an uninterrupted one
    /// (replayed events are not re-counted). No-op otherwise.
    pub(crate) fn finalize_stats(&self, stats: &mut RunStats) {
        let Some(rt) = &self.durable else {
            return;
        };
        let m = rt.metrics();
        stats.input_tuples = m.total_ingested;
        stats.results = m.emitted_rows;
        stats.late_violations = m.total_late;
        stats.late_side_outputs = m.emitted_late;
        stats.wal_bytes_written = m.wal_bytes_written;
        stats.wal_records_replayed = m.wal_records_replayed;
        stats.checkpoint_count = m.checkpoint_count;
        stats.recovery_duration = m.recovery_duration;
        stats.rows_deduped_on_recovery = m.rows_deduped_on_recovery;
        let secs = stats.elapsed.as_secs_f64().max(1e-9);
        stats.throughput = stats.input_tuples as f64 / secs;
    }

    /// The current watermark (diagnostics).
    #[allow(dead_code)]
    pub(crate) fn watermark(&self) -> Timestamp {
        self.tracker.current().time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{Side, Tuple};

    fn ev(seq: u64, ts: i64) -> Event {
        Event::data(
            seq,
            Side::Probe,
            Tuple::new(Timestamp::from_micros(ts), 1, 0.0),
        )
    }

    #[test]
    fn watermark_is_pre_observation() {
        let mut d = Driver::with_durability(Duration::from_micros(10), None);
        let Prepared::Data(m1) = d.prepare(ev(0, 100)).unwrap() else {
            panic!()
        };
        assert_eq!(m1.watermark, Timestamp::MIN); // nothing observed before
        let Prepared::Data(m2) = d.prepare(ev(1, 200)).unwrap() else {
            panic!()
        };
        assert_eq!(m2.watermark, Timestamp::from_micros(90)); // 100 - 10
    }

    #[test]
    fn push_after_finish_errors() {
        let mut d = Driver::with_durability(Duration::ZERO, None);
        d.prepare(ev(0, 1)).unwrap();
        let (n, _) = d.finish().unwrap();
        assert_eq!(n, 1);
        assert!(d.prepare(ev(1, 2)).is_err());
        assert!(d.finish().is_err());
    }

    #[test]
    fn stamped_replay_keeps_the_logged_watermark() {
        let mut d = Driver::with_durability(Duration::from_micros(10), None);
        // A replayed event carries its original stamp even though the
        // tracker would compute something else.
        let Prepared::Data(m) = d
            .prepare_stamped(ev(0, 100), Timestamp::from_micros(42))
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(m.watermark, Timestamp::from_micros(42));
        // The tracker still observed the event time.
        assert_eq!(d.watermark(), Timestamp::from_micros(90));
    }
}
