//! Driver-side bookkeeping shared by all engines.
//!
//! Each engine's `push` runs on the caller's thread ("the driver"). This
//! helper owns the watermark tracker and run timing and converts public
//! [`Event`]s into internal [`DataMsg`]s.

use std::time::Instant;

use oij_common::{Duration, Error, Event, EventKind, Result, Timestamp, WatermarkTracker};

use crate::message::DataMsg;

/// Watermark + timing state for one run.
pub(crate) struct Driver {
    tracker: WatermarkTracker,
    started: Option<Instant>,
    pushed: u64,
    finished: bool,
}

/// What `Driver::prepare` tells the engine to do with an event.
pub(crate) enum Prepared {
    /// Route this data message.
    Data(DataMsg),
    /// The event was an input flush marker; stop accepting input.
    Flush,
}

impl Driver {
    pub(crate) fn new(lateness: Duration) -> Self {
        Driver {
            tracker: WatermarkTracker::new(lateness),
            started: None,
            pushed: 0,
            finished: false,
        }
    }

    /// Converts an incoming event, stamping arrival time and the
    /// **pre-observation** watermark (see [`DataMsg::watermark`]).
    pub(crate) fn prepare(&mut self, event: Event) -> Result<Prepared> {
        if self.finished {
            return Err(Error::InvalidState("push after finish".into()));
        }
        let now = Instant::now();
        if self.started.is_none() {
            self.started = Some(now);
        }
        match event.kind {
            EventKind::Flush => Ok(Prepared::Flush),
            EventKind::Data { side, tuple } => {
                let watermark = self.tracker.current().time();
                self.tracker.observe(tuple.ts);
                self.pushed += 1;
                Ok(Prepared::Data(DataMsg {
                    side,
                    tuple,
                    seq: event.seq,
                    arrival: now,
                    watermark,
                }))
            }
        }
    }

    /// Marks the run finished; returns `(input_tuples, elapsed)`.
    pub(crate) fn finish(&mut self) -> Result<(u64, std::time::Duration)> {
        if self.finished {
            return Err(Error::InvalidState("finish called twice".into()));
        }
        self.finished = true;
        let elapsed = self
            .started
            .map(|s| s.elapsed())
            .unwrap_or_else(|| std::time::Duration::from_nanos(1));
        Ok((self.pushed, elapsed))
    }

    /// The current watermark (diagnostics).
    #[allow(dead_code)]
    pub(crate) fn watermark(&self) -> Timestamp {
        self.tracker.current().time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{Side, Tuple};

    fn ev(seq: u64, ts: i64) -> Event {
        Event::data(
            seq,
            Side::Probe,
            Tuple::new(Timestamp::from_micros(ts), 1, 0.0),
        )
    }

    #[test]
    fn watermark_is_pre_observation() {
        let mut d = Driver::new(Duration::from_micros(10));
        let Prepared::Data(m1) = d.prepare(ev(0, 100)).unwrap() else {
            panic!()
        };
        assert_eq!(m1.watermark, Timestamp::MIN); // nothing observed before
        let Prepared::Data(m2) = d.prepare(ev(1, 200)).unwrap() else {
            panic!()
        };
        assert_eq!(m2.watermark, Timestamp::from_micros(90)); // 100 - 10
    }

    #[test]
    fn push_after_finish_errors() {
        let mut d = Driver::new(Duration::ZERO);
        d.prepare(ev(0, 1)).unwrap();
        let (n, _) = d.finish().unwrap();
        assert_eq!(n, 1);
        assert!(d.prepare(ev(1, 2)).is_err());
        assert!(d.finish().is_err());
    }
}
