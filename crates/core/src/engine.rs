//! The engine interface and run statistics.

use std::time::Duration as StdDuration;

use oij_common::{Event, Result, Timestamp};
use oij_metrics::{unbalancedness, BatchOccupancy, LatencyHistogram, TimeBreakdown};
use serde::{Deserialize, Serialize};

use crate::instrument::JoinerReport;

/// Which engine a harness run used (for labeling output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// The Flink-style key-partitioned baseline.
    KeyOij,
    /// The paper's proposal with all optimisations on.
    ScaleOij,
    /// Scale-OIJ without incremental aggregation.
    ScaleOijNoInc,
    /// SplitJoin adapted to OIJ semantics.
    SplitJoin,
    /// The OpenMLDB shared-store baseline.
    OpenMldb,
}

impl EngineKind {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::KeyOij => "Key-OIJ",
            EngineKind::ScaleOij => "Scale-OIJ",
            EngineKind::ScaleOijNoInc => "Scale-OIJ w/o inc",
            EngineKind::SplitJoin => "SplitJoin",
            EngineKind::OpenMldb => "OpenMLDB",
        }
    }
}

/// Common interface of all parallel OIJ engines.
///
/// The driver thread feeds arrival-ordered [`Event`]s through
/// [`push`](Self::push) and terminates the run with
/// [`finish`](Self::finish), which flushes all workers, joins their threads
/// and returns the merged [`RunStats`].
pub trait OijEngine {
    /// Feeds one event. Blocks when worker channels are full
    /// (backpressure). Flush events terminate input early.
    fn push(&mut self, event: Event) -> Result<()>;

    /// Feeds one **replayed** event during crash recovery: `stamp` is
    /// the pre-observation watermark logged when the event was first
    /// ingested, so its late/on-time classification is identical to the
    /// original run. Nothing is write-ahead-logged (the event is
    /// already in the log); see `oij_core::recovery`.
    fn push_stamped(&mut self, event: Event, stamp: Timestamp) -> Result<()>;

    /// Ends the run: flushes workers, joins threads, merges statistics.
    /// Calling `push` or `finish` again afterwards is an error.
    fn finish(&mut self) -> Result<RunStats>;

    /// Tears the engine down after a failure, salvaging what it can:
    /// raises the kill flag, joins every surviving worker and returns
    /// partial [`RunStats`] with [`aborted`](RunStats::aborted) set and
    /// the in-flight results of the surviving workers accounted. Unlike
    /// [`finish`](Self::finish), this never fails on a poisoned engine —
    /// it is the degraded exit path.
    fn abort(&mut self) -> Result<RunStats>;
}

/// Aggregated statistics of one finished run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    /// Input tuples accepted by `push`.
    pub input_tuples: u64,
    /// Feature rows emitted.
    pub results: u64,
    /// Wall-clock from the first push to the completion of `finish`.
    pub elapsed: StdDuration,
    /// `input_tuples / elapsed` (the paper's throughput definition).
    pub throughput: f64,
    /// Merged latency histogram (if instrumented).
    pub latency: Option<LatencyHistogram>,
    /// Merged time breakdown (if instrumented).
    pub breakdown: Option<TimeBreakdown>,
    /// Average effectiveness, Equation 1 (if instrumented).
    pub effectiveness: Option<f64>,
    /// Tuples processed per joiner (`W_i`).
    pub joiner_loads: Vec<u64>,
    /// Unbalancedness of `joiner_loads`, Equation 2.
    pub unbalancedness: f64,
    /// Summed LLC-simulator accesses/misses (if instrumented).
    pub cache_accesses: u64,
    /// Summed LLC-simulator misses (if instrumented).
    pub cache_misses: u64,
    /// Per-joiner utilisation timelines (if instrumented).
    pub timelines: Vec<oij_metrics::timeline::UtilizationSeries>,
    /// Tuples dropped by expiration.
    pub evicted: u64,
    /// Tuples that arrived below the watermark (lateness violations).
    pub late_violations: u64,
    /// Schedule publications performed (Scale-OIJ only).
    pub schedule_changes: u64,
    /// Lateness side-output marker rows emitted
    /// ([`LatePolicy::SideOutput`](crate::config::LatePolicy)).
    #[serde(default)]
    pub late_side_outputs: u64,
    /// `true` when the run ended through [`OijEngine::abort`] after a
    /// failure — `results`/`joiner_loads` then cover only the surviving
    /// workers' salvaged output.
    #[serde(default)]
    pub aborted: bool,
    /// Workers whose reports could not be salvaged (panicked or wedged at
    /// teardown). Zero on a clean run.
    #[serde(default)]
    pub workers_lost: usize,
    /// Fill levels of the coalesced batches the joiners received
    /// (DESIGN.md §10). Empty when `batch_size == 1`.
    #[serde(default)]
    pub batch_occupancy: BatchOccupancy,
    /// Bytes appended to the write-ahead log (durability enabled only).
    #[serde(default)]
    pub wal_bytes_written: u64,
    /// Logged events replayed through the engine after a crash.
    #[serde(default)]
    pub wal_records_replayed: u64,
    /// Checkpoints taken during the run (durability enabled only).
    #[serde(default)]
    pub checkpoint_count: u64,
    /// Wall-clock spent recovering (directory open through last replayed
    /// record); zero for fresh runs.
    #[serde(default)]
    pub recovery_duration: StdDuration,
    /// Replay re-emissions suppressed by the emitted-output frontier
    /// (each one is a row that would have been a duplicate at the sink).
    #[serde(default)]
    pub rows_deduped_on_recovery: u64,
    /// Sink emissions re-attempted under
    /// [`SinkRetryPolicy`](crate::config::SinkRetryPolicy).
    #[serde(default)]
    pub sink_retries: u64,
    /// Base tuples the serving runtime's lossy admission path dropped for
    /// this query instead of blocking the shared ingest (load shedding
    /// under overload; see `oij-serve`). Always 0 for standalone engine
    /// runs.
    #[serde(default)]
    pub shed_events: u64,
}

impl RunStats {
    /// Merges per-joiner reports into run-level statistics.
    pub fn from_reports(
        input_tuples: u64,
        elapsed: StdDuration,
        reports: Vec<JoinerReport>,
        schedule_changes: u64,
    ) -> RunStats {
        let mut latency: Option<LatencyHistogram> = None;
        let mut breakdown: Option<TimeBreakdown> = None;
        let mut eff_sum: Option<oij_metrics::EffectivenessMeter> = None;
        let mut joiner_loads = Vec::with_capacity(reports.len());
        let mut results = 0;
        let mut cache_accesses = 0;
        let mut cache_misses = 0;
        let mut timelines = Vec::new();
        let mut evicted = 0;
        let mut late_violations = 0;
        let mut late_side_outputs = 0;
        let mut batch_occupancy = BatchOccupancy::new();

        for report in reports {
            results += report.results;
            let inst = report.instruments;
            joiner_loads.push(inst.processed);
            evicted += inst.evicted;
            late_violations += inst.late_violations;
            late_side_outputs += inst.late_side_outputs;
            batch_occupancy.merge(&inst.batch_occupancy);
            if let Some(h) = inst.latency {
                match &mut latency {
                    None => latency = Some(h),
                    Some(acc) => acc.merge(&h),
                }
            }
            if let Some(b) = inst.breakdown {
                match &mut breakdown {
                    None => breakdown = Some(b),
                    Some(acc) => acc.merge(&b),
                }
            }
            if let Some(e) = inst.effectiveness {
                match &mut eff_sum {
                    None => eff_sum = Some(e),
                    Some(acc) => acc.merge(&e),
                }
            }
            if let Some(c) = inst.cache {
                cache_accesses += c.accesses();
                cache_misses += c.misses();
            }
            if let Some(t) = inst.timeline {
                timelines.push(t.finish());
            }
        }

        let secs = elapsed.as_secs_f64().max(1e-9);
        let loads_f: Vec<f64> = joiner_loads.iter().map(|&l| l as f64).collect();
        RunStats {
            input_tuples,
            results,
            elapsed,
            throughput: input_tuples as f64 / secs,
            latency,
            breakdown,
            effectiveness: eff_sum.map(|e| e.value()),
            unbalancedness: unbalancedness(&loads_f),
            joiner_loads,
            cache_accesses,
            cache_misses,
            timelines,
            evicted,
            late_violations,
            schedule_changes,
            late_side_outputs,
            aborted: false,
            workers_lost: 0,
            batch_occupancy,
            wal_bytes_written: 0,
            wal_records_replayed: 0,
            checkpoint_count: 0,
            recovery_duration: StdDuration::ZERO,
            rows_deduped_on_recovery: 0,
            sink_retries: 0,
            shed_events: 0,
        }
    }

    /// Marks these stats as the partial output of an aborted run.
    pub fn mark_aborted(mut self, workers_lost: usize) -> RunStats {
        self.aborted = true;
        self.workers_lost = workers_lost;
        self
    }

    /// LLC miss ratio over the simulated accesses (0.0 if uninstrumented).
    pub fn cache_miss_ratio(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Instrumentation;
    use crate::instrument::JoinerInstruments;
    use std::time::Instant;

    #[test]
    fn merges_reports() {
        let origin = Instant::now();
        let mk = |processed: u64, results: u64| {
            let mut inst = JoinerInstruments::new(&Instrumentation::full(), origin);
            inst.processed = processed;
            inst.record_effectiveness(1, 2);
            inst.record_latency(origin);
            JoinerReport {
                instruments: inst,
                results,
            }
        };
        let stats = RunStats::from_reports(
            100,
            StdDuration::from_millis(10),
            vec![mk(60, 30), mk(40, 20)],
            3,
        );
        assert_eq!(stats.results, 50);
        assert_eq!(stats.joiner_loads, vec![60, 40]);
        assert!(stats.unbalancedness > 0.0);
        assert_eq!(stats.latency.as_ref().unwrap().count(), 2);
        assert!((stats.effectiveness.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(stats.schedule_changes, 3);
        assert!((stats.throughput - 100.0 / 0.01).abs() / stats.throughput < 0.01);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(EngineKind::KeyOij.label(), "Key-OIJ");
        assert_eq!(EngineKind::ScaleOij.label(), "Scale-OIJ");
        assert_eq!(EngineKind::SplitJoin.label(), "SplitJoin");
    }
}
