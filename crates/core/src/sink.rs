//! Result sinks: where feature rows go.

use std::sync::{Arc, Mutex};

use oij_common::FeatureRow;

/// Destination for emitted feature rows. Cloned into every joiner (or the
/// collector, for SplitJoin).
#[derive(Debug, Clone)]
pub enum Sink {
    /// Discard rows (throughput benchmarks — emission is still counted).
    Null,
    /// Collect rows into a shared vector (tests, examples).
    Collect(Arc<Mutex<Vec<FeatureRow>>>),
}

impl Sink {
    /// A discarding sink.
    pub fn null() -> Sink {
        Sink::Null
    }

    /// A collecting sink plus the handle to read the rows back after
    /// [`finish`](crate::engine::OijEngine::finish).
    pub fn collect() -> (Sink, Arc<Mutex<Vec<FeatureRow>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (Sink::Collect(Arc::clone(&store)), store)
    }

    /// Emits one row.
    #[inline]
    pub fn emit(&self, row: FeatureRow) {
        match self {
            Sink::Null => {}
            Sink::Collect(store) => store.lock().expect("sink poisoned").push(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::Timestamp;

    #[test]
    fn collect_sink_stores_rows() {
        let (sink, rows) = Sink::collect();
        sink.emit(FeatureRow::new(
            Timestamp::from_micros(1),
            2,
            0,
            Some(3.0),
            1,
        ));
        let clone = sink.clone();
        clone.emit(FeatureRow::new(Timestamp::from_micros(2), 2, 1, None, 0));
        let rows = rows.lock().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].agg, Some(3.0));
    }

    #[test]
    fn null_sink_discards() {
        let sink = Sink::null();
        sink.emit(FeatureRow::new(
            Timestamp::from_micros(1),
            2,
            0,
            Some(3.0),
            1,
        ));
        // nothing to observe — must simply not panic
    }
}
