//! Result sinks: where feature rows go.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use oij_common::FeatureRow;
use oij_durability::{frontier_key, DurabilityRuntime};

use crate::config::SinkRetryPolicy;
use crate::faults::{FailureCell, SinkFaults};

/// Destination for emitted feature rows. Cloned into every joiner (or the
/// collector, for SplitJoin).
#[derive(Debug, Clone)]
pub enum Sink {
    /// Discard rows (throughput benchmarks — emission is still counted).
    Null,
    /// Collect rows into a shared vector (tests, examples).
    Collect(Arc<Mutex<Vec<FeatureRow>>>),
    /// A sink wrapped with injected faults (slow and/or erroring
    /// emissions) — built by [`FaultPlan::wrap_sink`](crate::faults::FaultPlan),
    /// never in production configs.
    Faulty(Arc<SinkFaults>, Box<Sink>),
    /// The exactly-once gate in front of the user sink (DESIGN.md §11):
    /// consults the durability runtime's emitted-output frontier before
    /// delivering, marks the row emitted after, and delivers nothing
    /// once the engine's simulated-crash flag is raised (a dead process
    /// emits nothing). Built when `EngineConfig::durability` is set.
    Durable {
        /// Shared durability state (frontier + WAL).
        runtime: Arc<DurabilityRuntime>,
        /// The engine's failure cell, for the crash gate.
        failures: Arc<FailureCell>,
        /// Where admitted rows go.
        inner: Box<Sink>,
    },
    /// Bounded retry with exponential backoff around a fallible sink
    /// (`EngineConfig::sink_retry`). A panic from `inner` is caught and
    /// the emission re-attempted; exhausting the budget re-raises the
    /// last panic so it escalates to a supervised worker failure.
    Retry {
        /// The retry budget and backoff shape.
        policy: SinkRetryPolicy,
        /// Shared count of retries performed (folded into `RunStats`).
        retries: Arc<AtomicU64>,
        /// The sink being retried.
        inner: Box<Sink>,
    },
}

impl Sink {
    /// A discarding sink.
    pub fn null() -> Sink {
        Sink::Null
    }

    /// A collecting sink plus the handle to read the rows back after
    /// [`finish`](crate::engine::OijEngine::finish).
    pub fn collect() -> (Sink, Arc<Mutex<Vec<FeatureRow>>>) {
        let store = Arc::new(Mutex::new("sink_collect", Vec::new()));
        (Sink::Collect(Arc::clone(&store)), store)
    }

    /// Wraps `inner` with injected sink faults (see
    /// [`FaultPlan`](crate::faults::FaultPlan) for the knobs).
    pub(crate) fn faulty(
        inner: Sink,
        delay: Option<StdDuration>,
        stall_from: u64,
        fail: Option<(u64, u64)>,
        kill: Arc<AtomicBool>,
    ) -> Sink {
        Sink::Faulty(
            Arc::new(SinkFaults {
                emitted: AtomicU64::new(0),
                delay,
                stall_from,
                fail,
                kill,
            }),
            Box::new(inner),
        )
    }

    /// Wraps `inner` with the exactly-once durability gate.
    pub(crate) fn durable(
        runtime: Arc<DurabilityRuntime>,
        failures: Arc<FailureCell>,
        inner: Sink,
    ) -> Sink {
        Sink::Durable {
            runtime,
            failures,
            inner: Box::new(inner),
        }
    }

    /// Wraps `inner` with bounded retry.
    pub(crate) fn retrying(policy: SinkRetryPolicy, retries: Arc<AtomicU64>, inner: Sink) -> Sink {
        Sink::Retry {
            policy,
            retries,
            inner: Box::new(inner),
        }
    }

    /// Emits one row.
    #[inline]
    pub fn emit(&self, row: FeatureRow) {
        match self {
            Sink::Null => {}
            Sink::Collect(store) => {
                // LOCK: sink_collect
                store.lock().push(row);
            }
            Sink::Faulty(faults, inner) => {
                faults.before_emit();
                inner.emit(row);
            }
            Sink::Durable {
                runtime,
                failures,
                inner,
            } => {
                if failures.is_crashed() {
                    // Simulated process death: the row is not delivered
                    // and — critically — not marked emitted, so recovery
                    // replays it.
                    return;
                }
                let fkey = frontier_key(row.seq, row.late);
                if runtime.admit(fkey) {
                    // Delivered ⇒ logged: the RAII guard panics if this
                    // scope unwinds or returns between delivery and the
                    // emitted-frontier mark (protowit witness, DESIGN.md
                    // §8).
                    // STAMP: deliver-mark.pre
                    let delivery = oij_common::protowit::begin_delivery(row.seq);
                    inner.emit(row);
                    // Delivered ⇒ logged. If the mark itself cannot be
                    // persisted the run must not continue claiming
                    // exactly-once, so escalate to the supervisor.
                    // STAMP: deliver-mark.post
                    if let Err(e) = runtime.mark_emitted(fkey) {
                        panic!("durable sink failed to log emission: {e}");
                    }
                    delivery.marked();
                }
            }
            Sink::Retry {
                policy,
                retries,
                inner,
            } => {
                let mut attempt = 1u32;
                loop {
                    match catch_unwind(AssertUnwindSafe(|| inner.emit(row.clone()))) {
                        Ok(()) => return,
                        Err(payload) => {
                            if attempt >= policy.max_attempts {
                                resume_unwind(payload);
                            }
                            // ORDERING: Relaxed — statistics counter; no cross-thread ordering required.
                            retries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(backoff(policy, attempt, row.seq));
                            attempt += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Builds one worker's full sink stack around the user sink:
/// `Retry(Faulty(Durable(user)))`. Retry sits outermost so it also
/// absorbs injected sink faults (each attempt advances the faulty
/// ordinal); the durability gate sits innermost so exactly-once applies
/// at the user sink — an attempt that panics before delivery is never
/// marked emitted, and recovery replays it.
pub fn worker_sink_stack(
    cfg: &crate::config::EngineConfig,
    worker: usize,
    user: Sink,
    durable: &Option<Arc<DurabilityRuntime>>,
    failures: &Arc<FailureCell>,
    retries: &Arc<AtomicU64>,
    kill: &Arc<AtomicBool>,
) -> Sink {
    let user = match durable {
        Some(rt) => Sink::durable(Arc::clone(rt), Arc::clone(failures), user),
        None => user,
    };
    let faulted = cfg.faults.wrap_sink(worker, user, Arc::clone(kill));
    match cfg.sink_retry {
        Some(policy) => Sink::retrying(policy, Arc::clone(retries), faulted),
        None => faulted,
    }
}

/// Exponential backoff capped at `max_delay`, plus a deterministic
/// jitter (up to +25%) derived from the row identity and attempt so
/// that concurrent workers retrying the same outage desynchronize
/// without a random-number dependency.
fn backoff(policy: &SinkRetryPolicy, attempt: u32, seq: u64) -> StdDuration {
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << (attempt - 1).min(16));
    let base = exp.min(policy.max_delay);
    let mix = seq
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    let jitter_span = base.as_nanos() as u64 / 4;
    let jitter = if jitter_span == 0 {
        0
    } else {
        mix % jitter_span
    };
    base + StdDuration::from_nanos(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::Timestamp;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn collect_sink_stores_rows() {
        let (sink, rows) = Sink::collect();
        sink.emit(FeatureRow::new(
            Timestamp::from_micros(1),
            2,
            0,
            Some(3.0),
            1,
        ));
        let clone = sink.clone();
        clone.emit(FeatureRow::new(Timestamp::from_micros(2), 2, 1, None, 0));
        let rows = rows.lock();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].agg, Some(3.0));
    }

    #[test]
    fn null_sink_discards() {
        let sink = Sink::null();
        sink.emit(FeatureRow::new(
            Timestamp::from_micros(1),
            2,
            0,
            Some(3.0),
            1,
        ));
        // nothing to observe — must simply not panic
    }

    #[test]
    fn faulty_sink_fails_at_the_configured_emission() {
        let (inner, rows) = Sink::collect();
        let kill = Arc::new(AtomicBool::new(false));
        let sink = Sink::faulty(inner, None, 0, Some((1, 1)), kill);
        let row = |seq: u64| FeatureRow::new(Timestamp::from_micros(seq as i64), 1, seq, None, 0);
        sink.emit(row(0)); // emission 0 passes through
        let err = catch_unwind(AssertUnwindSafe(|| sink.emit(row(1))));
        assert!(err.is_err(), "emission 1 must panic");
        assert_eq!(rows.lock().len(), 1);
    }

    #[test]
    fn faulty_sink_stall_is_interruptible() {
        let (inner, _rows) = Sink::collect();
        let kill = Arc::new(AtomicBool::new(true)); // already killed
        let sink = Sink::faulty(inner, Some(StdDuration::from_secs(60)), 0, None, kill);
        let start = std::time::Instant::now();
        sink.emit(FeatureRow::new(Timestamp::from_micros(1), 1, 0, None, 0));
        assert!(start.elapsed() < StdDuration::from_secs(5));
    }

    #[test]
    fn retry_sink_absorbs_transient_failures() {
        let (collect, rows) = Sink::collect();
        let kill = Arc::new(AtomicBool::new(false));
        // Faulty inner sink: emissions 0 and 1 fail, 2 succeeds. Each
        // retry advances the faulty ordinal, so attempt 3 goes through.
        let faulty = Sink::faulty(collect, None, 0, Some((0, 2)), kill);
        let retries = Arc::new(AtomicU64::new(0));
        let sink = Sink::retrying(SinkRetryPolicy::new(3), Arc::clone(&retries), faulty);
        sink.emit(FeatureRow::new(Timestamp::from_micros(1), 1, 0, None, 0));
        assert_eq!(rows.lock().len(), 1);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_sink_reraises_after_exhaustion() {
        let (collect, rows) = Sink::collect();
        let kill = Arc::new(AtomicBool::new(false));
        let faulty = Sink::faulty(collect, None, 0, Some((0, 10)), kill);
        let retries = Arc::new(AtomicU64::new(0));
        let sink = Sink::retrying(SinkRetryPolicy::new(3), Arc::clone(&retries), faulty);
        let err = catch_unwind(AssertUnwindSafe(|| {
            sink.emit(FeatureRow::new(Timestamp::from_micros(1), 1, 0, None, 0));
        }));
        assert!(err.is_err(), "exhausted retries must re-raise");
        assert_eq!(
            retries.load(Ordering::Relaxed),
            2,
            "two retries before giving up"
        );
        assert!(rows.lock().is_empty());
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let p = SinkRetryPolicy {
            max_attempts: 10,
            base_delay: StdDuration::from_millis(1),
            max_delay: StdDuration::from_millis(8),
        };
        assert!(backoff(&p, 1, 0) >= StdDuration::from_millis(1));
        // Cap plus at most 25% jitter.
        for attempt in 1..10 {
            assert!(backoff(&p, attempt, 7) <= StdDuration::from_millis(10));
        }
    }
}
