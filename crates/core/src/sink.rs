//! Result sinks: where feature rows go.

use crate::sync::atomic::{AtomicBool, AtomicU64};
use crate::sync::Mutex;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use oij_common::FeatureRow;

use crate::faults::SinkFaults;

/// Destination for emitted feature rows. Cloned into every joiner (or the
/// collector, for SplitJoin).
#[derive(Debug, Clone)]
pub enum Sink {
    /// Discard rows (throughput benchmarks — emission is still counted).
    Null,
    /// Collect rows into a shared vector (tests, examples).
    Collect(Arc<Mutex<Vec<FeatureRow>>>),
    /// A sink wrapped with injected faults (slow and/or erroring
    /// emissions) — built by [`FaultPlan::wrap_sink`](crate::faults::FaultPlan),
    /// never in production configs.
    Faulty(Arc<SinkFaults>, Box<Sink>),
}

impl Sink {
    /// A discarding sink.
    pub fn null() -> Sink {
        Sink::Null
    }

    /// A collecting sink plus the handle to read the rows back after
    /// [`finish`](crate::engine::OijEngine::finish).
    pub fn collect() -> (Sink, Arc<Mutex<Vec<FeatureRow>>>) {
        let store = Arc::new(Mutex::new("sink_collect", Vec::new()));
        (Sink::Collect(Arc::clone(&store)), store)
    }

    /// Wraps `inner` with injected sink faults (see
    /// [`FaultPlan`](crate::faults::FaultPlan) for the knobs).
    pub(crate) fn faulty(
        inner: Sink,
        delay: Option<StdDuration>,
        stall_from: u64,
        fail_at: Option<u64>,
        kill: Arc<AtomicBool>,
    ) -> Sink {
        Sink::Faulty(
            Arc::new(SinkFaults {
                emitted: AtomicU64::new(0),
                delay,
                stall_from,
                fail_at,
                kill,
            }),
            Box::new(inner),
        )
    }

    /// Emits one row.
    #[inline]
    pub fn emit(&self, row: FeatureRow) {
        match self {
            Sink::Null => {}
            Sink::Collect(store) => {
                // LOCK: sink_collect
                store.lock().push(row);
            }
            Sink::Faulty(faults, inner) => {
                faults.before_emit();
                inner.emit(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::Timestamp;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn collect_sink_stores_rows() {
        let (sink, rows) = Sink::collect();
        sink.emit(FeatureRow::new(
            Timestamp::from_micros(1),
            2,
            0,
            Some(3.0),
            1,
        ));
        let clone = sink.clone();
        clone.emit(FeatureRow::new(Timestamp::from_micros(2), 2, 1, None, 0));
        let rows = rows.lock();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].agg, Some(3.0));
    }

    #[test]
    fn null_sink_discards() {
        let sink = Sink::null();
        sink.emit(FeatureRow::new(
            Timestamp::from_micros(1),
            2,
            0,
            Some(3.0),
            1,
        ));
        // nothing to observe — must simply not panic
    }

    #[test]
    fn faulty_sink_fails_at_the_configured_emission() {
        let (inner, rows) = Sink::collect();
        let kill = Arc::new(AtomicBool::new(false));
        let sink = Sink::faulty(inner, None, 0, Some(1), kill);
        let row = |seq: u64| FeatureRow::new(Timestamp::from_micros(seq as i64), 1, seq, None, 0);
        sink.emit(row(0)); // emission 0 passes through
        let err = catch_unwind(AssertUnwindSafe(|| sink.emit(row(1))));
        assert!(err.is_err(), "emission 1 must panic");
        assert_eq!(rows.lock().len(), 1);
    }

    #[test]
    fn faulty_sink_stall_is_interruptible() {
        let (inner, _rows) = Sink::collect();
        let kill = Arc::new(AtomicBool::new(true)); // already killed
        let sink = Sink::faulty(inner, Some(StdDuration::from_secs(60)), 0, None, kill);
        let start = std::time::Instant::now();
        sink.emit(FeatureRow::new(Timestamp::from_micros(1), 1, 0, None, 0));
        assert!(start.elapsed() < StdDuration::from_secs(5));
    }
}
