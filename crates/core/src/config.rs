//! Engine configuration.

use std::time::Duration as StdDuration;

use oij_cachesim::CacheConfig;
use oij_common::{Error, OijQuery, Result};
use oij_durability::DurabilityConfig;
pub use oij_index::IndexBackend;

use crate::faults::FaultPlan;

/// How long teardown keeps polling a worker after raising the kill flag
/// before detaching the handle as wedged (`join_within`). Long enough to
/// cover an injected stall's final sleep; short enough that a chaos-suite
/// run with several wedged workers still finishes promptly.
pub const JOIN_KILL_GRACE: StdDuration = StdDuration::from_millis(500);

/// How long a send-side disconnect waits for the dead worker's supervisor
/// to record the panic payload before reporting a generic disconnect
/// (`send_guarded`). The supervisor only needs to finish `catch_unwind`
/// and a brief `// LOCK: failure_slot` critical section, so this is half
/// of [`JOIN_KILL_GRACE`].
pub const DISCONNECT_ATTRIBUTION_GRACE: StdDuration = StdDuration::from_millis(250);

/// What to do with tuples that arrive below the watermark (lateness
/// contract violations, paper §3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LatePolicy {
    /// Silently drop the tuple, counting it in
    /// [`RunStats::late_violations`](crate::engine::RunStats::late_violations)
    /// (the paper's behaviour and the default).
    #[default]
    Drop,
    /// Route a marker row ([`FeatureRow::late_marker`](oij_common::FeatureRow::late_marker))
    /// to the sink so downstream consumers can observe the violation.
    /// Implemented by Scale-OIJ; the other engines treat it as `Drop`.
    SideOutput,
}

/// What to measure during a run. Everything defaults to **off**: the hot
/// path then contains no timing calls and no simulator feeds.
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    /// Record per-result latency histograms.
    pub latency: bool,
    /// Record the lookup/match/other time breakdown (adds two `Instant`
    /// reads per base tuple).
    pub breakdown: bool,
    /// Record effectiveness (matched/visited per base tuple).
    pub effectiveness: bool,
    /// Feed tuple-buffer accesses into a per-joiner LLC simulator.
    pub cache: Option<CacheConfig>,
    /// Record per-joiner busy-time timelines with this bucket width.
    pub timeline_bucket: Option<StdDuration>,
}

impl Instrumentation {
    /// Everything off (the default): pure throughput runs.
    pub fn none() -> Self {
        Self::default()
    }

    /// Latency histograms only.
    pub fn latency() -> Self {
        Instrumentation {
            latency: true,
            ..Self::default()
        }
    }

    /// The full profiling set used by the study figures.
    pub fn full() -> Self {
        Instrumentation {
            latency: true,
            breakdown: true,
            effectiveness: true,
            cache: None,
            timeline_bucket: None,
        }
    }
}

/// Bounded retry with exponential backoff for transient sink failures
/// (`EngineConfig::sink_retry`; `None` — the default — keeps the
/// fail-fast behaviour where any sink panic kills the worker).
///
/// An emission is attempted up to `max_attempts` times; between
/// attempts the worker sleeps `base_delay * 2^(attempt-1)` capped at
/// `max_delay`, plus a small deterministic jitter. Retries are counted
/// in [`RunStats::sink_retries`](crate::engine::RunStats::sink_retries);
/// an emission that exhausts the budget still escalates to a supervised
/// [`Error::WorkerFailed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkRetryPolicy {
    /// Total attempts per emission (≥ 1; `1` means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: StdDuration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: StdDuration,
}

impl SinkRetryPolicy {
    /// A policy with study defaults: 1 ms base backoff capped at 50 ms.
    pub fn new(max_attempts: u32) -> Self {
        SinkRetryPolicy {
            max_attempts,
            base_delay: StdDuration::from_millis(1),
            max_delay: StdDuration::from_millis(50),
        }
    }
}

/// Configuration shared by every engine (Scale-OIJ additionally reads the
/// `partitions`/`schedule_*`/`incremental` knobs).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The query to execute.
    pub query: OijQuery,
    /// Number of joiner threads `J`.
    pub joiners: usize,
    /// Bounded capacity of each joiner's input channel (backpressure).
    pub channel_capacity: usize,
    /// Messages between expiration sweeps on each joiner.
    pub expire_every: usize,
    /// Pushes between watermark heartbeats broadcast to all joiners (keeps
    /// idle joiners' expiration and watermark emission moving).
    pub heartbeat_every: usize,
    /// What to measure.
    pub instrument: Instrumentation,
    /// Deadline for routed sends into worker channels. When a worker stops
    /// draining its channel, `push` gives up after this long and reports a
    /// structured [`Error::WorkerStalled`]/[`Error::WorkerFailed`] instead
    /// of blocking forever.
    pub send_timeout: StdDuration,
    /// Deterministic fault-injection plan (empty in production; zero extra
    /// cost on the hot path when empty).
    pub faults: FaultPlan,
    /// What to do with tuples that arrive below the watermark.
    pub late_policy: LatePolicy,
    /// Maximum data messages coalesced into one `Msg::Batch` per
    /// destination before the driver routes it (DESIGN.md §10). The
    /// default `1` bypasses coalescing entirely and reproduces the
    /// one-message-per-tuple path exactly.
    pub batch_size: usize,
    /// Age bound for a partially filled batch buffer: once the oldest
    /// coalesced tuple has waited this long, the buffer is flushed on the
    /// next push regardless of fill, so trickle inputs never stall behind
    /// a partial batch. Ignored when `batch_size == 1`.
    pub flush_deadline: StdDuration,
    /// Durability subsystem (WAL + checkpoints + crash recovery,
    /// DESIGN.md §11). `None` — the default — disables durability
    /// entirely and keeps the hot path free of any logging cost.
    pub durability: Option<DurabilityConfig>,
    /// Bounded retry for transient sink failures. `None` — the default —
    /// keeps sink panics fail-fast.
    pub sink_retry: Option<SinkRetryPolicy>,
    /// Which SWMR index backend every joiner builds its tuple store
    /// from (`oij-index`). The default [`IndexBackend::SkipList`] is the
    /// paper's double-layer time-travel skip list; the alternatives are
    /// raced against it by `tests/index_equivalence.rs` and the
    /// per-backend bench rows.
    pub index_backend: IndexBackend,

    /// Scale-OIJ: number of key-hash partitions `P` (power of two).
    pub partitions: usize,
    /// Scale-OIJ: dynamic-schedule period (Algorithm 3 cadence).
    pub schedule_interval: StdDuration,
    /// Scale-OIJ: minimum unbalancedness improvement `δ` to accept a
    /// replication step.
    pub schedule_delta: f64,
    /// Scale-OIJ: rebalancing floor — the scheduler acts only when the
    /// estimated unbalancedness exceeds this. Replication is monotone
    /// (teams never shrink), so without a floor, statistical noise on an
    /// already-balanced system slowly ratchets every partition onto every
    /// joiner, multiplying read fan-out for no benefit.
    pub schedule_floor: f64,
    /// Scale-OIJ: statistics decay factor `λ` applied after each schedule.
    pub schedule_decay: f64,
    /// Scale-OIJ: enable the dynamic schedule (off = static partitioning,
    /// for ablations).
    pub dynamic_schedule: bool,
    /// Scale-OIJ: enable incremental window aggregation (Subtract-on-Evict).
    pub incremental: bool,
}

impl EngineConfig {
    /// A validated config with the defaults used throughout the study.
    pub fn new(query: OijQuery, joiners: usize) -> Result<Self> {
        let cfg = EngineConfig {
            query,
            joiners,
            channel_capacity: 4096,
            expire_every: 256,
            heartbeat_every: 512,
            instrument: Instrumentation::none(),
            send_timeout: StdDuration::from_secs(1),
            faults: FaultPlan::none(),
            late_policy: LatePolicy::default(),
            batch_size: 1,
            flush_deadline: StdDuration::from_micros(200),
            durability: None,
            sink_retry: None,
            index_backend: IndexBackend::default(),
            partitions: 64,
            schedule_interval: StdDuration::from_millis(5),
            schedule_delta: 0.01,
            schedule_floor: 0.1,
            schedule_decay: 0.5,
            dynamic_schedule: true,
            incremental: true,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Replaces the instrumentation set.
    pub fn with_instrument(mut self, instrument: Instrumentation) -> Self {
        self.instrument = instrument;
        self
    }

    /// Disables the incremental aggregation path (Scale-OIJ ablation,
    /// "Scale-OIJ w/o inc" in Figures 17–20).
    pub fn without_incremental(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Disables the dynamic schedule (Scale-OIJ ablation: static teams).
    pub fn without_dynamic_schedule(mut self) -> Self {
        self.dynamic_schedule = false;
        self
    }

    /// Replaces the routing batch size (`1` = unbatched).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Enables the durability subsystem (WAL + checkpoints + recovery).
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Enables bounded sink retry for transient sink failures.
    pub fn with_sink_retry(mut self, policy: SinkRetryPolicy) -> Self {
        self.sink_retry = Some(policy);
        self
    }

    /// Replaces the SWMR index backend every joiner builds from.
    pub fn with_index_backend(mut self, backend: IndexBackend) -> Self {
        self.index_backend = backend;
        self
    }

    /// Validates invariants; called by constructors and engine spawn.
    pub fn validate(&self) -> Result<()> {
        if self.joiners == 0 {
            return Err(Error::InvalidConfig("joiners must be > 0".into()));
        }
        if self.joiners > 1024 {
            return Err(Error::InvalidConfig(format!(
                "joiners = {} is unreasonably large",
                self.joiners
            )));
        }
        if self.channel_capacity == 0 {
            return Err(Error::InvalidConfig("channel_capacity must be > 0".into()));
        }
        if self.expire_every == 0 {
            return Err(Error::InvalidConfig("expire_every must be > 0".into()));
        }
        if self.heartbeat_every == 0 {
            return Err(Error::InvalidConfig("heartbeat_every must be > 0".into()));
        }
        if self.send_timeout.is_zero() {
            return Err(Error::InvalidConfig("send_timeout must be > 0".into()));
        }
        if self.batch_size == 0 {
            return Err(Error::InvalidConfig("batch_size must be > 0".into()));
        }
        if self.batch_size > 65_536 {
            return Err(Error::InvalidConfig(format!(
                "batch_size = {} is unreasonably large",
                self.batch_size
            )));
        }
        if self.batch_size > 1 && self.flush_deadline.is_zero() {
            return Err(Error::InvalidConfig(
                "flush_deadline must be > 0 when batching".into(),
            ));
        }
        if !self.partitions.is_power_of_two() {
            return Err(Error::InvalidConfig(format!(
                "partitions must be a power of two, got {}",
                self.partitions
            )));
        }
        if !(0.0..=1.0).contains(&self.schedule_decay) {
            return Err(Error::InvalidConfig(format!(
                "schedule_decay must be in [0,1], got {}",
                self.schedule_decay
            )));
        }
        if self.schedule_delta < 0.0 {
            return Err(Error::InvalidConfig(format!(
                "schedule_delta must be ≥ 0, got {}",
                self.schedule_delta
            )));
        }
        if self.schedule_floor < 0.0 {
            return Err(Error::InvalidConfig(format!(
                "schedule_floor must be ≥ 0, got {}",
                self.schedule_floor
            )));
        }
        if let Some(d) = &self.durability {
            if d.checkpoint_every == 0 {
                return Err(Error::InvalidConfig(
                    "durability checkpoint_every must be > 0".into(),
                ));
            }
            if d.segment_bytes < 64 {
                return Err(Error::InvalidConfig(format!(
                    "durability segment_bytes = {} cannot hold a WAL frame",
                    d.segment_bytes
                )));
            }
        }
        if let Some(p) = &self.sink_retry {
            if p.max_attempts == 0 {
                return Err(Error::InvalidConfig(
                    "sink_retry max_attempts must be ≥ 1".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::Duration;

    fn query() -> OijQuery {
        OijQuery::sum_over_preceding(Duration::from_micros(100), Duration::ZERO).unwrap()
    }

    #[test]
    fn defaults_validate() {
        let cfg = EngineConfig::new(query(), 4).unwrap();
        assert!(cfg.validate().is_ok());
        assert!(cfg.incremental);
        assert!(cfg.dynamic_schedule);
    }

    #[test]
    fn rejects_zero_joiners() {
        assert!(EngineConfig::new(query(), 0).is_err());
    }

    #[test]
    fn rejects_non_power_of_two_partitions() {
        let mut cfg = EngineConfig::new(query(), 2).unwrap();
        cfg.partitions = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_send_timeout() {
        let mut cfg = EngineConfig::new(query(), 2).unwrap();
        cfg.send_timeout = StdDuration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_plan_is_empty_and_policy_drops() {
        let cfg = EngineConfig::new(query(), 2).unwrap();
        assert!(cfg.faults.is_empty());
        assert_eq!(cfg.late_policy, LatePolicy::Drop);
    }

    #[test]
    fn rejects_bad_decay() {
        let mut cfg = EngineConfig::new(query(), 2).unwrap();
        cfg.schedule_decay = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn batching_defaults_off_and_validates() {
        let cfg = EngineConfig::new(query(), 2).unwrap();
        assert_eq!(cfg.batch_size, 1, "batch_size = 1 must be the default");
        let mut cfg = cfg.with_batch_size(64);
        assert!(cfg.validate().is_ok());
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());
        cfg.batch_size = 1 << 20;
        assert!(cfg.validate().is_err());
        cfg.batch_size = 8;
        cfg.flush_deadline = StdDuration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn durability_and_retry_default_off_and_validate() {
        let cfg = EngineConfig::new(query(), 2).unwrap();
        assert!(cfg.durability.is_none(), "durability must default to None");
        assert!(cfg.sink_retry.is_none(), "sink_retry must default to None");

        let cfg = cfg
            .with_durability(DurabilityConfig::new("/tmp/oij-test-dura"))
            .with_sink_retry(SinkRetryPolicy::new(3));
        assert!(cfg.validate().is_ok());

        let mut bad = cfg.clone();
        bad.sink_retry = Some(SinkRetryPolicy {
            max_attempts: 0,
            base_delay: StdDuration::from_millis(1),
            max_delay: StdDuration::from_millis(1),
        });
        assert!(bad.validate().is_err());

        let mut bad = cfg;
        bad.durability.as_mut().unwrap().checkpoint_every = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn index_backend_defaults_to_skiplist() {
        let cfg = EngineConfig::new(query(), 2).unwrap();
        assert_eq!(
            cfg.index_backend,
            IndexBackend::SkipList,
            "the reference backend must stay the default"
        );
        let cfg = cfg.with_index_backend(IndexBackend::JiffyLite);
        assert_eq!(cfg.index_backend, IndexBackend::JiffyLite);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn ablation_builders() {
        let cfg = EngineConfig::new(query(), 2)
            .unwrap()
            .without_incremental()
            .without_dynamic_schedule();
        assert!(!cfg.incremental);
        assert!(!cfg.dynamic_schedule);
    }
}
