//! Batched routing support: driver-side coalescing and buffer recycling.
//!
//! The driver→joiner path sends one boxed message per tuple through a
//! bounded channel, so at high rates channel synchronization and
//! allocation dominate before any join work starts (the per-tuple
//! overhead the paper's scalability argument is about, §V–§VI). This
//! module provides the two pieces of the batched path (DESIGN.md §10):
//!
//! * [`Batcher`] — per-destination coalescing buffers on the driver. A
//!   buffer is flushed when it reaches `EngineConfig::batch_size`, when
//!   its oldest tuple exceeds `EngineConfig::flush_deadline`, before any
//!   heartbeat broadcast (so a heartbeat can never overtake parked data),
//!   and at end of input. With `batch_size == 1` the batcher is a pure
//!   pass-through and the engine behaves exactly as before.
//! * [`SlotPool`] — a small lock-free MPMC recycling pool for the batch
//!   buffers. The driver draws emptied `Vec`s from it, joiners return
//!   them after draining a batch, so steady state makes **zero
//!   allocations per tuple** on the routing path (worst case, one
//!   allocation per batch when the pool momentarily runs dry).

use std::cell::UnsafeCell;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crate::message::{BatchMsg, DataMsg, Msg};
use crate::sync::atomic::{AtomicUsize, Ordering};

/// Slot states of the [`SlotPool`] protocol. A slot cycles
/// `EMPTY → BUSY → FULL → BUSY → EMPTY`; `BUSY` marks exclusive ownership
/// by whichever thread won the CAS, for either direction.
const EMPTY: usize = 0;
const BUSY: usize = 1;
const FULL: usize = 2;

/// One pool slot: a state word guarding a value cell.
struct Slot<T> {
    state: AtomicUsize,
    /// Invariant: `Some` iff `state == FULL`, except while the slot is
    /// `BUSY`, when only the claiming thread may touch the cell.
    value: UnsafeCell<Option<T>>,
}

/// A fixed-capacity lock-free MPMC object pool.
///
/// [`put`](Self::put) parks a value in any `EMPTY` slot;
/// [`take`](Self::take) claims any `FULL` one. Both are wait-free apart
/// from the linear slot scan (capacities are small — a handful of buffers
/// per worker). A full pool rejects `put` (the caller drops the value)
/// and an empty pool returns `None` from `take` (the caller allocates
/// fresh); both paths are correct, the pool only exists to make the
/// steady state allocation-free.
///
/// Concurrency protocol: a slot is claimed in either direction with a CAS
/// to `BUSY`, giving the winner exclusive access to the value cell; the
/// final state store releases the cell contents to the next claimant.
/// Model-checked in `crates/core/tests/loom.rs` (xtask lint rule R5).
pub struct SlotPool<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: the value cell is only accessed by the thread that CASed the
// slot to BUSY, so `&SlotPool` may cross threads as long as T itself can
// be moved between threads.
unsafe impl<T: Send> Send for SlotPool<T> {}
// SAFETY: as above — the BUSY protocol serializes all cell accesses, so
// shared references never yield concurrent access to a cell.
unsafe impl<T: Send> Sync for SlotPool<T> {}

impl<T> SlotPool<T> {
    /// Creates a pool with `capacity` empty slots.
    pub fn new(capacity: usize) -> Self {
        SlotPool {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    state: AtomicUsize::new(EMPTY),
                    value: UnsafeCell::new(None),
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Parks `value` in the pool; returns it back if every slot is
    /// occupied (or transiently claimed).
    pub fn put(&self, value: T) -> Option<T> {
        for slot in self.slots.iter() {
            // ORDERING: Acquire on success pairs with the Release store that
            // emptied this slot, so the cell is observed vacated before we
            // write it; Relaxed on failure — a lost race carries no data.
            if slot
                .state
                .compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS above won exclusive ownership of the BUSY
                // slot; no other thread touches the cell until the state
                // store below publishes it.
                unsafe { *slot.value.get() = Some(value) };
                // ORDERING: Release — publishes the cell write to the taker
                // whose claiming CAS acquires this slot.
                slot.state.store(FULL, Ordering::Release);
                return None;
            }
        }
        Some(value)
    }

    /// Claims a parked value, or `None` when the pool is empty (or every
    /// full slot is transiently claimed).
    pub fn take(&self) -> Option<T> {
        for slot in self.slots.iter() {
            // ORDERING: Acquire on success pairs with the Release store in
            // `put`, so the parked value is visible to this thread; Relaxed
            // on failure — a lost race carries no data.
            if slot
                .state
                .compare_exchange(FULL, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS above won exclusive ownership of the BUSY
                // slot; the protocol invariant makes the cell `Some` here.
                let value = unsafe { (*slot.value.get()).take() };
                debug_assert!(value.is_some(), "FULL slot held no value");
                // ORDERING: Release — publishes the vacated cell to the next
                // `put` that acquires this slot.
                slot.state.store(EMPTY, Ordering::Release);
                return value;
            }
        }
        None
    }
}

/// Per-destination coalescing buffers on the driver thread (one engine
/// owns one; not shared across threads — only the pooled buffers travel).
///
/// All flush triggers live here so the four engines share one set of
/// semantics; see the module docs for the trigger list.
pub(crate) struct Batcher {
    batch_size: usize,
    deadline: StdDuration,
    /// One pending buffer per destination, oldest message first.
    bufs: Vec<Vec<DataMsg>>,
    /// Arrival instant of each buffer's oldest message (`None` = empty).
    first_at: Vec<Option<Instant>>,
    /// Non-empty buffer count, so the per-push deadline sweep is a single
    /// branch while everything is flushed.
    armed: usize,
    pool: Arc<SlotPool<Vec<DataMsg>>>,
}

impl Batcher {
    /// A batcher for `destinations` workers. `batch_size == 1` constructs
    /// a pass-through (no buffers are ever armed).
    pub(crate) fn new(
        destinations: usize,
        batch_size: usize,
        deadline: StdDuration,
        pool: Arc<SlotPool<Vec<DataMsg>>>,
    ) -> Self {
        Batcher {
            batch_size,
            deadline,
            bufs: (0..destinations).map(|_| Vec::new()).collect(),
            first_at: vec![None; destinations],
            armed: 0,
            pool,
        }
    }

    /// Whether this batcher forwards every message unbuffered.
    #[inline]
    pub(crate) fn passthrough(&self) -> bool {
        self.batch_size <= 1
    }

    /// Coalesces `msg` toward `dest`; returns a message the caller must
    /// route to `dest` now — immediately in pass-through mode, or the
    /// filled batch once the buffer reaches `batch_size`.
    #[inline]
    pub(crate) fn push(&mut self, dest: usize, msg: DataMsg) -> Option<Msg> {
        if self.passthrough() {
            // PROTO: driver-joiner.stream
            return Some(Msg::Data(Box::new(msg)));
        }
        let buf = &mut self.bufs[dest];
        if buf.is_empty() {
            self.first_at[dest] = Some(msg.arrival);
            self.armed += 1;
            if buf.capacity() == 0 {
                // First use (or the pool handed back nothing at the last
                // flush): draw a recycled buffer before falling back to a
                // fresh allocation.
                *buf = self
                    .pool
                    .take()
                    .unwrap_or_else(|| Vec::with_capacity(self.batch_size));
            }
        }
        buf.push(msg);
        if buf.len() >= self.batch_size {
            self.armed -= 1;
            self.first_at[dest] = None;
            let msgs = std::mem::take(buf);
            // PROTO: driver-joiner.stream
            return Some(Msg::Batch(Box::new(BatchMsg { msgs })));
        }
        None
    }

    /// Pops one buffer whose oldest message is older than the flush
    /// deadline as of `now` (call in a loop until `None`). `now` is the
    /// arrival stamp of the current push — the driver thread never reads
    /// the clock twice per tuple.
    #[inline]
    pub(crate) fn pop_expired(&mut self, now: Instant) -> Option<(usize, Msg)> {
        if self.armed == 0 {
            return None;
        }
        for dest in 0..self.first_at.len() {
            if let Some(first) = self.first_at[dest] {
                if now.saturating_duration_since(first) >= self.deadline {
                    return Some((dest, self.detach(dest)));
                }
            }
        }
        None
    }

    /// Pops any non-empty buffer (call in a loop until `None`): the
    /// flush-everything path used before heartbeat broadcasts and at end
    /// of input.
    #[inline]
    pub(crate) fn pop_any(&mut self) -> Option<(usize, Msg)> {
        if self.armed == 0 {
            return None;
        }
        let dest = self.first_at.iter().position(Option::is_some)?;
        Some((dest, self.detach(dest)))
    }

    fn detach(&mut self, dest: usize) -> Msg {
        self.armed -= 1;
        self.first_at[dest] = None;
        let msgs = std::mem::take(&mut self.bufs[dest]);
        // PROTO: driver-joiner.stream
        Msg::Batch(Box::new(BatchMsg { msgs }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{Side, Timestamp, Tuple};

    fn msg(seq: u64, arrival: Instant) -> DataMsg {
        DataMsg {
            side: Side::Probe,
            tuple: Tuple::new(Timestamp::from_micros(seq as i64), 1, 1.0),
            seq,
            arrival,
            watermark: Timestamp::MIN,
        }
    }

    fn pool() -> Arc<SlotPool<Vec<DataMsg>>> {
        Arc::new(SlotPool::new(4))
    }

    #[test]
    fn pool_round_trips_values() {
        let p: SlotPool<u32> = SlotPool::new(2);
        assert_eq!(p.capacity(), 2);
        assert!(p.take().is_none());
        assert!(p.put(7).is_none());
        assert!(p.put(8).is_none());
        assert_eq!(p.put(9), Some(9), "full pool rejects");
        let mut got = vec![p.take().unwrap(), p.take().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
        assert!(p.take().is_none());
    }

    #[test]
    fn passthrough_forwards_immediately() {
        let now = Instant::now();
        let mut b = Batcher::new(3, 1, StdDuration::from_micros(100), pool());
        assert!(b.passthrough());
        match b.push(2, msg(0, now)) {
            Some(Msg::Data(d)) => assert_eq!(d.seq, 0),
            other => panic!("expected Data, got {other:?}"),
        }
        assert!(b.pop_expired(now).is_none());
        assert!(b.pop_any().is_none());
    }

    #[test]
    fn fills_flush_at_batch_size() {
        let now = Instant::now();
        let mut b = Batcher::new(2, 3, StdDuration::from_secs(1), pool());
        assert!(b.push(0, msg(0, now)).is_none());
        assert!(b.push(0, msg(1, now)).is_none());
        assert!(b.push(1, msg(2, now)).is_none());
        match b.push(0, msg(3, now)) {
            Some(Msg::Batch(batch)) => {
                let seqs: Vec<u64> = batch.msgs.iter().map(|m| m.seq).collect();
                assert_eq!(seqs, vec![0, 1, 3]);
            }
            other => panic!("expected Batch, got {other:?}"),
        }
        // Destination 1 still has a partial batch.
        let (dest, m) = b.pop_any().expect("partial remains");
        assert_eq!(dest, 1);
        match m {
            Msg::Batch(batch) => assert_eq!(batch.msgs.len(), 1),
            other => panic!("expected Batch, got {other:?}"),
        }
        assert!(b.pop_any().is_none());
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let t0 = Instant::now();
        let mut b = Batcher::new(2, 8, StdDuration::from_micros(50), pool());
        assert!(b.push(0, msg(0, t0)).is_none());
        assert!(b.pop_expired(t0).is_none(), "not yet due");
        let late = t0 + StdDuration::from_micros(60);
        let (dest, m) = b.pop_expired(late).expect("deadline passed");
        assert_eq!(dest, 0);
        match m {
            Msg::Batch(batch) => assert_eq!(batch.msgs.len(), 1),
            other => panic!("expected Batch, got {other:?}"),
        }
        assert!(b.pop_expired(late).is_none());
    }

    #[test]
    fn buffers_recycle_through_the_pool() {
        let p = pool();
        let mut seed = Vec::with_capacity(16);
        seed.push(msg(99, Instant::now()));
        seed.clear();
        assert!(p.put(seed).is_none());
        let mut b = Batcher::new(1, 2, StdDuration::from_secs(1), Arc::clone(&p));
        let now = Instant::now();
        assert!(b.push(0, msg(0, now)).is_none());
        let batch = match b.push(0, msg(1, now)) {
            Some(Msg::Batch(batch)) => batch,
            other => panic!("expected Batch, got {other:?}"),
        };
        assert!(
            batch.msgs.capacity() >= 16,
            "the recycled buffer (capacity 16) should have been reused"
        );
    }
}
