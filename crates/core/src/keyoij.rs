//! **Key-OIJ** — the Flink-style key-partitioned parallel OIJ baseline
//! (paper §II-C).
//!
//! Every tuple is routed by `hash(key) mod J` to a statically bound joiner.
//! Each joiner buffers probe tuples per key in the configured
//! [`IndexBackend`](crate::config::EngineConfig::index_backend); every base
//! tuple triggers a **full scan** of its key's buffer — the whole retained
//! timestamp range, filtering by the window predicate engine-side — so the
//! baseline keeps its defining inefficiency no matter how capable the
//! backing store is. Expired tuples are removed by periodic sweeps. These
//! three properties are exactly what the paper's study blames for
//! Key-OIJ's pitfalls:
//!
//! 1. lateness forces the buffers to hold (and every scan to wade through)
//!    out-of-window tuples (Figure 7),
//! 2. a small key count starves most joiners (Figure 8a),
//! 3. overlapping windows are recomputed from scratch (Figure 9).

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Sender};

use oij_agg::FullWindowAgg;
use oij_common::{EmitMode, Error, Event, FeatureRow, Key, Result, Side, Timestamp};
use oij_index::{BackendReader, BackendWriter, OijIndexReader, OijIndexWriter};

use crate::batch::{Batcher, SlotPool};
use crate::config::EngineConfig;
use crate::driver::{open_durability, Driver, Prepared};
use crate::engine::{OijEngine, RunStats};
use crate::faults::{
    join_within, run_supervised, send_guarded, FailureCell, FaultAction, WorkerFaults,
};
use crate::hash_key;
use crate::instrument::{JoinerInstruments, JoinerReport};
use crate::message::{DataMsg, Msg};
use crate::sink::{worker_sink_stack, Sink};

const ENGINE: &str = "key-oij";

/// The Key-OIJ engine. See the [module docs](self).
pub struct KeyOij {
    cfg: EngineConfig,
    driver: Driver,
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<Option<JoinerReport>>>,
    /// Reports salvaged from workers joined so far (kept across a failed
    /// `finish` so `abort` can account partial output).
    reports: Vec<JoinerReport>,
    failures: Arc<FailureCell>,
    kill: Arc<AtomicBool>,
    /// First observed failure: once set, `push`/`finish` fail fast with it.
    poison: Option<Error>,
    since_heartbeat: usize,
    done: bool,
    /// Per-joiner coalescing buffers (pass-through when `batch_size == 1`).
    batcher: Batcher,
    /// Sink emissions re-attempted under the retry policy.
    retries: Arc<AtomicU64>,
}

impl KeyOij {
    /// Spawns the joiner threads and returns the ready engine.
    pub fn spawn(cfg: EngineConfig, sink: Sink) -> Result<Self> {
        cfg.validate()?;
        let origin = Instant::now();
        let failures = Arc::new(FailureCell::new());
        let kill = Arc::new(AtomicBool::new(false));
        // Sized so every destination can have a buffer in flight plus a
        // few spares; overflow just means one fresh allocation per batch.
        let pool = Arc::new(SlotPool::new(cfg.joiners * 8 + 16));
        // Key-OIJ never emits side-output markers (SideOutput degrades to
        // Drop here), so late tuples join best-effort and must be retained.
        let durable = open_durability(&cfg, false)?;
        let retries = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(cfg.joiners);
        let mut handles = Vec::with_capacity(cfg.joiners);
        for id in 0..cfg.joiners {
            // CHANNEL: driver -> joiner (one queue per key-partitioned worker)
            let (tx, rx) = bounded::<Msg>(cfg.channel_capacity);
            let worker_sink =
                worker_sink_stack(&cfg, id, sink.clone(), &durable, &failures, &retries, &kill);
            let worker = KeyJoiner::new(&cfg, worker_sink, origin, Arc::clone(&pool));
            let faults = cfg.faults.for_worker(id, ENGINE, id, &failures);
            let cell = Arc::clone(&failures);
            let wkill = Arc::clone(&kill);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("key-oij-joiner-{id}"))
                    .spawn(move || {
                        run_supervised(ENGINE, id, &cell, move || worker.run(rx, faults, wkill))
                    })
                    .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?,
            );
            senders.push(tx);
        }
        let lateness = cfg.query.window.lateness;
        let batcher = Batcher::new(cfg.joiners, cfg.batch_size, cfg.flush_deadline, pool);
        Ok(KeyOij {
            cfg,
            driver: Driver::with_durability(lateness, durable),
            senders,
            handles,
            reports: Vec::new(),
            failures,
            kill,
            poison: None,
            since_heartbeat: 0,
            done: false,
            batcher,
            retries,
        })
    }

    /// Routed send with the configured deadline; a failure poisons the
    /// engine.
    #[inline]
    fn route(&mut self, worker: usize, msg: Msg) -> Result<()> {
        match send_guarded(
            &self.senders[worker],
            msg,
            self.cfg.send_timeout,
            ENGINE,
            worker,
            &self.failures,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Routes one prepared data message: hash-partitioned destination,
    /// coalescing, deadline flushes and periodic heartbeats. Shared by
    /// the live (`push`) and replay (`push_stamped`) ingest paths.
    fn dispatch(&mut self, msg: DataMsg) -> Result<()> {
        // Static binding: the key's hash picks the joiner, forever.
        let joiner = (hash_key(msg.tuple.key) % self.cfg.joiners as u64) as usize;
        let watermark = msg.watermark;
        // The arrival stamp doubles as "now" for the flush
        // deadline, so batching adds no clock reads per tuple.
        let now = msg.arrival;
        if let Some(out) = self.batcher.push(joiner, msg) {
            self.route(joiner, out)?;
        }
        while let Some((dest, out)) = self.batcher.pop_expired(now) {
            self.route(dest, out)?;
        }
        self.since_heartbeat += 1;
        if self.since_heartbeat >= self.cfg.heartbeat_every {
            self.since_heartbeat = 0;
            // Flush-before-heartbeat: a heartbeat must never
            // advance a joiner's watermark past tuples still
            // parked in a coalescing buffer (DESIGN.md §10).
            // STAMP: flush-heartbeat.pre
            while let Some((dest, out)) = self.batcher.pop_any() {
                self.route(dest, out)?;
            }
            for j in 0..self.senders.len() {
                // STAMP: flush-heartbeat.post
                // PROTO: driver-joiner.stream
                self.route(j, Msg::Heartbeat(watermark))?;
            }
        }
        Ok(())
    }

    /// Joins every worker with a bounded deadline, salvaging reports into
    /// `self.reports`; returns (and records) the first failure.
    fn join_workers(&mut self) -> Result<()> {
        let mut first_err: Option<Error> = None;
        while !self.handles.is_empty() {
            let worker = self.cfg.joiners - self.handles.len();
            let handle = self.handles.remove(0);
            let (report, err) = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                worker,
                &self.failures,
                &self.kill,
            );
            if let Some(r) = report {
                self.reports.push(r);
            }
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }
}

impl OijEngine for KeyOij {
    fn push(&mut self, event: Event) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare(event)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn push_stamped(&mut self, event: Event, stamp: Timestamp) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare_stamped(event, stamp)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn finish(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("finish called twice".into()));
        }
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        // End of input: hand over any partially filled batches first.
        while let Some((dest, out)) = self.batcher.pop_any() {
            self.route(dest, out)?;
        }
        for j in 0..self.senders.len() {
            // PROTO: driver-joiner.closed
            self.route(j, Msg::Flush)?;
        }
        self.senders.clear();
        self.join_workers()?;
        self.done = true;
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats = RunStats::from_reports(input, elapsed, reports, 0);
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }

    fn abort(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("abort after a completed finish".into()));
        }
        self.done = true;
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        let _ = self.join_workers(); // failure already recorded; salvage
        let lost = self.cfg.joiners - self.reports.len();
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats = RunStats::from_reports(input, elapsed, reports, 0).mark_aborted(lost);
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }
}

impl Drop for KeyOij {
    fn drop(&mut self) {
        // Unblock workers if the engine is dropped without finish(): raise
        // the kill flag FIRST (releases wedged/stalled workers), then
        // disconnect the channels, then join with a bounded deadline.
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        while let Some(handle) = self.handles.pop() {
            let _ = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                self.handles.len(),
                &self.failures,
                &self.kill,
            );
        }
    }
}

/// One Key-OIJ worker thread's state.
struct KeyJoiner {
    cfg: EngineConfig,
    sink: Sink,
    inst: JoinerInstruments,
    /// Per-key probe buffers (the paper's "buffer"), behind the pluggable
    /// index backend. The join path deliberately ignores the backend's
    /// timestamp order: it always scans the key's full retained range.
    writer: BackendWriter,
    reader: BackendReader,
    node_bytes: usize,
    /// Watermark mode: pending base tuples keyed by (emit_ts, seq).
    pending: BTreeMap<(i64, u64), PendingBase>,
    /// Scratch for the breakdown-instrumented two-phase scan.
    scratch: Vec<f64>,
    /// Returns drained batch buffers to the driver (DESIGN.md §10).
    pool: Arc<SlotPool<Vec<DataMsg>>>,
    results: u64,
    since_expire: usize,
    last_wm: Timestamp,
}

struct PendingBase {
    key: Key,
    ts: Timestamp,
    arrival: Instant,
}

impl KeyJoiner {
    fn new(
        cfg: &EngineConfig,
        sink: Sink,
        origin: Instant,
        pool: Arc<SlotPool<Vec<DataMsg>>>,
    ) -> Self {
        let (writer, reader) = cfg.index_backend.build();
        let node_bytes = writer.node_footprint();
        KeyJoiner {
            inst: JoinerInstruments::new(&cfg.instrument, origin),
            cfg: cfg.clone(),
            sink,
            writer,
            reader,
            node_bytes,
            pending: BTreeMap::new(),
            scratch: Vec::new(),
            pool,
            results: 0,
            since_expire: 0,
            last_wm: Timestamp::MIN,
        }
    }

    fn run(
        mut self,
        rx: Receiver<Msg>,
        faults: Option<WorkerFaults>,
        kill: Arc<AtomicBool>,
    ) -> JoinerReport {
        let timeline_on = self.inst.timeline.is_some();
        let mut ordinal = 0u64;
        for msg in rx {
            match msg {
                Msg::Flush => {
                    self.inst.proto.finish();
                    break;
                }
                Msg::Heartbeat(wm) => {
                    self.inst.proto.heartbeat(wm);
                    // Key-OIJ is single-owner per key: a heartbeat only
                    // refreshes the expiration watermark.
                    self.last_wm = self.last_wm.max(wm);
                    if self.cfg.query.emit == EmitMode::Watermark {
                        self.drain_pending(self.last_wm);
                    }
                }
                Msg::Data(data) => {
                    self.inst.proto.data(data.watermark);
                    // The one never-taken branch per message the empty
                    // fault plan costs.
                    if let Some(f) = &faults {
                        let action = f.before_message(ordinal, &kill);
                        ordinal += 1;
                        if action == FaultAction::Exit {
                            return JoinerReport {
                                instruments: self.inst,
                                results: self.results,
                            };
                        }
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    self.handle(*data);
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                }
                Msg::Batch(mut batch) => {
                    self.inst.record_batch(batch.msgs.len());
                    self.inst.proto.batch(batch.msgs.len());
                    for m in &batch.msgs {
                        self.inst.proto.data(m.watermark);
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    if let Some(f) = &faults {
                        // Fault ordinals address individual data messages
                        // inside the batch, so an injection point that is
                        // not on a batch boundary still fires exactly
                        // there, mid-batch.
                        for msg in batch.msgs.drain(..) {
                            let action = f.before_message(ordinal, &kill);
                            ordinal += 1;
                            if action == FaultAction::Exit {
                                return JoinerReport {
                                    instruments: self.inst,
                                    results: self.results,
                                };
                            }
                            self.handle(msg);
                        }
                    } else {
                        self.handle_batch(&batch.msgs);
                    }
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                    // Recycle the (emptied) buffer; a full pool just
                    // drops it.
                    batch.msgs.clear();
                    let _ = self.pool.put(batch.msgs);
                }
            }
        }
        // End of input: everything is buffered, so all pending bases are
        // complete — drain them at an infinite watermark.
        self.drain_pending(Timestamp::MAX);
        JoinerReport {
            instruments: self.inst,
            results: self.results,
        }
    }

    fn handle(&mut self, msg: DataMsg) {
        self.inst.processed += 1;
        self.last_wm = msg.watermark;
        if msg.tuple.ts < msg.watermark {
            self.inst.late_violations += 1;
        }
        match msg.side {
            Side::Probe => {
                if self.inst.cache.is_some() {
                    let addr = self.writer.insert_hinted_traced(msg.tuple, false);
                    self.inst.record_access(addr, self.node_bytes);
                } else {
                    self.writer.insert(msg.tuple);
                }
            }
            Side::Base => match self.cfg.query.emit {
                EmitMode::Eager => {
                    self.join_and_emit(msg.tuple.key, msg.tuple.ts, msg.seq, msg.arrival)
                }
                EmitMode::Watermark => {
                    let emit_ts = msg.tuple.ts + self.cfg.query.window.following;
                    self.pending.insert(
                        (emit_ts.as_micros(), msg.seq),
                        PendingBase {
                            key: msg.tuple.key,
                            ts: msg.tuple.ts,
                            arrival: msg.arrival,
                        },
                    );
                }
            },
        }
        if self.cfg.query.emit == EmitMode::Watermark {
            self.drain_pending(msg.watermark);
        }
        self.since_expire += 1;
        if self.since_expire >= self.cfg.expire_every {
            self.since_expire = 0;
            self.expire();
        }
    }

    /// Processes one coalesced batch. Semantically identical to calling
    /// [`handle`](Self::handle) once per message — the only shortcut is
    /// handing a run of consecutive same-key probes in eager mode to the
    /// backend as one [`insert_batch`](OijIndexWriter::insert_batch) call
    /// (inserts have no emission side effects, and nothing reads the index
    /// mid-run, so deferred publication is safe). The run is capped at the
    /// remaining expiration budget so the periodic sweep still fires after
    /// exactly the same message as on the unbatched path.
    fn handle_batch(&mut self, msgs: &[DataMsg]) {
        let eager = self.cfg.query.emit == EmitMode::Eager;
        let mut i = 0;
        while i < msgs.len() {
            if !(eager && msgs[i].side == Side::Probe) {
                // Base tuples and watermark mode keep the scalar path:
                // both can emit, which couples every message to the ones
                // before it.
                self.handle(msgs[i].clone());
                i += 1;
                continue;
            }
            let key = msgs[i].tuple.key;
            let budget = (self.cfg.expire_every - self.since_expire).max(1);
            let mut end = i + 1;
            while end < msgs.len()
                && end - i < budget
                && msgs[end].side == Side::Probe
                && msgs[end].tuple.key == key
            {
                end += 1;
            }
            if self.inst.cache.is_some() {
                // The cache model needs a node address per insert, so the
                // traced scalar path stays in charge here.
                for m in &msgs[i..end] {
                    self.inst.processed += 1;
                    self.last_wm = m.watermark;
                    if m.tuple.ts < m.watermark {
                        self.inst.late_violations += 1;
                    }
                    let addr = self.writer.insert_hinted_traced(m.tuple.clone(), false);
                    self.inst.record_access(addr, self.node_bytes);
                }
            } else {
                let mut run = Vec::with_capacity(end - i);
                for m in &msgs[i..end] {
                    self.inst.processed += 1;
                    self.last_wm = m.watermark;
                    if m.tuple.ts < m.watermark {
                        self.inst.late_violations += 1;
                    }
                    run.push((m.tuple.clone(), false));
                }
                self.writer.insert_batch(run);
            }
            self.since_expire += end - i;
            if self.since_expire >= self.cfg.expire_every {
                self.since_expire = 0;
                self.expire();
            }
            i = end;
        }
    }

    /// Emits pending base tuples whose windows closed below `watermark`.
    fn drain_pending(&mut self, watermark: Timestamp) {
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 > watermark.as_micros() {
                break;
            }
            let ((_, seq), base) = entry.remove_entry();
            self.join_and_emit(base.key, base.ts, seq, base.arrival);
        }
    }

    /// The Key-OIJ join: full scan of the key's whole retained buffer (the
    /// backend's timestamp order is deliberately *not* used to prune — the
    /// window predicate filters engine-side, so lateness still inflates
    /// every scan, Figure 7 style).
    fn join_and_emit(&mut self, key: Key, ts: Timestamp, seq: u64, arrival: Instant) {
        let window = self.cfg.query.window.window_of(ts);
        let (lo, hi) = (window.start.as_micros(), window.end.as_micros());
        let spec = self.cfg.query.agg;
        let mut agg = FullWindowAgg::new(spec);
        let visited;

        let reader = &self.reader;
        let node_bytes = self.node_bytes;
        if let Some(cache) = self.inst.cache.as_mut() {
            // Instrumented scan: feed every node touch into the LLC
            // model, then aggregate as usual.
            visited = reader.scan_ts_range_addr(key, Timestamp::MIN, Timestamp::MAX, |t, addr| {
                cache.access(addr, node_bytes);
                let s = t.ts.as_micros();
                if s >= lo && s <= hi {
                    agg.add(t.value);
                }
            }) as u64;
        } else if self.inst.wants_breakdown() {
            // Two-phase scan so lookup and match are timed separately,
            // mirroring the paper's Figure 6 categories.
            let t0 = Instant::now();
            let scratch = &mut self.scratch;
            scratch.clear();
            visited = reader.scan_ts_range(key, Timestamp::MIN, Timestamp::MAX, |t| {
                let s = t.ts.as_micros();
                if s >= lo && s <= hi {
                    scratch.push(t.value);
                }
            }) as u64;
            let t1 = Instant::now();
            for &v in &self.scratch {
                agg.add(v);
            }
            let t2 = Instant::now();
            self.inst.add_breakdown(
                t1.duration_since(t0).as_nanos() as u64,
                t2.duration_since(t1).as_nanos() as u64,
                0,
            );
        } else {
            visited = reader.scan_ts_range(key, Timestamp::MIN, Timestamp::MAX, |t| {
                let s = t.ts.as_micros();
                if s >= lo && s <= hi {
                    agg.add(t.value);
                }
            }) as u64;
        }

        let matched = agg.count();
        self.inst.record_effectiveness(matched, visited);
        self.sink
            .emit(FeatureRow::new(ts, key, seq, agg.finish(), matched));
        self.results += 1;
        self.inst.record_latency(arrival);
    }

    /// Periodic expiration sweep, delegated to the backend's
    /// `evict_below` (the bound is identical to the original
    /// retain-by-timestamp sweep: keep `t ≥ wm − PRE − FOL`).
    fn expire(&mut self) {
        if self.last_wm == Timestamp::MIN {
            return;
        }
        // A probe at `t` can still serve a lateness-compliant base `s ≥ wm`
        // whose window starts at `s − PRE`; pending bases reach back a
        // further FOL. Keep `t ≥ wm − PRE − FOL`.
        let bound = self.last_wm.saturating_sub(self.cfg.query.window.length());
        let other_t0 = self.inst.wants_breakdown().then(Instant::now);
        self.inst.evicted += self.writer.evict_below(bound) as u64;
        if let Some(t0) = other_t0 {
            self.inst
                .add_breakdown(0, 0, t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{AggSpec, Duration, OijQuery, Tuple};

    fn query(pre: i64, lateness: i64, emit: EmitMode) -> OijQuery {
        OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(lateness))
            .agg(AggSpec::Sum)
            .emit(emit)
            .build()
            .unwrap()
    }

    fn ev(seq: u64, side: Side, ts: i64, key: Key, value: f64) -> Event {
        Event::data(
            seq,
            side,
            Tuple::new(Timestamp::from_micros(ts), key, value),
        )
    }

    #[test]
    fn single_joiner_matches_eager_oracle() {
        let q = query(100, 50, EmitMode::Eager);
        let mut events = Vec::new();
        let mut x = 3u64;
        for i in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(3) {
                Side::Base
            } else {
                Side::Probe
            };
            events.push(ev(i, side, i as i64 * 2, x % 5, (x % 50) as f64));
        }
        let oracle_rows = crate::oracle::Oracle::new(q.clone()).run(&events);

        let (sink, rows) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(q, 1).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        assert_eq!(stats.results as usize, oracle_rows.len());
        assert_eq!(got.len(), oracle_rows.len());
        for (g, o) in got.iter().zip(&oracle_rows) {
            assert_eq!(g.seq, o.seq);
            assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            assert!(
                g.agg_approx_eq(o, 1e-9),
                "seq {}: {:?} vs {:?}",
                g.seq,
                g.agg,
                o.agg
            );
        }
    }

    #[test]
    fn multi_joiner_matches_eager_oracle_in_order() {
        // With in-order streams, key partitioning preserves per-key order,
        // so any J matches the oracle exactly.
        let q = query(60, 0, EmitMode::Eager);
        let mut events = Vec::new();
        let mut x = 11u64;
        for i in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(2) {
                Side::Base
            } else {
                Side::Probe
            };
            events.push(ev(i, side, i as i64, x % 16, (x % 10) as f64));
        }
        let oracle_rows = crate::oracle::Oracle::new(q.clone()).run(&events);

        let (sink, rows) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(q, 4).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        assert_eq!(got.len(), oracle_rows.len());
        for (g, o) in got.iter().zip(&oracle_rows) {
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    #[test]
    fn watermark_mode_is_exact_under_disorder() {
        let q = query(80, 200, EmitMode::Watermark);
        // Build a disordered feed: jitter arrival by ≤ 200µs.
        let mut staged: Vec<(i64, Side, Tuple)> = Vec::new();
        let mut x = 17u64;
        for i in 0..4000i64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(3) {
                Side::Base
            } else {
                Side::Probe
            };
            let jitter = (x >> 7) as i64 % 200;
            staged.push((
                i + jitter,
                side,
                Tuple::new(Timestamp::from_micros(i), x % 8, (x % 30) as f64),
            ));
        }
        staged.sort_by_key(|(a, _, _)| *a);
        let events: Vec<Event> = staged
            .into_iter()
            .enumerate()
            .map(|(s, (_, side, t))| Event::data(s as u64, side, t))
            .collect();

        let oracle_rows = crate::oracle::Oracle::new(q.clone()).run(&events);
        let (sink, rows) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(q, 4).unwrap(), sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        let mut want = oracle_rows.clone();
        want.sort_by_key(|r| r.seq);
        assert_eq!(got.len(), want.len());
        for (g, o) in got.iter().zip(&want) {
            assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    #[test]
    fn expiration_keeps_results_correct() {
        // Aggressive expiration (every message) must not change results on
        // a lateness-compliant stream.
        let q = query(50, 20, EmitMode::Eager);
        let mut cfg = EngineConfig::new(q.clone(), 2).unwrap();
        cfg.expire_every = 1;
        let mut events = Vec::new();
        for i in 0..2000u64 {
            let side = if i % 2 == 0 { Side::Probe } else { Side::Base };
            events.push(ev(i, side, i as i64 * 3, i % 4, 1.0));
        }
        let oracle_rows = crate::oracle::Oracle::new(q).run(&events);
        let (sink, rows) = Sink::collect();
        let mut engine = KeyOij::spawn(cfg, sink).unwrap();
        for e in &events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert!(stats.evicted > 0, "expiration must actually run");
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        for (g, o) in got.iter().zip(&oracle_rows) {
            assert!(g.agg_approx_eq(o, 1e-9), "seq {}", g.seq);
        }
    }

    #[test]
    fn loads_concentrate_with_few_keys() {
        // The paper's Figure 8 pathology: 2 keys on 4 joiners leaves at
        // least two joiners idle.
        let q = query(50, 0, EmitMode::Eager);
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(q, 4).unwrap(), sink).unwrap();
        for i in 0..1000u64 {
            engine
                .push(ev(i, Side::Probe, i as i64, i % 2, 1.0))
                .unwrap();
        }
        let stats = engine.finish().unwrap();
        let idle = stats.joiner_loads.iter().filter(|&&l| l == 0).count();
        assert!(idle >= 2, "loads: {:?}", stats.joiner_loads);
        assert!(stats.unbalancedness > 0.5);
    }

    #[test]
    fn breakdown_and_latency_instrumentation_populate() {
        use crate::config::Instrumentation;
        let q = query(200, 50, EmitMode::Eager);
        let cfg = EngineConfig::new(q, 2)
            .unwrap()
            .with_instrument(Instrumentation::full());
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(cfg, sink).unwrap();
        let mut bases = 0u64;
        for i in 0..4000u64 {
            let side = if i % 2 == 0 { Side::Probe } else { Side::Base };
            if side == Side::Base {
                bases += 1;
            }
            engine.push(ev(i, side, i as i64, i % 3, 1.0)).unwrap();
        }
        let stats = engine.finish().unwrap();
        let b = stats.breakdown.expect("breakdown on");
        assert!(b.lookup_ns > 0, "lookup time recorded");
        assert!(b.match_ns > 0, "match time recorded");
        let lat = stats.latency.expect("latency on");
        assert_eq!(lat.count(), bases);
        assert!(lat.mean_ns() > 0.0);
        let eff = stats.effectiveness.expect("effectiveness on");
        assert!(eff > 0.0 && eff <= 1.0);
    }

    #[test]
    fn cache_sim_counts_buffer_traffic() {
        use crate::config::Instrumentation;
        use oij_cachesim::CacheConfig;
        let q = query(500, 0, EmitMode::Eager);
        let cfg = EngineConfig::new(q, 1)
            .unwrap()
            .with_instrument(Instrumentation {
                cache: Some(CacheConfig::tiny()),
                ..Instrumentation::none()
            });
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(cfg, sink).unwrap();
        for i in 0..4000u64 {
            let side = if i % 2 == 0 { Side::Probe } else { Side::Base };
            engine.push(ev(i, side, i as i64, 1, 1.0)).unwrap();
        }
        let stats = engine.finish().unwrap();
        assert!(stats.cache_accesses > 0);
        assert!(stats.cache_misses > 0);
        assert!(stats.cache_miss_ratio() > 0.0 && stats.cache_miss_ratio() <= 1.0);
    }

    #[test]
    fn push_after_finish_errors() {
        let q = query(10, 0, EmitMode::Eager);
        let (sink, _) = Sink::collect();
        let mut engine = KeyOij::spawn(EngineConfig::new(q, 1).unwrap(), sink).unwrap();
        engine.push(ev(0, Side::Probe, 1, 1, 1.0)).unwrap();
        engine.finish().unwrap();
        assert!(engine.push(ev(1, Side::Probe, 2, 1, 1.0)).is_err());
        assert!(engine.finish().is_err());
    }
}
