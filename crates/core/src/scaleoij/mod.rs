//! **Scale-OIJ** — the paper's proposal (§V).
//!
//! Combines the three optimisations:
//!
//! 1. **SWMR time-travel index** (§V-A): each joiner owns a double-layer
//!    skip list; the virtual team reads it lock-free while the owner
//!    writes. Window boundaries are located in `O(log)` so only in-window
//!    tuples are visited, making lateness irrelevant to join cost.
//! 2. **Dynamic balanced schedule** (§V-B, Algorithm 3): keys hash into
//!    fixed partitions; a scheduler thread periodically replicates hot
//!    partitions from the most loaded joiner onto the least loaded one and
//!    publishes the new schedule through an RCU cell. Tuples of a shared
//!    partition are spread round-robin over the virtual team.
//! 3. **Incremental window aggregation** (§V-C): per (joiner, key) running
//!    aggregates advance by `⊖ evicted ⊕ added` delta scans instead of
//!    full window scans; a per-key late-insert counter invalidates the
//!    running state when a tuple lands inside the already-covered region.
//!
//! ## Cross-joiner safety
//!
//! Joiners publish their processed watermark (`progress`); expiration uses
//! `min(progress) − (PRE + FOL)` so that no tuple still reachable by a
//! queued base tuple is evicted, and watermark-mode emission uses
//! `min(progress)` as the completeness frontier. Incremental states fall
//! back to a full rescan whenever their covered region dips below the
//! eviction bound or a team member absorbed a late insert.

pub mod schedule;

mod joiner;

use crate::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Sender};

use oij_common::{Error, Event, Result, Timestamp};
use oij_skiplist::RcuCell;

use crate::batch::{Batcher, SlotPool};
use crate::config::{EngineConfig, LatePolicy};
use crate::driver::{open_durability, Driver, Prepared};
use crate::engine::{OijEngine, RunStats};
use crate::faults::{
    interruptible_sleep, join_within, run_supervised, send_guarded, DrainBarrier, FailureCell,
    FaultAction, SCHEDULER,
};
use crate::hash_key;
use crate::instrument::JoinerReport;
use crate::message::{DataMsg, Msg};
use crate::sink::{worker_sink_stack, Sink};

use schedule::{rebalance, PartitionStats, Schedule};

const ENGINE: &str = "scale-oij";
const SCHED: &str = "scale-oij-scheduler";

/// The Scale-OIJ engine. See the [module docs](self).
///
/// In a [`FaultPlan`](crate::faults::FaultPlan) the scheduler thread is
/// addressed as [`SCHEDULER`]; its fault ordinal counts scheduler ticks
/// rather than messages.
pub struct ScaleOij {
    cfg: EngineConfig,
    driver: Driver,
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<Option<JoinerReport>>>,
    scheduler: Option<JoinHandle<Option<u64>>>,
    reports: Vec<JoinerReport>,
    failures: Arc<FailureCell>,
    kill: Arc<AtomicBool>,
    poison: Option<Error>,
    stop: Arc<AtomicBool>,
    schedule: Arc<RcuCell<Schedule>>,
    stats: Arc<PartitionStats>,
    /// Driver-cached schedule snapshot (refreshed periodically; stale
    /// snapshots are safe because teams only grow).
    sched_cache: Arc<Schedule>,
    sched_refresh: u32,
    /// Per-partition round-robin cursors for team-member selection.
    rr: Vec<u32>,
    part_mask: u64,
    since_heartbeat: usize,
    done: bool,
    /// Per-joiner coalescing buffers (pass-through when `batch_size == 1`).
    batcher: Batcher,
    /// Sink-retry count across all joiners (folded into `RunStats`).
    retries: Arc<AtomicU64>,
}

impl ScaleOij {
    /// Spawns joiners (each owning one time-travel index), wires every
    /// reader to every joiner (virtual-team visibility), and starts the
    /// scheduler thread if the dynamic schedule is enabled.
    pub fn spawn(cfg: EngineConfig, sink: Sink) -> Result<Self> {
        cfg.validate()?;
        let origin = Instant::now();
        let joiners = cfg.joiners;

        // One SWMR index per joiner (backend chosen by the config;
        // `IndexBackend::SkipList` reproduces the original layout
        // bit-for-bit); readers shared with everyone.
        let mut writers = Vec::with_capacity(joiners);
        let mut readers = Vec::with_capacity(joiners);
        for j in 0..joiners {
            let (w, r) = cfg
                .index_backend
                .build_with_seed((0x5CA1E0 ^ ((j as u64) << 7)) | 1);
            writers.push(w);
            readers.push(r);
        }

        let schedule = Arc::new(RcuCell::new(Schedule::initial(cfg.partitions, joiners)));
        let stats = Arc::new(PartitionStats::new(cfg.partitions));
        let progress: Arc<Vec<AtomicI64>> =
            Arc::new((0..joiners).map(|_| AtomicI64::new(i64::MIN)).collect());
        let hold: Arc<Vec<AtomicI64>> =
            Arc::new((0..joiners).map(|_| AtomicI64::new(i64::MIN)).collect());
        let inc_floor: Arc<Vec<AtomicI64>> =
            Arc::new((0..joiners).map(|_| AtomicI64::new(i64::MAX)).collect());
        let barrier = Arc::new(DrainBarrier::new(joiners));
        let stop = Arc::new(AtomicBool::new(false));
        let failures = Arc::new(FailureCell::new());
        let kill = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(SlotPool::new(joiners * 8 + 16));
        // Late tuples become side-output markers only under that policy;
        // otherwise they are processed best-effort like everywhere else.
        let durable = open_durability(&cfg, cfg.late_policy == LatePolicy::SideOutput)?;
        let retries = Arc::new(AtomicU64::new(0));

        let mut senders = Vec::with_capacity(joiners);
        let mut handles = Vec::with_capacity(joiners);
        for (id, writer) in writers.into_iter().enumerate() {
            // CHANNEL: driver -> joiner (one queue per partition writer)
            let (tx, rx) = bounded::<Msg>(cfg.channel_capacity);
            let jsink =
                worker_sink_stack(&cfg, id, sink.clone(), &durable, &failures, &retries, &kill);
            let faults = cfg.faults.for_worker(id, ENGINE, id, &failures);
            let worker = joiner::ScaleJoiner::new(
                id,
                &cfg,
                jsink,
                origin,
                writer,
                readers.clone(),
                Arc::clone(&schedule),
                Arc::clone(&progress),
                Arc::clone(&hold),
                Arc::clone(&inc_floor),
                Arc::clone(&barrier),
                Arc::clone(&failures),
                Arc::clone(&kill),
                faults,
                Arc::clone(&pool),
            );
            let cell = Arc::clone(&failures);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("scale-oij-joiner-{id}"))
                    .spawn(move || run_supervised(ENGINE, id, &cell, move || worker.run(rx)))
                    .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?,
            );
            senders.push(tx);
        }

        let scheduler = if cfg.dynamic_schedule && joiners > 1 {
            let schedule = Arc::clone(&schedule);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let interval = cfg.schedule_interval;
            let delta = cfg.schedule_delta;
            let floor = cfg.schedule_floor;
            let decay = cfg.schedule_decay;
            // The scheduler is supervised like any joiner; its fault
            // ordinal is the tick counter. Attributed as worker 0 of the
            // "scale-oij-scheduler" engine label.
            let faults = cfg.faults.for_worker(SCHEDULER, SCHED, 0, &failures);
            let cell = Arc::clone(&failures);
            let skill = Arc::clone(&kill);
            Some(
                std::thread::Builder::new()
                    .name("scale-oij-scheduler".into())
                    .spawn(move || {
                        run_supervised(SCHED, 0, &cell, move || {
                            let mut changes = 0u64;
                            let mut tick = 0u64;
                            // ORDERING: Relaxed `stop` — standalone latch, no data published through it; Acquire `kill` pairs with the supervisor's Release store in the deadline path.
                            while !stop.load(Ordering::Relaxed) && !skill.load(Ordering::Acquire) {
                                interruptible_sleep(interval, &skill);
                                if let Some(f) = &faults {
                                    let action = f.before_message(tick, &skill);
                                    tick += 1;
                                    if action == FaultAction::Exit {
                                        break;
                                    }
                                }
                                let counts = stats.snapshot();
                                let current = schedule.load();
                                // Only intervene above the floor: replication is
                                // monotone, so acting on noise ratchets fan-out.
                                if current.unbalancedness(&counts, joiners) > floor {
                                    if let Some(next) = rebalance(&current, &counts, joiners, delta)
                                    {
                                        schedule.replace(next);
                                        changes += 1;
                                    }
                                }
                                stats.decay(decay);
                            }
                            changes
                        })
                    })
                    .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?,
            )
        } else {
            None
        };

        let lateness = cfg.query.window.lateness;
        let sched_cache = schedule.load();
        let partitions = cfg.partitions;
        let batcher = Batcher::new(joiners, cfg.batch_size, cfg.flush_deadline, pool);
        Ok(ScaleOij {
            cfg,
            driver: Driver::with_durability(lateness, durable),
            senders,
            handles,
            scheduler,
            reports: Vec::new(),
            failures,
            kill,
            poison: None,
            stop,
            schedule,
            stats,
            sched_cache,
            sched_refresh: 0,
            rr: vec![0; partitions],
            part_mask: (partitions - 1) as u64,
            since_heartbeat: 0,
            done: false,
            batcher,
            retries,
        })
    }

    /// Routes one prepared data message: partition hash, team member
    /// round-robin, coalescing batcher, periodic heartbeats.
    fn dispatch(&mut self, msg: DataMsg) -> Result<()> {
        let p = (hash_key(msg.tuple.key) & self.part_mask) as usize;
        self.stats.bump(p);
        // Refresh the cached schedule every 128 pushes; a stale
        // snapshot routes to a subset of the current team, which is
        // still a valid member (replication-only growth).
        self.sched_refresh = self.sched_refresh.wrapping_add(1);
        if self.sched_refresh.is_multiple_of(128) {
            self.sched_cache = self.schedule.load();
        }
        let team = &self.sched_cache.teams[p];
        let member = team[(self.rr[p] as usize) % team.len()];
        self.rr[p] = self.rr[p].wrapping_add(1);
        let watermark = msg.watermark;
        // The arrival stamp doubles as "now" for the flush
        // deadline (no extra clock reads per tuple). A schedule
        // change while a buffer is parked is benign: the buffer
        // still drains to the member chosen at coalescing time,
        // which stays a valid team member (teams only grow).
        let now = msg.arrival;
        if let Some(out) = self.batcher.push(member, msg) {
            self.route(member, out)?;
        }
        while let Some((dest, out)) = self.batcher.pop_expired(now) {
            self.route(dest, out)?;
        }
        self.since_heartbeat += 1;
        if self.since_heartbeat >= self.cfg.heartbeat_every {
            self.since_heartbeat = 0;
            // Flush-before-heartbeat: a heartbeat must never
            // advance a joiner's published progress past tuples
            // still parked in a coalescing buffer (DESIGN.md §10).
            // STAMP: flush-heartbeat.pre
            while let Some((dest, out)) = self.batcher.pop_any() {
                self.route(dest, out)?;
            }
            for j in 0..self.senders.len() {
                // STAMP: flush-heartbeat.post
                // PROTO: driver-joiner.stream
                self.route(j, Msg::Heartbeat(watermark))?;
            }
        }
        Ok(())
    }

    /// The current published schedule (diagnostics / tests).
    pub fn current_schedule(&self) -> Arc<Schedule> {
        self.schedule.load()
    }

    #[inline]
    fn route(&mut self, worker: usize, msg: Msg) -> Result<()> {
        match send_guarded(
            &self.senders[worker],
            msg,
            self.cfg.send_timeout,
            ENGINE,
            worker,
            &self.failures,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Stops and joins the scheduler thread (bounded), returning its
    /// schedule-change count (0 when it was disabled or lost).
    fn join_scheduler(&mut self) -> (u64, Option<Error>) {
        // ORDERING: Relaxed — `stop` is a standalone latch polled in a loop; no data is published through it.
        self.stop.store(true, Ordering::Relaxed);
        match self.scheduler.take() {
            None => (0, None),
            Some(h) => {
                let (changes, err) = join_within(
                    h,
                    self.cfg.send_timeout + self.cfg.schedule_interval,
                    SCHED,
                    0,
                    &self.failures,
                    &self.kill,
                );
                (changes.unwrap_or(0), err)
            }
        }
    }

    /// Joins every joiner bounded, salvaging reports; records and returns
    /// the first failure.
    fn join_workers(&mut self) -> Result<()> {
        let mut first_err: Option<Error> = None;
        while !self.handles.is_empty() {
            let worker = self.cfg.joiners - self.handles.len();
            let handle = self.handles.remove(0);
            let (report, err) = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                worker,
                &self.failures,
                &self.kill,
            );
            if let Some(r) = report {
                self.reports.push(r);
            }
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }
}

impl OijEngine for ScaleOij {
    fn push(&mut self, event: Event) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare(event)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn push_stamped(&mut self, event: Event, stamp: Timestamp) -> Result<()> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        match self.driver.prepare_stamped(event, stamp)? {
            Prepared::Flush => Ok(()),
            Prepared::Data(msg) => self.dispatch(msg),
        }
    }

    fn finish(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("finish called twice".into()));
        }
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        // Stop the scheduler first so the schedule is stable during drain.
        let (schedule_changes, sched_err) = self.join_scheduler();
        if let Some(e) = sched_err {
            self.poison = Some(e.clone());
            return Err(e);
        }
        // End of input: hand over any partially filled batches first.
        while let Some((dest, out)) = self.batcher.pop_any() {
            self.route(dest, out)?;
        }
        for j in 0..self.senders.len() {
            // PROTO: driver-joiner.closed
            self.route(j, Msg::Flush)?;
        }
        self.senders.clear();
        self.join_workers()?;
        self.done = true;
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats = RunStats::from_reports(input, elapsed, reports, schedule_changes);
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }

    fn abort(&mut self) -> Result<RunStats> {
        if self.done {
            return Err(Error::InvalidState("abort after a completed finish".into()));
        }
        self.done = true;
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        let (schedule_changes, _) = self.join_scheduler();
        self.senders.clear();
        let _ = self.join_workers();
        let lost = self.cfg.joiners - self.reports.len();
        let reports = std::mem::take(&mut self.reports);
        let (input, elapsed) = self.driver.finish()?;
        let mut stats =
            RunStats::from_reports(input, elapsed, reports, schedule_changes).mark_aborted(lost);
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        self.driver.finalize_stats(&mut stats);
        Ok(stats)
    }
}

impl Drop for ScaleOij {
    fn drop(&mut self) {
        // ORDERING: Relaxed — `stop` is a standalone latch polled in a loop; no data is published through it.
        self.stop.store(true, Ordering::Relaxed);
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        if let Some(h) = self.scheduler.take() {
            let _ = join_within(
                h,
                self.cfg.send_timeout + self.cfg.schedule_interval,
                SCHED,
                0,
                &self.failures,
                &self.kill,
            );
        }
        self.senders.clear();
        while let Some(handle) = self.handles.pop() {
            let _ = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                self.handles.len(),
                &self.failures,
                &self.kill,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Instrumentation;
    use crate::keyoij::KeyOij;
    use crate::oracle::Oracle;
    use oij_common::{AggSpec, Duration, EmitMode, FeatureRow, OijQuery, Side, Timestamp, Tuple};

    fn query(pre: i64, lateness: i64, emit: EmitMode) -> OijQuery {
        OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(lateness))
            .agg(AggSpec::Sum)
            .emit(emit)
            .build()
            .unwrap()
    }

    fn in_order_events(n: u64, keys: u64, base_mod: u64) -> Vec<Event> {
        let mut events = Vec::new();
        let mut x = 99u64;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(base_mod) {
                Side::Base
            } else {
                Side::Probe
            };
            events.push(Event::data(
                i,
                side,
                Tuple::new(Timestamp::from_micros(i as i64), x % keys, (x % 40) as f64),
            ));
        }
        events
    }

    fn disordered_events(n: i64, keys: u64, jitter_max: i64) -> Vec<Event> {
        let mut staged: Vec<(i64, Side, Tuple)> = Vec::new();
        let mut x = 1234u64;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let side = if x.is_multiple_of(3) {
                Side::Base
            } else {
                Side::Probe
            };
            let jitter = (x >> 9) as i64 % jitter_max;
            staged.push((
                i + jitter,
                side,
                Tuple::new(Timestamp::from_micros(i), x % keys, (x % 25) as f64),
            ));
        }
        staged.sort_by_key(|(a, _, _)| *a);
        staged
            .into_iter()
            .enumerate()
            .map(|(s, (_, side, t))| Event::data(s as u64, side, t))
            .collect()
    }

    fn run_scale(cfg: EngineConfig, events: &[Event]) -> (RunStats, Vec<FeatureRow>) {
        let (sink, rows) = Sink::collect();
        let mut engine = ScaleOij::spawn(cfg, sink).unwrap();
        for e in events {
            engine.push(e.clone()).unwrap();
        }
        let stats = engine.finish().unwrap();
        let mut got = rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        (stats, got)
    }

    fn assert_rows_equal(got: &[FeatureRow], want: &[FeatureRow]) {
        assert_eq!(got.len(), want.len(), "row count");
        for (g, o) in got.iter().zip(want) {
            assert_eq!(g.seq, o.seq);
            assert_eq!(g.matched, o.matched, "seq {}", g.seq);
            assert!(
                g.agg_approx_eq(o, 1e-9),
                "seq {}: {:?} vs {:?}",
                g.seq,
                g.agg,
                o.agg
            );
        }
    }

    #[test]
    fn single_joiner_eager_matches_oracle() {
        let q = query(100, 50, EmitMode::Eager);
        let events = disordered_events(3000, 6, 50);
        let want = Oracle::new(q.clone()).run(&events);
        let (stats, got) = run_scale(EngineConfig::new(q, 1).unwrap(), &events);
        assert_eq!(stats.results as usize, want.len());
        assert_rows_equal(&got, &want);
    }

    #[test]
    fn watermark_mode_is_exact_with_four_joiners_and_disorder() {
        let q = query(120, 300, EmitMode::Watermark);
        let events = disordered_events(5000, 4, 300);
        let want = Oracle::new(q.clone()).run(&events);
        let (_, got) = run_scale(EngineConfig::new(q, 4).unwrap(), &events);
        let mut want = want;
        want.sort_by_key(|r| r.seq);
        assert_rows_equal(&got, &want);
    }

    #[test]
    fn watermark_incremental_equals_non_incremental() {
        let q = query(200, 150, EmitMode::Watermark);
        let events = disordered_events(4000, 3, 150);
        let (_, with_inc) = run_scale(EngineConfig::new(q.clone(), 3).unwrap(), &events);
        let (_, without) = run_scale(
            EngineConfig::new(q, 3).unwrap().without_incremental(),
            &events,
        );
        assert_rows_equal(&with_inc, &without);
    }

    #[test]
    fn eager_multi_joiner_is_near_oracle() {
        // The cross-member race makes eager J>1 approximate; the engine may
        // see slightly fewer (in-flight) or more (arrived-early) probes.
        let q = query(100, 0, EmitMode::Eager);
        let events = in_order_events(8000, 8, 3);
        let eager = Oracle::new(q.clone()).run(&events);
        let exact = Oracle::new(OijQuery {
            emit: EmitMode::Watermark,
            ..q.clone()
        })
        .run(&events);
        let (_, got) = run_scale(EngineConfig::new(q, 4).unwrap(), &events);
        assert_eq!(got.len(), eager.len());
        let mut exact_matches = 0usize;
        for ((g, e), x) in got.iter().zip(&eager).zip(&exact) {
            assert!(g.matched <= x.matched, "seq {}: engine saw too much", g.seq);
            if g.matched == e.matched {
                exact_matches += 1;
            }
        }
        assert!(
            exact_matches as f64 > got.len() as f64 * 0.8,
            "only {exact_matches}/{} rows matched the eager oracle",
            got.len()
        );
    }

    #[test]
    fn dynamic_schedule_balances_few_keys() {
        // 2 keys on 4 joiners: Key-OIJ leaves ≥2 joiners idle; Scale-OIJ's
        // replication spreads the load.
        let q = query(50, 0, EmitMode::Eager);
        let mut events = Vec::new();
        for i in 0..60_000u64 {
            events.push(Event::data(
                i,
                if i % 4 == 0 { Side::Base } else { Side::Probe },
                Tuple::new(Timestamp::from_micros(i as i64), i % 2, 1.0),
            ));
        }
        let mut cfg = EngineConfig::new(q.clone(), 4).unwrap();
        cfg.schedule_interval = std::time::Duration::from_millis(1);
        let (scale_stats, _) = run_scale(cfg, &events);

        let (sink, _) = Sink::collect();
        let mut key = KeyOij::spawn(EngineConfig::new(q, 4).unwrap(), sink).unwrap();
        for e in &events {
            key.push(e.clone()).unwrap();
        }
        let key_stats = key.finish().unwrap();

        assert!(scale_stats.schedule_changes > 0, "scheduler never acted");
        assert!(
            scale_stats.unbalancedness < key_stats.unbalancedness * 0.7,
            "scale {} vs key {} (loads {:?} vs {:?})",
            scale_stats.unbalancedness,
            key_stats.unbalancedness,
            scale_stats.joiner_loads,
            key_stats.joiner_loads
        );
        let idle = scale_stats.joiner_loads.iter().filter(|&&l| l == 0).count();
        assert_eq!(idle, 0, "loads: {:?}", scale_stats.joiner_loads);
    }

    #[test]
    fn effectiveness_stays_one_under_large_lateness() {
        // The Figure 11 mechanism: Scale-OIJ's time-travel index never
        // visits out-of-window tuples, Key-OIJ's full scan does.
        let q = query(50, 2000, EmitMode::Eager);
        let events = disordered_events(20_000, 4, 2000);

        let cfg = EngineConfig::new(q.clone(), 2)
            .unwrap()
            .without_incremental()
            .with_instrument(Instrumentation {
                effectiveness: true,
                ..Instrumentation::none()
            });
        let (scale_stats, _) = run_scale(cfg, &events);

        let (sink, _) = Sink::collect();
        let key_cfg = EngineConfig::new(q, 2)
            .unwrap()
            .with_instrument(Instrumentation {
                effectiveness: true,
                ..Instrumentation::none()
            });
        let mut key = KeyOij::spawn(key_cfg, sink).unwrap();
        for e in &events {
            key.push(e.clone()).unwrap();
        }
        let key_stats = key.finish().unwrap();

        let scale_eff = scale_stats.effectiveness.unwrap();
        let key_eff = key_stats.effectiveness.unwrap();
        assert!(scale_eff > 0.999, "scale effectiveness {scale_eff}");
        assert!(key_eff < 0.5, "key effectiveness {key_eff}");
    }

    #[test]
    fn min_max_incremental_two_stack_stays_correct() {
        // min/max use the two-stack incremental extension (the paper's
        // future-work item); they must stay exact under disorder, with and
        // without the incremental path.
        for agg in [AggSpec::Max, AggSpec::Min] {
            let mut q = query(80, 100, EmitMode::Watermark);
            q.agg = agg;
            let events = disordered_events(3000, 5, 100);
            let mut want = Oracle::new(q.clone()).run(&events);
            want.sort_by_key(|r| r.seq);
            let (_, with_inc) = run_scale(EngineConfig::new(q.clone(), 2).unwrap(), &events);
            assert_rows_equal(&with_inc, &want);
            let (_, without) = run_scale(
                EngineConfig::new(q, 2).unwrap().without_incremental(),
                &events,
            );
            assert_rows_equal(&without, &want);
        }
    }

    #[test]
    fn expiration_under_watermark_mode_stays_exact() {
        let q = query(60, 100, EmitMode::Watermark);
        let mut cfg = EngineConfig::new(q.clone(), 3).unwrap();
        cfg.expire_every = 8;
        cfg.heartbeat_every = 64;
        let events = disordered_events(6000, 4, 100);
        let want = Oracle::new(q).run(&events);
        let (stats, got) = run_scale(cfg, &events);
        assert!(stats.evicted > 0, "expiration must have run");
        let mut want = want;
        want.sort_by_key(|r| r.seq);
        assert_rows_equal(&got, &want);
    }
}
