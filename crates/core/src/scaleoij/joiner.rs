//! The Scale-OIJ joiner thread: owns one time-travel index, reads its
//!
//! lint: hot_path
//! virtual team's indexes, maintains incremental window aggregates.
//!
//! ## Watermark-settled incremental aggregation
//!
//! The incremental state per (joiner, key) covers only the **settled**
//! window prefix `[start, settled_end]` with `settled_end` strictly below
//! the watermark. The lateness contract guarantees nothing below the
//! watermark can still arrive, so the settled region is immutable: the
//! Subtract-on-Evict deltas against it are always complete and **no
//! invalidation tracking is needed**. The *unsettled* suffix
//! `(settled_end, window_end]` — bounded by the lateness plus the stream's
//! watermark lag, i.e. a small constant amount of data — is rescanned
//! fresh for every base tuple and merged into the emitted value.
//!
//! Tuples that violate the lateness contract (timestamp below the
//! watermark at arrival) may land inside a settled region; they are
//! counted (`late_violations`) and excluded from the incremental
//! guarantee, exactly like every other engine treats them best-effort.

use crate::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use crossbeam_channel::Receiver;

use oij_agg::{FullWindowAgg, PartialAgg, RunningAgg, TwoStackAgg};
use oij_common::{AggSpec, EmitMode, FeatureRow, Key, Side, Timestamp};
use oij_index::{BackendReader, BackendWriter, OijIndexReader, OijIndexWriter};
use oij_skiplist::RcuCell;

use crate::batch::SlotPool;
use crate::config::{EngineConfig, LatePolicy};
use crate::faults::{DrainBarrier, FailureCell, FaultAction, WorkerFaults};
use crate::hash_key;
use crate::instrument::{JoinerInstruments, JoinerReport};
use crate::message::{DataMsg, Msg};
use crate::sink::Sink;

use super::schedule::Schedule;

/// Incremental join state for one key on one joiner (paper §V-C). See the
/// [module docs](self) for the settled/unsettled split.
struct IncState {
    /// Settled coverage `[start, settled_end]` in µs (inclusive).
    start: i64,
    settled_end: i64,
    /// The running aggregate over the settled region.
    agg: IncAggState,
}

/// Aggregate state behind the incremental path.
///
/// Invertible aggregates use Subtract-on-Evict (paper §V-C). Non-invertible
/// `min`/`max` — which the paper defers to future work — use the two-stack
/// FIFO aggregator: the settled region's tuples are kept in timestamp
/// order, advancing evicts exactly the `[old_start, new_start)` count from
/// the front and pushes the `(old_settled_end, new_settled_end]` delta
/// (sorted by timestamp) at the back.
enum IncAggState {
    Run(RunningAgg),
    Stack(TwoStackAgg),
}

impl IncAggState {
    fn fresh(spec: AggSpec) -> IncAggState {
        if spec.is_invertible() {
            // PANIC-OK: guarded by the `spec.is_invertible()` branch above.
            IncAggState::Run(RunningAgg::new(spec).expect("invertible"))
        } else {
            IncAggState::Stack(TwoStackAgg::new(spec))
        }
    }

    fn count(&self) -> u64 {
        match self {
            IncAggState::Run(a) => a.count(),
            IncAggState::Stack(a) => a.len() as u64,
        }
    }

    /// Merges the settled aggregate with the freshly scanned unsettled
    /// suffix into the emitted `(value, matched)` pair.
    fn emit_with(&self, spec: AggSpec, fresh: &PartialAgg) -> (Option<f64>, u64) {
        let matched = self.count() + fresh.count;
        let value = match (self, spec) {
            (IncAggState::Run(run), AggSpec::Sum) => Some(run.sum() + fresh.sum),
            (IncAggState::Run(_), AggSpec::Count) => Some(matched as f64),
            (IncAggState::Run(run), AggSpec::Avg) => {
                if matched == 0 {
                    None
                } else {
                    Some((run.sum() + fresh.sum) / matched as f64)
                }
            }
            (IncAggState::Stack(stack), AggSpec::Min) => {
                opt_combine(stack.value(), fresh.finish(AggSpec::Min), f64::min)
            }
            (IncAggState::Stack(stack), AggSpec::Max) => {
                opt_combine(stack.value(), fresh.finish(AggSpec::Max), f64::max)
            }
            // The constructor pairs Run with invertible specs and Stack
            // with min/max; other combinations cannot exist.
            _ => unreachable!("aggregate state does not match spec"),
        };
        (value, matched)
    }
}

fn opt_combine(a: Option<f64>, b: Option<f64>, f: impl Fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (x, None) | (None, x) => x,
    }
}

struct PendingBase {
    key: Key,
    ts: Timestamp,
    arrival: Instant,
}

pub(crate) struct ScaleJoiner {
    id: usize,
    cfg: EngineConfig,
    sink: Sink,
    inst: JoinerInstruments,
    writer: BackendWriter,
    readers: Vec<BackendReader>,
    schedule: Arc<RcuCell<Schedule>>,
    part_mask: u64,
    inc: HashMap<Key, IncState>,
    pending: BTreeMap<(i64, u64), PendingBase>,
    progress: Arc<Vec<AtomicI64>>,
    /// Per-joiner *hold* frontier: `min(progress, oldest pending emit-ts)`.
    /// Eviction must use `min(hold)` rather than `min(progress)` — a
    /// teammate's pending base tuple still needs the window below its
    /// emit timestamp even after everyone's watermark has moved past it.
    hold: Arc<Vec<AtomicI64>>,
    /// Per-joiner *incremental floor*: the smallest `start` of this
    /// joiner's live incremental states (`i64::MAX` when none). Eviction
    /// also respects `min(inc_floor)` so subtract-deltas never race
    /// expiration; a janitor drops states older than one extra
    /// window+lateness so the floor cannot pin memory indefinitely.
    inc_floor: Arc<Vec<AtomicI64>>,
    barrier: Arc<DrainBarrier>,
    /// Shared failure report + engine kill flag: the end-of-input barrier
    /// falls through on either (degraded drain instead of deadlock).
    cell: Arc<FailureCell>,
    kill: Arc<AtomicBool>,
    faults: Option<WorkerFaults>,
    /// Returns drained batch buffers to the driver (DESIGN.md §10).
    pool: Arc<SlotPool<Vec<DataMsg>>>,
    scratch: Vec<f64>,
    scratch_pairs: Vec<(i64, f64)>,
    results: u64,
    since_expire: usize,
    node_bytes: usize,
}

impl ScaleJoiner {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        cfg: &EngineConfig,
        sink: Sink,
        origin: Instant,
        writer: BackendWriter,
        readers: Vec<BackendReader>,
        schedule: Arc<RcuCell<Schedule>>,
        progress: Arc<Vec<AtomicI64>>,
        hold: Arc<Vec<AtomicI64>>,
        inc_floor: Arc<Vec<AtomicI64>>,
        barrier: Arc<DrainBarrier>,
        cell: Arc<FailureCell>,
        kill: Arc<AtomicBool>,
        faults: Option<WorkerFaults>,
        pool: Arc<SlotPool<Vec<DataMsg>>>,
    ) -> Self {
        let node_bytes = writer.node_footprint();
        ScaleJoiner {
            id,
            inst: JoinerInstruments::new(&cfg.instrument, origin),
            cfg: cfg.clone(),
            sink,
            writer,
            readers,
            schedule,
            part_mask: (cfg.partitions - 1) as u64,
            inc: HashMap::new(),
            pending: BTreeMap::new(),
            progress,
            hold,
            inc_floor,
            barrier,
            cell,
            kill,
            faults,
            pool,
            scratch: Vec::new(),
            scratch_pairs: Vec::new(),
            results: 0,
            since_expire: 0,
            node_bytes,
        }
    }

    pub(crate) fn run(mut self, rx: Receiver<Msg>) -> JoinerReport {
        let timeline_on = self.inst.timeline.is_some();
        let mut ordinal: u64 = 0;
        for msg in rx {
            match msg {
                Msg::Flush => {
                    self.inst.proto.finish();
                    break;
                }
                Msg::Heartbeat(wm) => {
                    self.inst.proto.heartbeat(wm);
                    self.store_progress(wm);
                    if self.cfg.query.emit == EmitMode::Watermark {
                        self.drain_pending(self.safe_frontier());
                    }
                    self.maybe_expire();
                }
                Msg::Data(data) => {
                    self.inst.proto.data(data.watermark);
                    if let Some(f) = &self.faults {
                        let action = f.before_message(ordinal, &self.kill);
                        ordinal += 1;
                        if action == FaultAction::Exit {
                            return self.report();
                        }
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    self.handle(*data);
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                }
                Msg::Batch(mut batch) => {
                    self.inst.record_batch(batch.msgs.len());
                    self.inst.proto.batch(batch.msgs.len());
                    for m in &batch.msgs {
                        self.inst.proto.data(m.watermark);
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    // Scale-OIJ deliberately processes batches message by
                    // message: per-tuple progress publication and pending
                    // drains are load-bearing for the cross-joiner
                    // frontiers, and the SWMR writer already amortizes
                    // same-key inserts through its internal position
                    // hint. Batching still amortizes the channel
                    // synchronization and per-message allocation. Fault
                    // ordinals address individual data messages, so
                    // mid-batch injection points fire exactly where they
                    // would on the unbatched path.
                    for msg in batch.msgs.drain(..) {
                        if let Some(f) = &self.faults {
                            let action = f.before_message(ordinal, &self.kill);
                            ordinal += 1;
                            if action == FaultAction::Exit {
                                return self.report();
                            }
                        }
                        self.handle(msg);
                    }
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                    batch.msgs.clear();
                    let _ = self.pool.put(batch.msgs);
                }
            }
        }
        // End of input: publish infinite progress (but NOT an infinite
        // hold — pending bases still guard their windows) and wait for the
        // whole team so every index is complete before the final drain.
        // ORDERING: Release — publishes this joiner's completed index before the infinite progress mark; pairs with teammates' Acquire loads in `safe_frontier`.
        // PANIC-OK: `self.id` < joiners == slot-array length by construction.
        self.progress[self.id].store(i64::MAX, Ordering::Release);
        self.publish_hold();
        // BLOCKING-OK: end-of-input rendezvous — the streaming hot loop is over, and the barrier is kill/poison-aware so fault supervision can release it.
        if !self.barrier.wait(&self.cell, &self.kill) {
            // A teammate died or the engine is tearing down: skip the final
            // drain (its indexes are incomplete anyway) and surface what we
            // have as a degraded partial report.
            return self.report();
        }
        self.drain_pending(Timestamp::MAX);
        self.report()
    }

    fn report(self) -> JoinerReport {
        JoinerReport {
            instruments: self.inst,
            results: self.results,
        }
    }

    #[inline]
    fn store_progress(&self, wm: Timestamp) {
        // Monotone max: heartbeats and data interleave in send order, so a
        // plain store would already be monotone, but fetch_max is cheap and
        // robust.
        // ORDERING: Release — publishes every index write up to `wm` before the frontier advances; pairs with the Acquire loads in `safe_frontier`.
        // PANIC-OK: `self.id` < joiners == slot-array length by construction.
        self.progress[self.id].fetch_max(wm.as_micros(), Ordering::Release);
        self.publish_hold();
    }

    /// Re-publishes this joiner's hold frontier. Monotone: the watermark
    /// only grows, draining only raises the oldest pending emit-ts, and a
    /// newly pended base has `emit_ts ≥ wm ≥` the previous hold.
    #[inline]
    fn publish_hold(&self) {
        // ORDERING: Relaxed — this joiner is the only writer of its own progress slot; remote slots are read with Acquire in the frontier scans.
        // PANIC-OK: `self.id` < joiners == slot-array length by construction.
        let wm = self.progress[self.id].load(Ordering::Relaxed);
        let oldest_pending = self
            .pending
            .first_key_value()
            .map(|(k, _)| k.0)
            .unwrap_or(i64::MAX);
        // ORDERING: Release — pairs with the Acquire loads in `hold_frontier`, so a raised hold implies the pending set that justified it is visible.
        // PANIC-OK: `self.id` < joiners == slot-array length by construction.
        self.hold[self.id].store(wm.min(oldest_pending), Ordering::Release);
    }

    /// `min_j hold_j`: nothing at or above this event time may be needed by
    /// an un-emitted base tuple anywhere in the team.
    fn hold_frontier(&self) -> Timestamp {
        // ORDERING: Acquire — pairs with each joiner's Release store in `publish_hold`.
        // PANIC-OK: at least one joiner is guaranteed by EngineConfig validation.
        let min = self
            .hold
            .iter()
            .map(|p| p.load(Ordering::Acquire))
            .min()
            .expect("≥1 joiner");
        Timestamp::from_micros(min)
    }

    /// `min_j progress_j`: every joiner has fully processed all input up to
    /// this event time (see module docs of [`super`]).
    fn safe_frontier(&self) -> Timestamp {
        // ORDERING: Acquire — pairs with each joiner's Release store in `store_progress`: a frontier at `t` implies every index covers `t`.
        // PANIC-OK: at least one joiner is guaranteed by EngineConfig validation.
        let min = self
            .progress
            .iter()
            .map(|p| p.load(Ordering::Acquire))
            .min()
            .expect("≥1 joiner");
        Timestamp::from_micros(min)
    }

    fn handle(&mut self, msg: DataMsg) {
        self.inst.processed += 1;
        if msg.tuple.ts < msg.watermark {
            self.inst.late_violations += 1;
            if self.cfg.late_policy == LatePolicy::SideOutput {
                // Route the violating tuple to the sink as a marked late
                // row instead of processing it best-effort; bookkeeping
                // (progress, drains, expiration) still runs below so the
                // frontiers keep advancing.
                self.inst.late_side_outputs += 1;
                self.sink.emit(FeatureRow::late_marker(
                    msg.tuple.ts,
                    msg.tuple.key,
                    msg.seq,
                ));
                self.store_progress(msg.watermark);
                if self.cfg.query.emit == EmitMode::Watermark {
                    self.drain_pending(self.safe_frontier());
                }
                self.maybe_expire();
                return;
            }
        }
        match msg.side {
            Side::Probe => {
                if self.inst.cache.is_some() {
                    let addr = self.writer.insert_hinted_traced(msg.tuple, false);
                    self.inst.record_access(addr, self.node_bytes);
                } else {
                    self.writer.insert(msg.tuple);
                }
            }
            Side::Base => match self.cfg.query.emit {
                EmitMode::Eager => self.join_and_emit(
                    msg.tuple.key,
                    msg.tuple.ts,
                    msg.seq,
                    msg.arrival,
                    msg.watermark,
                ),
                EmitMode::Watermark => {
                    let emit_ts = msg.tuple.ts + self.cfg.query.window.following;
                    self.pending.insert(
                        (emit_ts.as_micros(), msg.seq),
                        PendingBase {
                            key: msg.tuple.key,
                            ts: msg.tuple.ts,
                            arrival: msg.arrival,
                        },
                    );
                }
            },
        }
        // Publish progress only after the message is fully applied, so the
        // safe frontier implies completeness.
        self.store_progress(msg.watermark);
        if self.cfg.query.emit == EmitMode::Watermark {
            self.drain_pending(self.safe_frontier());
        }
        self.maybe_expire();
    }

    fn maybe_expire(&mut self) {
        self.since_expire += 1;
        if self.since_expire < self.cfg.expire_every {
            return;
        }
        self.since_expire = 0;
        let frontier = self.hold_frontier();
        if frontier == Timestamp::MIN {
            return;
        }
        let other_t0 = self.inst.wants_breakdown().then(Instant::now);
        let retention_bound = frontier
            .saturating_sub(self.cfg.query.window.length())
            .as_micros();

        // Janitor: drop incremental states more than one extra
        // window+lateness behind (idle keys — they rebuild cheaply on their
        // next base tuple), then publish this joiner's floor.
        let slack =
            self.cfg.query.window.length().as_micros() + self.cfg.query.window.lateness.as_micros();
        let stale_cut = retention_bound.saturating_sub(slack);
        self.inc.retain(|_, st| st.start >= stale_cut);
        let floor = self
            .inc
            .values()
            .map(|st| st.start)
            .min()
            .unwrap_or(i64::MAX);
        // ORDERING: Release — publishes the incremental states behind the floor before teammates' Acquire floor loads allow eviction.
        // PANIC-OK: `self.id` < joiners == slot-array length by construction.
        self.inc_floor[self.id].store(floor, Ordering::Release);

        // Evict below min(retention, every joiner's incremental floor):
        // subtract-deltas then never read evicted data.
        // ORDERING: Acquire — pairs with each joiner's Release `inc_floor` store above, so eviction never outruns a teammate's incremental state.
        // PANIC-OK: at least one joiner is guaranteed by EngineConfig validation.
        let floor_min = self
            .inc_floor
            .iter()
            .map(|p| p.load(Ordering::Acquire))
            .min()
            .expect("≥1 joiner");
        let bound = Timestamp::from_micros(retention_bound.min(floor_min));
        self.inst.evicted += self.writer.evict_below(bound) as u64;
        if let Some(t0) = other_t0 {
            self.inst
                .add_breakdown(0, 0, t0.elapsed().as_nanos() as u64);
        }
    }

    fn drain_pending(&mut self, frontier: Timestamp) {
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 > frontier.as_micros() {
                break;
            }
            let ((_, seq), base) = entry.remove_entry();
            self.join_and_emit(base.key, base.ts, seq, base.arrival, frontier);
        }
        self.publish_hold();
    }

    /// The Scale-OIJ join: read the whole virtual team's time-travel
    /// indexes, incrementally over the watermark-settled region when
    /// possible.
    fn join_and_emit(
        &mut self,
        key: Key,
        ts: Timestamp,
        seq: u64,
        arrival: Instant,
        watermark: Timestamp,
    ) {
        let window = self.cfg.query.window.window_of(ts);
        let (a, b) = (window.start.as_micros(), window.end.as_micros());
        // Fresh schedule load: the channel recv that delivered this base
        // happens-after the driver's routing loads, so this sees at least
        // the schedule any relevant probe was routed under.
        let sched = self.schedule.load();
        let p = (hash_key(key) & self.part_mask) as usize;
        // PANIC-OK: `p` is masked to < partitions == schedule team count.
        let team = &sched.teams[p];

        if !self.cfg.incremental {
            self.plain_rescan(key, a, b, team, seq, ts, arrival);
            return;
        }

        // Settled frontier: everything strictly below the watermark is
        // immutable. (`wm == MIN` before any observation ⇒ nothing settled.)
        let settled_hi = if watermark == Timestamp::MIN {
            i64::MIN
        } else {
            b.min(watermark.as_micros() - 1)
        };
        if settled_hi < a {
            // The whole window is still unsettled (startup, or lateness ≫
            // window as in Workload C): fresh scan, no state to keep.
            self.inc.remove(&key);
            self.plain_rescan(key, a, b, team, seq, ts, arrival);
            return;
        }

        let evict_bound = {
            let retention = self
                .hold_frontier()
                .saturating_sub(self.cfg.query.window.length())
                .as_micros();
            // ORDERING: Acquire — pairs with the Release `inc_floor` stores; see the eviction bound in `on_watermark`.
            // PANIC-OK: at least one joiner is guaranteed by EngineConfig validation.
            let floor_min = self
                .inc_floor
                .iter()
                .map(|p| p.load(Ordering::Acquire))
                .min()
                .expect("≥1 joiner");
            retention.min(floor_min)
        };
        enum Plan {
            /// Slide the state forward (in-order base).
            Advance,
            /// Out-of-order base: the state still covers a suffix of this
            /// window — serve it read-only with two small boundary scans
            /// instead of throwing the state away (jitter is bounded by the
            /// lateness, so the prefix `[a, st.start)` is tiny).
            ReadOnly,
            Rebuild,
        }
        let plan = match self.inc.get(&key) {
            Some(st) if st.start < evict_bound || st.settled_end > settled_hi => Plan::Rebuild,
            Some(st) if st.start <= a && st.settled_end >= a - 1 => Plan::Advance,
            Some(st) if a < st.start && a >= evict_bound && st.settled_end < b => Plan::ReadOnly,
            Some(_) => Plan::Rebuild,
            None => Plan::Rebuild,
        };
        let (value, matched) = match plan {
            Plan::Advance => {
                let fresh = self.advance_settled(key, a, settled_hi, b, team);
                // PANIC-OK: `advance_settled` created or updated this key's entry.
                let st = self.inc.get(&key).expect("advanced above");
                st.agg.emit_with(self.cfg.query.agg, &fresh)
            }
            Plan::ReadOnly => {
                let (st_start, st_end) = {
                    // PANIC-OK: the Plan::ReadOnly arm is only taken when the entry matched above.
                    let st = self.inc.get(&key).expect("matched above");
                    (st.start, st.settled_end)
                };
                let mut fresh = self.scan_suffix(key, a, st_start - 1, team);
                let suffix = self.scan_suffix(key, st_end + 1, b, team);
                fresh.merge(&suffix);
                // PANIC-OK: entry existence re-checked by the match that chose this plan.
                let st = self.inc.get(&key).expect("matched above");
                st.agg.emit_with(self.cfg.query.agg, &fresh)
            }
            Plan::Rebuild => {
                let fresh = self.rebuild_settled(key, a, settled_hi, b, team);
                // PANIC-OK: `rebuild_settled` created this key's entry.
                let st = self.inc.get(&key).expect("rebuilt above");
                st.agg.emit_with(self.cfg.query.agg, &fresh)
            }
        };
        // The time-travel property holds for the delta scans too: every
        // visited tuple is (or was) in-window.
        self.inst.record_effectiveness(matched, matched);
        self.emit(key, ts, seq, arrival, value, matched);
    }

    /// Subtract `[st.start, a)`; one merged forward scan
    /// `(st.settled_end, b]` feeds the settled state (`ts ≤ settled_hi`)
    /// and the returned unsettled partial (`ts > settled_hi`) — adjacent
    /// ranges share a single index seek.
    fn advance_settled(
        &mut self,
        key: Key,
        a: i64,
        settled_hi: i64,
        b: i64,
        team: &[usize],
    ) -> PartialAgg {
        let (old_start, old_end) = {
            // PANIC-OK: the caller verified this key has incremental state.
            let st = self.inc.get(&key).expect("caller checked");
            (st.start, st.settled_end)
        };
        let lookup_t0 = self.inst.breakdown.is_some().then(Instant::now);
        let scratch = &mut self.scratch;
        let pairs = &mut self.scratch_pairs;
        let readers = &self.readers;
        let node_bytes = self.node_bytes;
        let mut cache = self.inst.cache.as_mut();
        scratch.clear();
        pairs.clear();
        for &m in team {
            let cache = &mut cache;
            // PANIC-OK: `m` is a team member index, validated < joiners == readers length when the schedule is built.
            readers[m].scan_ts_range_addr(
                key,
                Timestamp::from_micros(old_start),
                Timestamp::from_micros(a - 1),
                |t, addr| {
                    if let Some(c) = cache.as_mut() {
                        c.access(addr, node_bytes);
                    }
                    scratch.push(t.value);
                },
            );
        }
        let mut fresh = PartialAgg::empty();
        for &m in team {
            let cache = &mut cache;
            let fresh = &mut fresh;
            // PANIC-OK: `m` is a team member index, validated < joiners == readers length when the schedule is built.
            readers[m].scan_ts_range_addr(
                key,
                Timestamp::from_micros(old_end + 1),
                Timestamp::from_micros(b),
                |t, addr| {
                    if let Some(c) = cache.as_mut() {
                        c.access(addr, node_bytes);
                    }
                    let ts = t.ts.as_micros();
                    if ts <= settled_hi {
                        pairs.push((ts, t.value));
                    } else {
                        fresh.add(t.value);
                    }
                },
            );
        }

        let match_t0 = lookup_t0.map(|t0| (t0, Instant::now()));
        let settled_count = self.inc.get(&key).map(|st| st.agg.count()).unwrap_or(0);
        if self.scratch.len() as u64 > settled_count {
            // Only possible when lateness-violating tuples landed in the
            // settled region; rebuild rather than underflow.
            return self.rebuild_settled(key, a, settled_hi, b, team);
        }
        // PANIC-OK: the caller verified this key has incremental state.
        let st = self.inc.get_mut(&key).expect("caller checked");
        match &mut st.agg {
            IncAggState::Run(run) => {
                for &v in self.scratch.iter() {
                    run.evict(v);
                }
                for &(_, v) in self.scratch_pairs.iter() {
                    run.add(v);
                }
            }
            IncAggState::Stack(stack) => {
                // FIFO fronts are the oldest timestamps — exactly the
                // subtract range, because pushes are ts-sorted.
                for _ in 0..self.scratch.len() {
                    // PANIC-OK: the loop bound is `scratch.len()`, which counted exactly the evictable fronts.
                    stack.evict().expect("guarded by count check");
                }
                self.scratch_pairs.sort_unstable_by_key(|(t, _)| *t);
                for &(_, v) in self.scratch_pairs.iter() {
                    stack.push(v);
                }
            }
        }
        st.start = a;
        st.settled_end = settled_hi;
        if let Some((t0, t1)) = match_t0 {
            let t2 = Instant::now();
            self.inst.add_breakdown(
                t1.duration_since(t0).as_nanos() as u64,
                t2.duration_since(t1).as_nanos() as u64,
                0,
            );
        }
        fresh
    }

    /// Builds a fresh settled state over `[a, settled_hi]` with one merged
    /// scan of `[a, b]`, returning the unsettled partial (`ts > settled_hi`).
    fn rebuild_settled(
        &mut self,
        key: Key,
        a: i64,
        settled_hi: i64,
        b: i64,
        team: &[usize],
    ) -> PartialAgg {
        let lookup_t0 = self.inst.breakdown.is_some().then(Instant::now);
        let pairs = &mut self.scratch_pairs;
        let readers = &self.readers;
        let node_bytes = self.node_bytes;
        let mut cache = self.inst.cache.as_mut();
        pairs.clear();
        let mut fresh = PartialAgg::empty();
        for &m in team {
            let cache = &mut cache;
            let fresh = &mut fresh;
            // PANIC-OK: `m` is a team member index, validated < joiners == readers length when the schedule is built.
            readers[m].scan_ts_range_addr(
                key,
                Timestamp::from_micros(a),
                Timestamp::from_micros(b),
                |t, addr| {
                    if let Some(c) = cache.as_mut() {
                        c.access(addr, node_bytes);
                    }
                    let ts = t.ts.as_micros();
                    if ts <= settled_hi {
                        pairs.push((ts, t.value));
                    } else {
                        fresh.add(t.value);
                    }
                },
            );
        }
        let match_t0 = lookup_t0.map(|t0| (t0, Instant::now()));
        let mut state = IncAggState::fresh(self.cfg.query.agg);
        match &mut state {
            IncAggState::Run(run) => {
                for &(_, v) in self.scratch_pairs.iter() {
                    run.add(v);
                }
            }
            IncAggState::Stack(stack) => {
                self.scratch_pairs.sort_unstable_by_key(|(t, _)| *t);
                for &(_, v) in self.scratch_pairs.iter() {
                    stack.push(v);
                }
            }
        }
        self.inc.insert(
            key,
            IncState {
                start: a,
                settled_end: settled_hi,
                agg: state,
            },
        );
        if let Some((t0, t1)) = match_t0 {
            let t2 = Instant::now();
            self.inst.add_breakdown(
                t1.duration_since(t0).as_nanos() as u64,
                t2.duration_since(t1).as_nanos() as u64,
                0,
            );
        }
        fresh
    }

    /// Scans `[lo, hi]` across the team into a mergeable partial.
    fn scan_suffix(&mut self, key: Key, lo: i64, hi: i64, team: &[usize]) -> PartialAgg {
        let mut fresh = PartialAgg::empty();
        if hi < lo {
            return fresh;
        }
        let lookup_t0 = self.inst.breakdown.is_some().then(Instant::now);
        let readers = &self.readers;
        let node_bytes = self.node_bytes;
        let mut cache = self.inst.cache.as_mut();
        for &m in team {
            let cache = &mut cache;
            // PANIC-OK: `m` is a team member index, validated < joiners == readers length when the schedule is built.
            readers[m].scan_ts_range_addr(
                key,
                Timestamp::from_micros(lo),
                Timestamp::from_micros(hi),
                |t, addr| {
                    if let Some(c) = cache.as_mut() {
                        c.access(addr, node_bytes);
                    }
                    fresh.add(t.value);
                },
            );
        }
        if let Some(t0) = lookup_t0 {
            self.inst
                .add_breakdown(t0.elapsed().as_nanos() as u64, 0, 0);
        }
        fresh
    }

    /// Non-incremental full window scan (the "Scale-OIJ w/o inc" ablation).
    #[allow(clippy::too_many_arguments)]
    fn plain_rescan(
        &mut self,
        key: Key,
        a: i64,
        b: i64,
        team: &[usize],
        seq: u64,
        ts: Timestamp,
        arrival: Instant,
    ) {
        let lookup_t0 = self.inst.breakdown.is_some().then(Instant::now);
        let scratch = &mut self.scratch;
        let readers = &self.readers;
        let node_bytes = self.node_bytes;
        let mut cache = self.inst.cache.as_mut();
        scratch.clear();
        let mut visited = 0u64;
        for &m in team {
            let cache = &mut cache;
            // PANIC-OK: `m` is a team member index, validated < joiners == readers length when the schedule is built.
            visited += readers[m].scan_ts_range_addr(
                key,
                Timestamp::from_micros(a),
                Timestamp::from_micros(b),
                |t, addr| {
                    if let Some(c) = cache.as_mut() {
                        c.access(addr, node_bytes);
                    }
                    scratch.push(t.value);
                },
            ) as u64;
        }
        let t1 = lookup_t0.map(|t0| (t0, Instant::now()));
        let mut full = FullWindowAgg::new(self.cfg.query.agg);
        for &v in self.scratch.iter() {
            full.add(v);
        }
        let (value, matched) = (full.finish(), full.count());
        if let Some((t0, t1)) = t1 {
            let t2 = Instant::now();
            self.inst.add_breakdown(
                t1.duration_since(t0).as_nanos() as u64,
                t2.duration_since(t1).as_nanos() as u64,
                0,
            );
        }
        // The time-travel property: visited == matched.
        self.inst.record_effectiveness(matched, visited);
        self.emit(key, ts, seq, arrival, value, matched);
    }

    #[inline]
    fn emit(
        &mut self,
        key: Key,
        ts: Timestamp,
        seq: u64,
        arrival: Instant,
        agg: Option<f64>,
        matched: u64,
    ) {
        self.sink.emit(FeatureRow::new(ts, key, seq, agg, matched));
        self.results += 1;
        self.inst.record_latency(arrival);
    }
}
