//! The dynamic balanced schedule (paper §V-B, Algorithm 3).
//!
//! Keys hash into `P` fixed partitions; a [`Schedule`] maps every partition
//! to its **virtual team** — the set of joiners sharing that partition's
//! workload. The partitioner routes each tuple to one team member
//! (round-robin) for writing; joins read every member's index.
//!
//! Rebalancing is **replication-only**: a partition's team only ever grows
//! (the paper: "we only allow sharing the ownership of a partition rather
//! than transferring"), so a joiner that ever wrote tuples of a partition
//! remains in its team and the tuples stay readable — no data migration,
//! and in-flight tuples stay correct across schedule changes.
//!
//! Batched routing (DESIGN.md §10) interacts with this the same way
//! in-flight messages do: the driver picks a batch's destination member
//! when the **first** tuple is coalesced, and because teams only ever
//! grow, that member is still a valid writer for every tuple in the
//! batch when it flushes — even if a rebalance landed in between.

use crate::sync::atomic::{AtomicU64, Ordering};

use oij_metrics::unbalancedness;

/// An immutable partition → virtual-team mapping, published through an RCU
/// cell and replaced atomically by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `teams[p]` = sorted joiner ids sharing partition `p`.
    pub teams: Vec<Vec<usize>>,
    /// Monotone version for diagnostics.
    pub version: u64,
}

impl Schedule {
    /// The initial static schedule: partition `p` owned solely by joiner
    /// `p mod J` (identical to Key-OIJ's static binding).
    pub fn initial(partitions: usize, joiners: usize) -> Self {
        Schedule {
            teams: (0..partitions).map(|p| vec![p % joiners]).collect(),
            version: 0,
        }
    }

    /// Per-joiner estimated workload under this schedule (paper Eq. 3):
    /// `W_i = Σ_{p ∋ i} count_p / |team_p|`.
    pub fn estimated_loads(&self, counts: &[f64], joiners: usize) -> Vec<f64> {
        let mut loads = vec![0.0; joiners];
        for (team, &count) in self.teams.iter().zip(counts) {
            let share = count / team.len() as f64;
            for &j in team {
                loads[j] += share;
            }
        }
        loads
    }

    /// Unbalancedness of the estimated loads (paper Eq. 2).
    pub fn unbalancedness(&self, counts: &[f64], joiners: usize) -> f64 {
        unbalancedness(&self.estimated_loads(counts, joiners))
    }
}

/// Shared per-partition tuple counters, bumped by the partitioner on every
/// routed tuple and decayed by the scheduler (Algorithm 3 line 13).
#[derive(Debug)]
pub struct PartitionStats {
    counts: Vec<AtomicU64>,
}

impl PartitionStats {
    /// Zeroed counters for `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        PartitionStats {
            counts: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Bumps a partition's counter (hot path: one relaxed RMW).
    #[inline]
    pub fn bump(&self, partition: usize) {
        // ORDERING: Relaxed — load-statistics counter; the scheduler tolerates torn snapshots (see `decay`), so no ordering is required.
        self.counts[partition].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots all counters as floats.
    pub fn snapshot(&self) -> Vec<f64> {
        // ORDERING: Relaxed — load-statistics counter; the scheduler tolerates torn snapshots (see `decay`), so no ordering is required.
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f64)
            .collect()
    }

    /// Decays every counter by `λ` (the races with concurrent bumps lose a
    /// handful of counts, which the next period re-learns — acceptable for
    /// a statistics heuristic).
    pub fn decay(&self, lambda: f64) {
        for c in &self.counts {
            // ORDERING: Relaxed — load-statistics counter; no ordering contract.
            let cur = c.load(Ordering::Relaxed) as f64;
            // ORDERING: Relaxed — the racy read-modify-write loses a handful
            // of counts to concurrent bumps, tolerated by design (doc above).
            c.store((cur * lambda) as u64, Ordering::Relaxed);
        }
    }
}

/// One pass of Algorithm 3: returns a better schedule, or `None` when no
/// replication improves unbalancedness by more than `delta`.
///
/// Implementation of the paper's loop:
/// 1. estimate `W_i` per Eq. 3 and pick `J_max`, `J_min`;
/// 2. walk `J_max`'s partitions in descending workload order and
///    tentatively replicate one onto `J_min`;
/// 3. accept the first replication improving unbalancedness by > `delta`
///    and repeat from 1; stop when an iteration changes nothing.
pub fn rebalance(
    current: &Schedule,
    counts: &[f64],
    joiners: usize,
    delta: f64,
) -> Option<Schedule> {
    assert_eq!(
        current.teams.len(),
        counts.len(),
        "partition count mismatch"
    );
    if joiners <= 1 {
        return None;
    }
    let mut schedule = current.clone();
    let mut last_unb = schedule.unbalancedness(counts, joiners);
    let mut changed = false;

    loop {
        let loads = schedule.estimated_loads(counts, joiners);
        let j_max = (0..joiners)
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("joiners > 0");
        let j_min = (0..joiners)
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("joiners > 0");
        if j_max == j_min {
            break;
        }

        // Priority queue of J_max's partitions by (shared) workload.
        let mut candidates: Vec<(f64, usize)> = schedule
            .teams
            .iter()
            .enumerate()
            .filter(|(_, team)| team.contains(&j_max))
            .map(|(p, team)| (counts[p] / team.len() as f64, p))
            .collect();
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut accepted = false;
        for (_, p) in candidates {
            if schedule.teams[p].contains(&j_min) {
                continue; // already shared with the target
            }
            // Tentative replication of p onto J_min.
            schedule.teams[p].push(j_min);
            schedule.teams[p].sort_unstable();
            let unb = schedule.unbalancedness(counts, joiners);
            if last_unb - unb > delta {
                last_unb = unb;
                accepted = true;
                changed = true;
                break;
            }
            // Revert and try the next candidate.
            schedule.teams[p].retain(|&j| j != j_min);
        }
        if !accepted {
            break; // S_new did not change in this iteration
        }
    }

    if changed {
        schedule.version = current.version + 1;
        Some(schedule)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_schedule_is_static_round_robin() {
        let s = Schedule::initial(8, 3);
        assert_eq!(s.teams[0], vec![0]);
        assert_eq!(s.teams[1], vec![1]);
        assert_eq!(s.teams[3], vec![0]);
        assert_eq!(s.version, 0);
    }

    #[test]
    fn eq3_load_estimation_shares_by_team_size() {
        let mut s = Schedule::initial(2, 2);
        s.teams[0] = vec![0, 1]; // partition 0 shared
        let loads = s.estimated_loads(&[100.0, 40.0], 2);
        assert_eq!(loads, vec![50.0, 90.0]); // j0: 100/2; j1: 100/2 + 40
    }

    #[test]
    fn rebalance_spreads_one_hot_partition() {
        // 4 partitions, 4 joiners, all load on partition 0 (1 hot key).
        let s = Schedule::initial(4, 4);
        let counts = [1000.0, 0.0, 0.0, 0.0];
        let out = rebalance(&s, &counts, 4, 0.01).expect("should improve");
        // The hot partition's team must have grown.
        assert!(out.teams[0].len() > 1, "{:?}", out.teams);
        assert!(
            out.unbalancedness(&counts, 4) < s.unbalancedness(&counts, 4),
            "unbalancedness must strictly improve"
        );
        assert_eq!(out.version, 1);
    }

    #[test]
    fn rebalance_reaches_near_perfect_balance_for_single_hot_key() {
        // Repeatedly rebalancing a single hot partition ends with everyone
        // in its team.
        let mut s = Schedule::initial(4, 4);
        let counts = [1000.0, 0.0, 0.0, 0.0];
        while let Some(next) = rebalance(&s, &counts, 4, 0.001) {
            s = next;
        }
        assert_eq!(s.teams[0], vec![0, 1, 2, 3]);
        assert!(s.unbalancedness(&counts, 4) < 1e-9);
    }

    #[test]
    fn balanced_input_needs_no_change() {
        let s = Schedule::initial(8, 4);
        let counts = [10.0; 8];
        assert!(rebalance(&s, &counts, 4, 0.01).is_none());
    }

    #[test]
    fn replication_only_never_removes_members() {
        let s = Schedule::initial(16, 4);
        let mut counts = vec![0.0; 16];
        counts[0] = 500.0;
        counts[1] = 300.0;
        let mut cur = s.clone();
        for _ in 0..10 {
            match rebalance(&cur, &counts, 4, 0.001) {
                Some(next) => {
                    for (p, team) in cur.teams.iter().enumerate() {
                        for j in team {
                            assert!(
                                next.teams[p].contains(j),
                                "member {j} dropped from partition {p}"
                            );
                        }
                    }
                    cur = next;
                }
                None => break,
            }
        }
    }

    #[test]
    fn single_joiner_never_rebalances() {
        let s = Schedule::initial(4, 1);
        assert!(rebalance(&s, &[100.0, 0.0, 0.0, 0.0], 1, 0.01).is_none());
    }

    #[test]
    fn stats_bump_snapshot_decay() {
        let stats = PartitionStats::new(4);
        for _ in 0..10 {
            stats.bump(2);
        }
        stats.bump(0);
        assert_eq!(stats.snapshot(), vec![1.0, 0.0, 10.0, 0.0]);
        stats.decay(0.5);
        assert_eq!(stats.snapshot(), vec![0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn zipf_like_counts_reduce_unbalancedness_substantially() {
        // 64 partitions, 8 joiners, heavy-tailed counts.
        let s = Schedule::initial(64, 8);
        let counts: Vec<f64> = (0..64).map(|p| 1000.0 / (p + 1) as f64).collect();
        let before = s.unbalancedness(&counts, 8);
        let mut cur = s;
        while let Some(next) = rebalance(&cur, &counts, 8, 0.001) {
            cur = next;
        }
        let after = cur.unbalancedness(&counts, 8);
        assert!(
            after < before * 0.2,
            "expected ≥5x improvement: {before} → {after}"
        );
    }
}
