//! Loom model checks for the batch-buffer recycling pool (DESIGN.md §10).
//!
//! Compile and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p oij-core --test loom --release
//! ```
//!
//! Under `--cfg loom` the crate's `sync` facade swaps `SlotPool`'s slot
//! state words to the vendored loom's instrumented atomics, and
//! `loom::model` explores the distinct thread interleavings of each
//! scenario (up to the preemption bound). Same caveats as the skiplist
//! models: the stand-in is sequentially consistent only (wrong
//! `Release`/`Acquire` orderings are ThreadSanitizer's layer, see
//! `scripts/sanitize.sh`), and plain `UnsafeCell` accesses are not
//! instrumented — the scenarios assert value conservation directly.
//!
//! `SlotPool` is the one lock-free structure the batched routing path
//! added: drivers `take()` recycled `Vec<DataMsg>` buffers while joiners
//! `put()` drained ones back, concurrently and from different threads.
//! The contract checked here is **conservation**: a value put into the
//! pool is observed by exactly one taker exactly once — never duplicated
//! (double-vend would alias a live buffer) and never lost while a slot
//! is free (leak would defeat recycling).

#![cfg(loom)]

use loom::thread;
use oij_core::SlotPool;
use std::sync::Arc;

/// Two concurrent `put`s into a two-slot pool: both values are accepted
/// (capacity suffices) and two subsequent `take`s vend exactly those two
/// values, each once.
#[test]
fn concurrent_puts_conserve_values() {
    loom::model(|| {
        let pool = Arc::new(SlotPool::new(2));
        let p1 = Arc::clone(&pool);
        let p2 = Arc::clone(&pool);
        let t1 = thread::spawn(move || p1.put(1u32));
        let t2 = thread::spawn(move || p2.put(2u32));
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        // Two slots, two puts: neither bounces.
        assert_eq!(r1, None);
        assert_eq!(r2, None);
        let mut got = [pool.take(), pool.take()];
        got.sort();
        assert_eq!(got, [Some(1), Some(2)]);
        assert_eq!(pool.take(), None);
    });
}

/// A `put` racing a `take` on a one-slot pool: the taker sees the value
/// or nothing, and whatever it missed is still in the pool afterwards —
/// the value is never lost and never observed twice.
#[test]
fn put_take_race_conserves_the_value() {
    loom::model(|| {
        let pool = Arc::new(SlotPool::new(1));
        let producer = {
            let p = Arc::clone(&pool);
            thread::spawn(move || {
                assert_eq!(p.put(7u32), None);
            })
        };
        let consumer = {
            let p = Arc::clone(&pool);
            thread::spawn(move || p.take())
        };
        producer.join().unwrap();
        let taken = consumer.join().unwrap();
        match taken {
            Some(v) => {
                assert_eq!(v, 7);
                // Already vended: the pool must not vend it again.
                assert_eq!(pool.take(), None);
            }
            None => {
                // The taker ran before publication: the value is intact.
                assert_eq!(pool.take(), Some(7));
            }
        }
    });
}

/// Two takers racing for a single stored value: exactly one wins, the
/// other sees an empty pool — a slot is never vended twice.
#[test]
fn competing_takers_vend_exactly_once() {
    loom::model(|| {
        let pool = Arc::new(SlotPool::new(1));
        assert_eq!(pool.put(9u32), None);
        let t1 = {
            let p = Arc::clone(&pool);
            thread::spawn(move || p.take())
        };
        let t2 = {
            let p = Arc::clone(&pool);
            thread::spawn(move || p.take())
        };
        let a = t1.join().unwrap();
        let b = t2.join().unwrap();
        match (a, b) {
            (Some(9), None) | (None, Some(9)) => {}
            other => panic!("expected exactly one taker to win, got {other:?}"),
        }
        assert_eq!(pool.take(), None);
    });
}
