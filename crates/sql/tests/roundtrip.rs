//! Property test: every representable plan survives `to_sql` → `parse`.

use oij_common::{AggSpec, Duration};
use oij_sql::{parse, WindowUnionQuery};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,12}".prop_filter("avoid keywords", |s| {
        // Identifiers that collide with grammar keywords would change the
        // parse; real deployments quote them, our dialect forbids them.
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "SELECT"
                | "OVER"
                | "FROM"
                | "WINDOW"
                | "AS"
                | "UNION"
                | "PARTITION"
                | "BY"
                | "ORDER"
                | "ROWS_RANGE"
                | "BETWEEN"
                | "PRECEDING"
                | "AND"
                | "FOLLOWING"
                | "CURRENT"
                | "ROW"
                | "LATENESS"
                | "SUM"
                | "COUNT"
                | "AVG"
                | "MIN"
                | "MAX"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn to_sql_then_parse_is_identity(
        agg_idx in 0usize..5,
        base in ident(),
        probe in ident(),
        window in ident(),
        key in ident(),
        order in ident(),
        column in ident(),
        pre_us in 0i64..10_000_000,
        fol_us in 0i64..10_000_000,
        late_us in 0i64..10_000_000,
        labelled in any::<bool>(),
        label in ident(),
    ) {
        let agg = [AggSpec::Sum, AggSpec::Count, AggSpec::Avg, AggSpec::Min, AggSpec::Max][agg_idx];
        let q = WindowUnionQuery {
            name: labelled.then_some(label),
            agg,
            agg_column: if agg == AggSpec::Count { "*".into() } else { column },
            window_name: window,
            base_table: base,
            union_table: probe,
            partition_key: key,
            order_column: order,
            preceding: Duration::from_micros(pre_us),
            following: Duration::from_micros(fol_us),
            lateness: Duration::from_micros(late_us),
        };
        let sql = q.to_sql();
        let parsed = parse(&sql).map_err(|e| {
            TestCaseError::fail(format!("reparse failed for {sql:?}: {e}"))
        })?;
        prop_assert_eq!(parsed, q);
    }
}
