//! SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets for error reporting.
//! Keywords are recognised case-insensitively at the parser level; the
//! lexer only distinguishes shapes (word / number / duration / symbol).

use oij_common::{Duration, Error, Result};

/// One token with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset where the token starts.
    pub offset: usize,
    /// The token payload.
    pub kind: TokenKind,
}

/// Token shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`sum`, `WINDOW`, `w1`, …).
    Word(String),
    /// Bare integer (`42`).
    Number(i64),
    /// Duration literal with unit suffix (`1s`, `100ms`, `500us`, `2min`,
    /// `1h`, `3d`).
    Duration(Duration),
    /// A single punctuation symbol: `( ) , ; . *`.
    Symbol(char),
    /// A `-- name: <ident>` comment — the query-label extension used by
    /// the serving runtime to address registered queries. All other `--`
    /// comments are skipped without producing a token.
    Label(String),
}

/// Tokenizes `input`, rejecting unknown characters and malformed literals.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                offset: start,
                kind: TokenKind::Word(input[start..i].to_string()),
            });
        } else if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let value: i64 = input[start..i].parse().map_err(|_| Error::SqlParse {
                offset: start,
                message: format!("number out of range: {}", &input[start..i]),
            })?;
            // Optional unit suffix makes it a duration literal.
            let unit_start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                i += 1;
            }
            if unit_start == i {
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Number(value),
                });
            } else {
                let micros = match input[unit_start..i].to_ascii_lowercase().as_str() {
                    "us" => value,
                    "ms" => value.saturating_mul(1_000),
                    "s" => value.saturating_mul(1_000_000),
                    "m" | "min" => value.saturating_mul(60_000_000),
                    "h" => value.saturating_mul(3_600_000_000),
                    "d" => value.saturating_mul(86_400_000_000),
                    unit => {
                        return Err(Error::SqlParse {
                            offset: unit_start,
                            message: format!(
                                "unknown duration unit '{unit}' (expected us/ms/s/m/min/h/d)"
                            ),
                        })
                    }
                };
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Duration(Duration::from_micros(micros)),
                });
            }
        } else if matches!(c, '(' | ')' | ',' | ';' | '.' | '*') {
            i += 1;
            tokens.push(Token {
                offset: start,
                kind: TokenKind::Symbol(c),
            });
        } else if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            // `--` line comment. The `-- name: <ident>` form is the query
            // label extension and becomes a token; anything else is skipped.
            let eol = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| i + p)
                .unwrap_or(bytes.len());
            let body = input[i + 2..eol].trim();
            if let Some(label) = body.strip_prefix("name:") {
                let label = label.trim();
                let valid = !label.is_empty()
                    && label
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'_')
                    && !label.as_bytes()[0].is_ascii_digit();
                if !valid {
                    return Err(Error::SqlParse {
                        offset: start,
                        message: format!(
                            "malformed query label '-- name: {label}' \
                             (expected an identifier)"
                        ),
                    });
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Label(label.to_string()),
                });
            }
            i = eol;
        } else {
            return Err(Error::SqlParse {
                offset: start,
                message: format!("unexpected character '{c}'"),
            });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_numbers_symbols() {
        assert_eq!(
            kinds("SELECT sum(col2)"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Word("sum".into()),
                TokenKind::Symbol('('),
                TokenKind::Word("col2".into()),
                TokenKind::Symbol(')'),
            ]
        );
        assert_eq!(kinds("42"), vec![TokenKind::Number(42)]);
    }

    #[test]
    fn duration_units() {
        assert_eq!(
            kinds("1s 100ms 500us 2min 1h 1d"),
            vec![
                TokenKind::Duration(Duration::from_secs(1)),
                TokenKind::Duration(Duration::from_millis(100)),
                TokenKind::Duration(Duration::from_micros(500)),
                TokenKind::Duration(Duration::from_secs(120)),
                TokenKind::Duration(Duration::from_secs(3600)),
                TokenKind::Duration(Duration::from_secs(86_400)),
            ]
        );
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn rejects_unknown_unit_and_char() {
        let err = tokenize("5parsecs").unwrap_err();
        assert!(matches!(err, Error::SqlParse { offset: 1, .. }), "{err}");
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn comments_are_skipped_and_labels_tokenized() {
        assert_eq!(
            kinds("-- just a remark\nSELECT -- trailing\n42"),
            vec![TokenKind::Word("SELECT".into()), TokenKind::Number(42)]
        );
        assert_eq!(
            kinds("-- name: user_clicks\nSELECT"),
            vec![
                TokenKind::Label("user_clicks".into()),
                TokenKind::Word("SELECT".into()),
            ]
        );
        // A comment with no newline terminates at end of input.
        assert_eq!(
            kinds("SELECT -- tail"),
            vec![TokenKind::Word("SELECT".into())]
        );
    }

    #[test]
    fn malformed_labels_are_rejected() {
        assert!(tokenize("-- name: \nSELECT").is_err());
        assert!(tokenize("-- name: 9lives\nSELECT").is_err());
        assert!(tokenize("-- name: two words\nSELECT").is_err());
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(
            kinds("ROWS_RANGE user_id _tmp"),
            vec![
                TokenKind::Word("ROWS_RANGE".into()),
                TokenKind::Word("user_id".into()),
                TokenKind::Word("_tmp".into()),
            ]
        );
    }
}
