//! # oij-sql — the OpenMLDB `WINDOW … UNION … ROWS_RANGE` front-end
//!
//! OpenMLDB expresses the online interval join in SQL through its *Window
//! Union* extension (paper §II-A):
//!
//! ```sql
//! SELECT sum(col2) OVER w1 FROM S
//! WINDOW w1 AS (
//!     UNION R
//!     PARTITION BY key
//!     ORDER BY timestamp
//!     ROWS_RANGE BETWEEN 1s PRECEDING AND 1s FOLLOWING);
//! ```
//!
//! This crate parses exactly that dialect — plus a `LATENESS <duration>`
//! extension for the disorder bound, which OpenMLDB configures out of band
//! — into a [`WindowUnionQuery`] plan that lowers to an engine-ready
//! [`oij_common::OijQuery`].
//!
//! ```
//! use oij_sql::parse;
//!
//! let q = parse(
//!     "SELECT sum(col2) OVER w1 FROM actions \
//!      WINDOW w1 AS (UNION orders PARTITION BY user_id ORDER BY ts \
//!      ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW LATENESS 100ms)",
//! ).unwrap();
//! assert_eq!(q.base_table, "actions");
//! assert_eq!(q.union_table, "orders");
//! let plan = q.to_oij_query().unwrap();
//! assert_eq!(plan.window.preceding, oij_common::Duration::from_secs(1));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::WindowUnionQuery;
pub use parser::{parse, parse_many};
