//! Recursive-descent parser for the window-union dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := SELECT agg '(' column ')' OVER name FROM table
//!             WINDOW name AS '(' UNION table
//!             PARTITION BY column ORDER BY column
//!             ROWS_RANGE BETWEEN bound PRECEDING AND end_bound
//!             [LATENESS duration] ')' [';']
//! bound    := duration | number          (bare numbers are milliseconds,
//!                                         as in OpenMLDB's ROWS_RANGE)
//! end_bound := bound FOLLOWING | CURRENT ROW
//! column   := ident | '*'
//! ```

use oij_common::{AggSpec, Duration, Error, Result};

use crate::ast::WindowUnionQuery;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses one window-union query.
pub fn parse(sql: &str) -> Result<WindowUnionQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        input_len: sql.len(),
    };
    let q = p.query()?;
    p.end()?;
    Ok(q)
}

/// Parses a script of `;`-separated window-union queries, each optionally
/// preceded by a `-- name: <ident>` label. An empty script parses to an
/// empty list; duplicate labels are rejected so registered queries stay
/// addressable by name.
pub fn parse_many(sql: &str) -> Result<Vec<WindowUnionQuery>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        input_len: sql.len(),
    };
    let mut queries = Vec::new();
    while p.peek().is_some() {
        let offset = p.here();
        let q = p.query()?;
        if let Some(name) = &q.name {
            if queries
                .iter()
                .any(|prev: &WindowUnionQuery| prev.name.as_deref() == Some(name))
            {
                return Err(Error::SqlParse {
                    offset,
                    message: format!("duplicate query label '{name}'"),
                });
            }
        }
        queries.push(q);
    }
    Ok(queries)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(self.input_len)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error::SqlParse {
            offset: self.here(),
            message: message.into(),
        })
    }

    /// Consumes the given keyword (case-insensitive).
    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => self.err(format!("expected keyword {kw}")),
        }
    }

    /// Whether the next token is the given keyword; consumes it if so.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Token { kind: TokenKind::Word(w), .. }) if w.eq_ignore_ascii_case(kw)
        ) && {
            self.pos += 1;
            true
        }
    }

    fn symbol(&mut self, sym: char) -> Result<()> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Symbol(c),
                ..
            }) if *c == sym => {
                self.pos += 1;
                Ok(())
            }
            _ => self.err(format!("expected '{sym}'")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) => {
                self.pos += 1;
                Ok(w.clone())
            }
            _ => self.err(format!("expected {what}")),
        }
    }

    /// A column: identifier or `*`.
    fn column(&mut self) -> Result<String> {
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Symbol('*'),
                ..
            })
        ) {
            self.pos += 1;
            return Ok("*".into());
        }
        self.ident("a column name")
    }

    /// A window bound: duration literal or bare number (milliseconds).
    fn bound(&mut self) -> Result<Duration> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Duration(d),
                ..
            }) => {
                self.pos += 1;
                Ok(*d)
            }
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => {
                self.pos += 1;
                Ok(Duration::from_millis(*n))
            }
            _ => self.err("expected a window bound (duration or number)"),
        }
    }

    fn query(&mut self) -> Result<WindowUnionQuery> {
        let name = self.eat_label();
        self.keyword("SELECT")?;
        let agg_offset = self.here();
        let agg_name = self.ident("an aggregation function")?;
        let agg = AggSpec::from_sql_name(&agg_name).map_err(|e| Error::SqlParse {
            offset: agg_offset,
            message: e.to_string(),
        })?;
        self.symbol('(')?;
        let agg_column = self.column()?;
        if agg_column == "*" && agg != AggSpec::Count {
            return Err(Error::SqlParse {
                offset: agg_offset,
                message: format!("{}(*) is not valid; only count(*)", agg.sql_name()),
            });
        }
        self.symbol(')')?;
        self.keyword("OVER")?;
        let window_name = self.ident("a window name")?;
        self.keyword("FROM")?;
        let base_table = self.ident("the base table")?;
        self.keyword("WINDOW")?;
        let def_offset = self.here();
        let defined = self.ident("the window name")?;
        if !defined.eq_ignore_ascii_case(&window_name) {
            return Err(Error::SqlParse {
                offset: def_offset,
                message: format!(
                    "window '{defined}' does not match the one used in OVER ('{window_name}')"
                ),
            });
        }
        self.keyword("AS")?;
        self.symbol('(')?;
        self.keyword("UNION")?;
        let union_table = self.ident("the union (probe) table")?;
        self.keyword("PARTITION")?;
        self.keyword("BY")?;
        let partition_key = self.ident("the partition key column")?;
        self.keyword("ORDER")?;
        self.keyword("BY")?;
        let order_column = self.ident("the order column")?;
        self.keyword("ROWS_RANGE")?;
        self.keyword("BETWEEN")?;
        let preceding = self.bound()?;
        self.keyword("PRECEDING")?;
        self.keyword("AND")?;
        let following = if self.eat_keyword("CURRENT") {
            self.keyword("ROW")?;
            Duration::ZERO
        } else {
            let d = self.bound()?;
            self.keyword("FOLLOWING")?;
            d
        };
        let lateness = if self.eat_keyword("LATENESS") {
            self.bound()?
        } else {
            Duration::ZERO
        };
        self.symbol(')')?;
        let _ = self.eat_symbol(';');
        Ok(WindowUnionQuery {
            name,
            agg,
            agg_column,
            window_name,
            base_table,
            union_table,
            partition_key,
            order_column,
            preceding,
            following,
            lateness,
        })
    }

    /// Consumes a `-- name: <ident>` label token if one is next.
    fn eat_label(&mut self) -> Option<String> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Label(n),
                ..
            }) => {
                self.pos += 1;
                Some(n.clone())
            }
            _ => None,
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        matches!(
            self.peek(),
            Some(Token { kind: TokenKind::Symbol(c), .. }) if *c == sym
        ) && {
            self.pos += 1;
            true
        }
    }

    fn end(&mut self) -> Result<()> {
        if let Some(t) = self.peek() {
            return Err(Error::SqlParse {
                offset: t.offset,
                message: "unexpected trailing input".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SQL: &str = "SELECT sum(col2) over w1 FROM S \
        WINDOW w1 AS ( \
        UNION R \
        PARTITION BY key \
        ORDER BY timestamp \
        ROWS_RANGE \
        BETWEEN 1s PRECEDING AND 1s FOLLOWING);";

    #[test]
    fn parses_the_papers_example_verbatim() {
        let q = parse(PAPER_SQL).unwrap();
        assert_eq!(q.agg, AggSpec::Sum);
        assert_eq!(q.agg_column, "col2");
        assert_eq!(q.base_table, "S");
        assert_eq!(q.union_table, "R");
        assert_eq!(q.partition_key, "key");
        assert_eq!(q.order_column, "timestamp");
        assert_eq!(q.preceding, Duration::from_secs(1));
        assert_eq!(q.following, Duration::from_secs(1));
        assert_eq!(q.lateness, Duration::ZERO);
        let plan = q.to_oij_query().unwrap();
        assert_eq!(plan.window.length(), Duration::from_secs(2));
    }

    #[test]
    fn current_row_means_zero_following() {
        let q = parse(
            "SELECT avg(v) OVER w FROM a WINDOW w AS (UNION b PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 10m PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        assert_eq!(q.agg, AggSpec::Avg);
        assert_eq!(q.preceding, Duration::from_secs(600));
        assert_eq!(q.following, Duration::ZERO);
    }

    #[test]
    fn lateness_extension() {
        let q = parse(
            "SELECT count(*) OVER w FROM a WINDOW w AS (UNION b PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 100ms PRECEDING AND CURRENT ROW LATENESS 10ms)",
        )
        .unwrap();
        assert_eq!(q.agg, AggSpec::Count);
        assert_eq!(q.agg_column, "*");
        assert_eq!(q.lateness, Duration::from_millis(10));
    }

    #[test]
    fn bare_numbers_are_milliseconds() {
        let q = parse(
            "SELECT max(v) OVER w FROM a WINDOW w AS (UNION b PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 1500 PRECEDING AND 500 FOLLOWING)",
        )
        .unwrap();
        assert_eq!(q.preceding, Duration::from_millis(1500));
        assert_eq!(q.following, Duration::from_millis(500));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse(
            "select SUM(x) OVER W1 from s window W1 as (union r partition by k \
             order by t rows_range between 1s preceding and current row)",
        )
        .unwrap();
        assert_eq!(q.agg, AggSpec::Sum);
    }

    #[test]
    fn window_name_mismatch_is_rejected() {
        let err = parse(
            "SELECT sum(x) OVER w1 FROM s WINDOW w2 AS (UNION r PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn star_only_with_count() {
        let err = parse(
            "SELECT sum(*) OVER w FROM s WINDOW w AS (UNION r PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("count(*)"), "{err}");
    }

    #[test]
    fn unknown_aggregate_is_rejected_with_offset() {
        let err = parse(
            "SELECT median(x) OVER w FROM s WINDOW w AS (UNION r PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
        )
        .unwrap_err();
        match err {
            Error::SqlParse { offset, message } => {
                assert_eq!(offset, 7);
                assert!(message.contains("median"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse(&format!("{PAPER_SQL} extra")).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn multiline_sql_with_semicolon() {
        let q = parse(
            "SELECT sum(col2) OVER w1 FROM S\n\
             WINDOW w1 AS (\n    UNION R\n    PARTITION BY key\n\
             ORDER BY timestamp\n\
             ROWS_RANGE\n    BETWEEN 1s PRECEDING AND 1s FOLLOWING);",
        )
        .unwrap();
        assert_eq!(q.union_table, "R");
    }

    #[test]
    fn zero_bounds_are_allowed() {
        let q = parse(
            "SELECT sum(v) OVER w FROM a WINDOW w AS (UNION b PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 0s PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
        assert_eq!(q.preceding, Duration::ZERO);
        assert!(q.to_oij_query().is_ok());
    }

    #[test]
    fn name_label_is_carried_on_the_plan() {
        let q = parse(&format!("-- name: paper_example\n{PAPER_SQL}")).unwrap();
        assert_eq!(q.name.as_deref(), Some("paper_example"));
        // Round trip: the label survives to_sql → parse.
        assert_eq!(parse(&q.to_sql()).unwrap(), q);
        // Unlabelled queries have no name.
        assert_eq!(parse(PAPER_SQL).unwrap().name, None);
    }

    #[test]
    fn parse_many_splits_on_semicolons() {
        let script = format!(
            "-- name: first\n{PAPER_SQL}\n\
             SELECT count(*) OVER w FROM a WINDOW w AS (UNION b PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 100ms PRECEDING AND CURRENT ROW);\n\
             -- name: third\n\
             SELECT avg(v) OVER w FROM a WINDOW w AS (UNION b PARTITION BY k \
             ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)"
        );
        let qs = super::parse_many(&script).unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0].name.as_deref(), Some("first"));
        assert_eq!(qs[1].name, None);
        assert_eq!(qs[2].name.as_deref(), Some("third"));
        assert_eq!(qs[1].agg, AggSpec::Count);
        assert_eq!(qs[2].agg, AggSpec::Avg);
    }

    #[test]
    fn parse_many_accepts_empty_and_rejects_duplicates_and_garbage() {
        assert_eq!(super::parse_many("").unwrap(), vec![]);
        assert_eq!(super::parse_many("-- only a comment\n").unwrap(), vec![]);
        let dup = format!("-- name: a\n{PAPER_SQL}\n-- name: a\n{PAPER_SQL}");
        let err = super::parse_many(&dup).unwrap_err();
        assert!(err.to_string().contains("duplicate query label"), "{err}");
        // A malformed second statement is rejected, not silently dropped.
        assert!(super::parse_many(&format!("{PAPER_SQL} SELECT nonsense")).is_err());
    }

    #[test]
    fn single_parse_rejects_a_second_statement() {
        let err = parse(&format!("{PAPER_SQL}{PAPER_SQL}")).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn missing_pieces_report_position() {
        let err = parse("SELECT sum(x) OVER w FROM s").unwrap_err();
        match err {
            Error::SqlParse { message, .. } => assert!(message.contains("WINDOW"), "{message}"),
            other => panic!("wrong error: {other}"),
        }
    }
}
