//! The parsed query plan.

use oij_common::{AggSpec, Duration, OijQuery, Result};
use serde::{Deserialize, Serialize};

/// A parsed OpenMLDB window-union query — the SQL form of one online
/// interval join (paper §II-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowUnionQuery {
    /// Optional query label from a leading `-- name: <ident>` comment.
    /// The serving runtime uses it to address registered queries; absent
    /// (and irrelevant) for one-shot `oij run` invocations.
    #[serde(default)]
    pub name: Option<String>,
    /// The aggregation function (`sum`, `count`, `avg`, `min`, `max`).
    pub agg: AggSpec,
    /// Column the aggregate reads (`col2` in the paper's example). `*` is
    /// recorded as `"*"` and only valid for `count`.
    pub agg_column: String,
    /// The window name after `OVER`.
    pub window_name: String,
    /// The base table/stream `S` (`FROM …`).
    pub base_table: String,
    /// The probe table/stream `R` (`UNION …`).
    pub union_table: String,
    /// The join key column (`PARTITION BY …`).
    pub partition_key: String,
    /// The event-time column (`ORDER BY …`).
    pub order_column: String,
    /// `PRE`: the `… PRECEDING` bound.
    pub preceding: Duration,
    /// `FOL`: the `… FOLLOWING` bound (zero for `CURRENT ROW`).
    pub following: Duration,
    /// The `LATENESS …` extension (zero when absent).
    pub lateness: Duration,
}

impl WindowUnionQuery {
    /// Lowers the plan to an engine-ready [`OijQuery`] (eager emission).
    pub fn to_oij_query(&self) -> Result<OijQuery> {
        OijQuery::builder()
            .preceding(self.preceding)
            .following(self.following)
            .lateness(self.lateness)
            .agg(self.agg)
            .build()
    }

    /// Renders the plan back to canonical SQL text. `parse(q.to_sql())`
    /// reproduces `q` (round-trip property-tested).
    pub fn to_sql(&self) -> String {
        let mut sql = String::new();
        if let Some(name) = &self.name {
            sql.push_str(&format!("-- name: {name}\n"));
        }
        sql += &format!(
            "SELECT {}({}) OVER {} FROM {} WINDOW {} AS (UNION {} PARTITION BY {}              ORDER BY {} ROWS_RANGE BETWEEN {} PRECEDING AND ",
            self.agg.sql_name(),
            self.agg_column,
            self.window_name,
            self.base_table,
            self.window_name,
            self.union_table,
            self.partition_key,
            self.order_column,
            fmt_duration(self.preceding),
        );
        if self.following == Duration::ZERO {
            sql.push_str("CURRENT ROW");
        } else {
            sql.push_str(&fmt_duration(self.following));
            sql.push_str(" FOLLOWING");
        }
        if self.lateness != Duration::ZERO {
            sql.push_str(" LATENESS ");
            sql.push_str(&fmt_duration(self.lateness));
        }
        sql.push(')');
        sql
    }
}

/// Formats a duration as the shortest exact SQL literal (`2s`, `15ms`,
/// `7us`).
fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us != 0 && us % 1_000_000 == 0 {
        format!("{}s", us / 1_000_000)
    } else if us != 0 && us % 1_000 == 0 {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_carries_all_window_fields() {
        let q = WindowUnionQuery {
            name: None,
            agg: AggSpec::Avg,
            agg_column: "price".into(),
            window_name: "w".into(),
            base_table: "s".into(),
            union_table: "r".into(),
            partition_key: "k".into(),
            order_column: "ts".into(),
            preceding: Duration::from_secs(2),
            following: Duration::from_millis(5),
            lateness: Duration::from_micros(7),
        };
        let plan = q.to_oij_query().unwrap();
        assert_eq!(plan.agg, AggSpec::Avg);
        assert_eq!(plan.window.preceding, Duration::from_secs(2));
        assert_eq!(plan.window.following, Duration::from_millis(5));
        assert_eq!(plan.window.lateness, Duration::from_micros(7));
    }
}
