//! Jiffy-lite backend: immutable sorted runs with whole-batch publication.
//!
//! lint: hot_path
//!
//! Adapted from Jiffy's batched lock-free skip list (PAPERS.md) to the
//! SWMR setting the engines run in. Layer 1 reuses the paper's SWMR skip
//! list to map `key → Arc<JiffyShared>`; the per-key second layer is
//! **not** a linked structure at all but a set of immutable sorted
//! *runs* (each sorted by `(ts, seq)`), published atomically through an
//! [`RcuCell`]. The writer appends into a copy-on-write tail run and
//! seals it at [`RUN_SEAL`] entries; `insert_batch` consumes a whole
//! coalesced `Msg::Batch` run and performs **one** publication per
//! touched key — the Jiffy batching idea. Readers pay O(1) for a
//! snapshot (`RcuCell::load`) and then a k-way merge over the few runs
//! that overlap the probe window.
//!
//! Eviction compacts: survivors of `evict_below` are merged into a
//! single fresh run, so run count stays proportional to the live window
//! rather than the stream length.
//!
//! The SWMR/stamp contract is identical to the time-travel index: run
//! sets are published *before* the `max_ts`/`late_inserts` stamps
//! (`Release` stores paired with readers' `Acquire` loads), so a stamp
//! observation implies the tuple that caused it is findable.

use std::collections::HashMap;
use std::sync::Arc;

use oij_common::{Key, Timestamp, Tuple, Window};
use oij_skiplist::{RcuCell, Reader, SwmrSkipList, Writer};

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use crate::{OijIndex, OijIndexReader, OijIndexWriter};

/// Second-layer key: event timestamp plus the per-index dense sequence
/// number, so tuples with identical timestamps coexist and every scan
/// has one deterministic order.
type TsKey = (Timestamp, u64);
type Entry = (TsKey, Tuple);
type Run = Arc<Vec<Entry>>;

/// A tail run is sealed (made immutable forever) once it reaches this
/// many entries; appends then open a fresh tail. Bounds the
/// copy-on-write cost of a single-tuple publication.
const RUN_SEAL: usize = 32;

/// The published snapshot of one key's series.
struct RunSet {
    runs: Vec<Run>,
    live: usize,
}

/// Per-key state published through layer 1.
struct JiffyShared {
    runs: RcuCell<RunSet>,
    late_inserts: AtomicU64,
    /// Largest inserted timestamp (µs; `i64::MIN` when empty); published
    /// by the writer after the run set that contains it.
    max_ts: AtomicI64,
}

/// Factory for the Jiffy-lite index.
pub struct JiffyIndex;

impl JiffyIndex {
    /// Creates an empty index, returning the unique writer and an
    /// initial reader handle.
    #[allow(clippy::new_ret_no_self)] // factory type: handles ARE the API
    pub fn new() -> (JiffyWriter, JiffyReader) {
        Self::with_seed(0xC0FF_EE11_D00D_F00D)
    }

    /// Creates an empty index with a deterministic layer-1 height seed.
    pub fn with_seed(seed: u64) -> (JiffyWriter, JiffyReader) {
        <Self as OijIndex>::with_seed(seed)
    }
}

impl OijIndex for JiffyIndex {
    type Writer = JiffyWriter;
    type Reader = JiffyReader;

    fn with_seed(seed: u64) -> (JiffyWriter, JiffyReader) {
        let (kw, kr) = SwmrSkipList::with_seed::<Key, Arc<JiffyShared>>(seed);
        (
            JiffyWriter {
                keys: kw,
                series: HashMap::new(),
                next_seq: 0,
                len: 0,
            },
            JiffyReader { keys: kr },
        )
    }
}

/// Writer-private per-key state: the mirror of the published run set
/// (tail mutated copy-on-write via [`Arc::make_mut`]) plus the staging
/// bookkeeping `insert_batch` uses to defer publication.
struct JiffySeries {
    shared: Arc<JiffyShared>,
    runs: Vec<Run>,
    live: usize,
    max_ts: Timestamp,
    /// Late inserts staged since the last publication.
    staged_late: u64,
    /// Whether `runs`/`max_ts` moved since the last publication.
    dirty: bool,
}

impl JiffySeries {
    /// Appends one entry into the (copy-on-write) tail run, keeping the
    /// run sorted; does NOT publish.
    fn stage(&mut self, entry: Entry, late: bool) {
        match self.runs.last_mut().filter(|r| r.len() < RUN_SEAL) {
            Some(tail) => {
                let tail = Arc::make_mut(tail);
                let pos = tail.partition_point(|e| e.0 <= entry.0);
                tail.insert(pos, entry);
            }
            None => self.runs.push(Arc::new(vec![entry])),
        }
        self.live += 1;
        if late {
            self.staged_late += 1;
        }
        self.dirty = true;
    }

    /// Publishes the staged run set, then the stamps. Order matters: the
    /// run set swap precedes the stamp stores, so a reader that observes
    /// a new stamp can find the tuples behind it.
    fn publish(&mut self) {
        if !self.dirty {
            return;
        }
        self.shared.runs.replace(RunSet {
            runs: self.runs.clone(),
            live: self.live,
        });
        if self.max_ts != Timestamp::MIN {
            // ORDERING: Release — pairs with the Acquire loads in `series_stamp` / `max_ts`: observing the new stamp implies the run set holding the tuple is published.
            self.shared
                .max_ts
                .store(self.max_ts.as_micros(), Ordering::Release);
        }
        if self.staged_late > 0 {
            // ORDERING: Release — pairs with the Acquire counter load in `series_stamp` / `late_inserts`; ordered after the run-set publication above.
            self.shared
                .late_inserts
                .fetch_add(self.staged_late, Ordering::Release);
            self.staged_late = 0;
        }
        self.dirty = false;
    }
}

/// The unique mutating handle of the Jiffy-lite index.
pub struct JiffyWriter {
    /// Layer 1 (shared with readers).
    keys: Writer<Key, Arc<JiffyShared>>,
    series: HashMap<Key, JiffySeries>,
    next_seq: u64,
    len: usize,
}

impl JiffyWriter {
    /// Stages one tuple into its series (creating it on first sight) and
    /// returns `(key, entry address hint)`. Publication is the caller's
    /// responsibility.
    fn stage_inner(&mut self, tuple: Tuple, late_hint: bool) -> Key {
        let key = tuple.key;
        let ts = tuple.ts;
        let seq = self.next_seq;
        self.next_seq += 1;
        let state = self.series.entry(key).or_insert_with(|| {
            let shared = Arc::new(JiffyShared {
                runs: RcuCell::new(RunSet {
                    runs: Vec::new(),
                    live: 0,
                }),
                late_inserts: AtomicU64::new(0),
                max_ts: AtomicI64::new(i64::MIN),
            });
            // Publish the shared state through layer 1 so readers can
            // find the series.
            self.keys.insert(key, Arc::clone(&shared));
            JiffySeries {
                shared,
                runs: Vec::new(),
                live: 0,
                max_ts: Timestamp::MIN,
                staged_late: 0,
                dirty: false,
            }
        });
        // Same lateness rule as the reference backend: a tuple that does
        // not STRICTLY advance the key's maximum counts as late.
        let locally_late = state.max_ts != Timestamp::MIN && ts <= state.max_ts;
        if ts > state.max_ts || state.max_ts == Timestamp::MIN {
            state.max_ts = ts;
        }
        state.stage(((ts, seq), tuple), late_hint || locally_late);
        self.len += 1;
        key
    }

    fn publish_key(&mut self, key: Key) {
        if let Some(state) = self.series.get_mut(&key) {
            state.publish();
        }
    }
}

impl OijIndexWriter for JiffyWriter {
    type Reader = JiffyReader;

    fn node_footprint(&self) -> usize {
        // One run entry: the (ts, seq) key plus the tuple. No tower —
        // runs are contiguous, which is exactly the backend's pitch to
        // the cache simulator.
        std::mem::size_of::<Entry>()
    }

    fn insert_hinted(&mut self, tuple: Tuple, globally_late: bool) {
        let key = self.stage_inner(tuple, globally_late);
        self.publish_key(key);
    }

    fn insert_hinted_traced(&mut self, tuple: Tuple, globally_late: bool) -> usize {
        let ts = tuple.ts;
        let seq = self.next_seq;
        let key = self.stage_inner(tuple, globally_late);
        self.publish_key(key);
        // Report the published entry's address for cache simulation. A
        // staged entry always lands in the tail (last) run.
        self.series
            .get(&key)
            .and_then(|state| state.runs.last())
            .and_then(|run| run.iter().find(|e| e.0 == (ts, seq)))
            .map(|e| e as *const Entry as usize)
            .unwrap_or(0)
    }

    fn insert_batch(&mut self, run: Vec<(Tuple, bool)>) {
        // The Jiffy move: stage the whole coalesced run, then ONE
        // publication per touched key. Sequence numbers and lateness are
        // assigned in arrival order, identical to one-at-a-time inserts.
        let mut touched: Vec<Key> = Vec::with_capacity(4);
        for (tuple, late) in run {
            let key = self.stage_inner(tuple, late);
            if !touched.contains(&key) {
                touched.push(key);
            }
        }
        for key in touched {
            self.publish_key(key);
        }
    }

    fn evict_below(&mut self, bound: Timestamp) -> usize {
        let limit: TsKey = (bound, 0u64);
        let mut total = 0usize;
        for state in self.series.values_mut() {
            // A run's first entry is its minimum; if no run dips below
            // the bound there is nothing to evict for this key.
            let needs = state
                .runs
                .iter()
                .any(|r| r.first().is_some_and(|e| e.0 < limit));
            if !needs {
                continue;
            }
            // Compact: merge the survivors into one fresh sorted run.
            let mut merged: Vec<Entry> = Vec::new();
            merge_in_range(
                &state.runs,
                limit,
                (Timestamp::MAX, u64::MAX),
                |e: &Entry| merged.push(e.clone()),
            );
            let evicted = state.live - merged.len();
            state.live = merged.len();
            state.runs = if merged.is_empty() {
                Vec::new()
            } else {
                vec![Arc::new(merged)]
            };
            state.dirty = true;
            state.publish();
            total += evicted;
        }
        self.len -= total;
        total
    }

    fn reader(&self) -> JiffyReader {
        JiffyReader {
            keys: self.keys.reader(),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn key_count(&self) -> usize {
        self.series.len()
    }
}

/// A cloneable read handle over the Jiffy-lite index.
pub struct JiffyReader {
    keys: Reader<Key, Arc<JiffyShared>>,
}

impl Clone for JiffyReader {
    fn clone(&self) -> Self {
        JiffyReader {
            keys: self.keys.clone(),
        }
    }
}

impl OijIndexReader for JiffyReader {
    fn scan_window_addr(&self, key: Key, window: Window, f: impl FnMut(&Tuple, usize)) -> usize {
        self.scan_ts_range_addr(key, window.start, window.end, f)
    }

    fn scan_ts_range_addr(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&Tuple, usize),
    ) -> usize {
        if hi < lo {
            return 0;
        }
        self.keys
            .get_with(&key, |shared| {
                // O(1) snapshot; the Arc keeps every run alive for the
                // duration of the merge regardless of concurrent
                // publications.
                let snap = shared.runs.load();
                merge_in_range(&snap.runs, (lo, 0u64), (hi, u64::MAX), |e: &Entry| {
                    f(&e.1, e as *const Entry as usize)
                })
            })
            .unwrap_or(0)
    }

    fn scan_window_seq(&self, key: Key, window: Window, mut f: impl FnMut(&Tuple, u64)) -> usize {
        if window.end < window.start {
            return 0;
        }
        self.keys
            .get_with(&key, |shared| {
                let snap = shared.runs.load();
                merge_in_range(
                    &snap.runs,
                    (window.start, 0u64),
                    (window.end, u64::MAX),
                    |e: &Entry| f(&e.1, e.0 .1),
                )
            })
            .unwrap_or(0)
    }

    fn key_len(&self, key: Key) -> usize {
        self.keys
            .get_with(&key, |shared| shared.runs.load().live)
            .unwrap_or(0)
    }

    fn late_inserts(&self, key: Key) -> u64 {
        // ORDERING: Acquire — pairs with the Release `fetch_add` in `publish`, so the count covers every published late entry.
        self.keys
            .get_with(&key, |shared| shared.late_inserts.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    fn series_stamp(&self, key: Key) -> (u64, i64) {
        self.keys
            .get_with(&key, |shared| {
                // Counter first: a concurrent in-order publication then
                // at worst shows a newer max with an old counter, which
                // incremental validation treats conservatively.
                // ORDERING: Acquire — counter first; pairs with the Release `fetch_add` in `publish` (conservative stamp; see comment).
                let late = shared.late_inserts.load(Ordering::Acquire);
                // ORDERING: Acquire — pairs with the Release `max_ts` store in `publish`: the new stamp implies the run set is visible.
                let max = shared.max_ts.load(Ordering::Acquire);
                (late, max)
            })
            .unwrap_or((0, i64::MIN))
    }

    fn has_key(&self, key: Key) -> bool {
        self.keys.contains(&key)
    }

    fn key_count(&self) -> usize {
        self.keys.len()
    }
}

/// k-way merge over sorted runs, visiting every entry with
/// `lo ≤ entry.0 ≤ hi` in `(ts, seq)` order. Returns the number visited.
///
/// Runs whose span misses `[lo, hi]` never get a cursor, and cursors are
/// dropped the moment they run past `hi`: a windowed probe pays for the
/// few runs its window overlaps, not for the key's whole retained
/// history (between evictions a hot key accumulates many sealed runs,
/// and an all-runs peek loop per emitted entry turns scanning
/// quadratic).
fn merge_in_range(runs: &[Run], lo: TsKey, hi: TsKey, mut f: impl FnMut(&Entry)) -> usize {
    let mut cursors: Vec<std::iter::Peekable<std::slice::Iter<'_, Entry>>> = runs
        .iter()
        .filter(|r| {
            r.first().is_some_and(|first| first.0 <= hi) && r.last().is_some_and(|l| l.0 >= lo)
        })
        .map(|r| {
            let start = r.partition_point(|e| e.0 < lo);
            r.get(start..).unwrap_or(&[]).iter().peekable()
        })
        .collect();
    let mut visited = 0usize;
    loop {
        // Runs are sorted: a cursor past `hi` (or exhausted) is done.
        cursors.retain_mut(|c| matches!(c.peek(), Some(e) if e.0 <= hi));
        let mut best: Option<(usize, TsKey)> = None;
        for (i, c) in cursors.iter_mut().enumerate() {
            if let Some(e) = c.peek() {
                if best.is_none_or(|(_, k)| e.0 < k) {
                    best = Some((i, e.0));
                }
            }
        }
        let Some((i, _)) = best else { break };
        if let Some(e) = cursors.get_mut(i).and_then(|c| c.next()) {
            f(e);
            visited += 1;
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: Key, us: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp::from_micros(us), key, v)
    }

    #[test]
    fn runs_seal_and_scans_merge_across_them() {
        let (mut w, r) = JiffyIndex::with_seed(5);
        // Three sealed runs plus a tail, with late arrivals interleaved.
        for i in 0..(3 * RUN_SEAL as i64 + 7) {
            let us = if i % 5 == 0 { i } else { 10_000 + i };
            w.insert(t(1, us, i as f64));
        }
        let mut prev: Option<(i64, f64)> = None;
        let mut n = 0usize;
        r.scan_ts_range(1, Timestamp::MIN, Timestamp::MAX, |tp| {
            let cur = (tp.ts.as_micros(), tp.value);
            if let Some(p) = prev {
                assert!(p.0 <= cur.0, "scan left ts order: {p:?} then {cur:?}");
            }
            prev = Some(cur);
            n += 1;
        });
        assert_eq!(n, 3 * RUN_SEAL + 7);
    }

    #[test]
    fn batch_publishes_once_but_matches_sequential() {
        let (mut wa, ra) = JiffyIndex::with_seed(9);
        let (mut wb, rb) = JiffyIndex::with_seed(9);
        let run: Vec<(Tuple, bool)> = (0..40)
            .map(|i| (t(2, (40 - i) * 10, i as f64), false))
            .collect();
        wa.insert_batch(run.clone());
        for (tuple, late) in run {
            wb.insert_hinted(tuple, late);
        }
        let collect = |r: &JiffyReader| {
            let mut v = Vec::new();
            r.scan_ts_range(2, Timestamp::MIN, Timestamp::MAX, |tp| {
                v.push((tp.ts.as_micros(), tp.value));
            });
            v
        };
        assert_eq!(collect(&ra), collect(&rb));
        assert_eq!(ra.series_stamp(2), rb.series_stamp(2));
        // Every tuple except the first failed to strictly advance max_ts.
        assert_eq!(ra.late_inserts(2), 39);
    }

    #[test]
    fn eviction_compacts_to_a_single_run() {
        let (mut w, r) = JiffyIndex::with_seed(13);
        for i in 0..100i64 {
            w.insert(t(3, i, i as f64));
        }
        let evicted = w.evict_below(Timestamp::from_micros(90));
        assert_eq!(evicted, 90);
        assert_eq!(r.key_len(3), 10);
        let state = w.series.get(&3).unwrap();
        assert_eq!(state.runs.len(), 1);
        let mut seen = Vec::new();
        r.scan_window(
            3,
            Window {
                start: Timestamp::from_micros(0),
                end: Timestamp::from_micros(200),
            },
            |tp| seen.push(tp.ts.as_micros()),
        );
        assert_eq!(seen, (90..100).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_survives_concurrent_publication() {
        let (mut w, r) = JiffyIndex::with_seed(21);
        w.insert(t(4, 10, 1.0));
        let keys = r.keys.clone();
        let snap = keys.get_with(&4, |s| s.runs.load()).unwrap();
        for i in 0..100i64 {
            w.insert(t(4, 20 + i, 2.0));
        }
        w.evict_below(Timestamp::from_micros(100));
        // The old snapshot still sees exactly the pre-publication state.
        assert_eq!(snap.live, 1);
        let mut n = 0;
        merge_in_range(
            &snap.runs,
            (Timestamp::MIN, 0),
            (Timestamp::MAX, u64::MAX),
            |_| n += 1,
        );
        assert_eq!(n, 1);
    }
}
