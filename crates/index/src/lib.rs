//! # oij-index — pluggable SWMR index backends for the join engines
//!
//! The paper's double-layer time-travel skip list
//! ([`oij_skiplist::TimeTravelIndex`]) is the heart of every engine, but
//! it is one point in a design space. This crate extracts its contract
//! into the [`OijIndex`] trait family and races three implementations
//! behind a runtime [`IndexBackend`] selection:
//!
//! * **[`IndexBackend::SkipList`]** — the reference: a 1:1 delegation to
//!   `TimeTravelIndex`, bit-for-bit the behavior the engines shipped
//!   with.
//! * **[`IndexBackend::JiffyLite`]** ([`jiffy`]) — a Jiffy-style design
//!   (PAPERS.md): the writer appends tuples to immutable sorted *runs*
//!   and publishes whole `Msg::Batch` runs with a single lock-free
//!   pointer swap; readers take an O(1) snapshot and merge the runs.
//! * **[`IndexBackend::HintLite`]** ([`hint`]) — a HINT-style design
//!   (PAPERS.md): per-key hierarchical time buckets with a coarse
//!   summary level, so a window probe descends straight to the buckets
//!   that overlap the window.
//!
//! ## The SWMR contract every backend must uphold
//!
//! Exactly **one** thread mutates an index through its writer handle;
//! any number of threads read concurrently through cloneable reader
//! handles. Beyond memory safety, the engines rely on four behavioral
//! invariants (enforced by `tests/index_equivalence.rs` and the
//! differential proptest suite in this crate):
//!
//! 1. **Scan order** — every scan visits tuples in `(ts, seq)` order,
//!    where `seq` is the per-index dense insertion sequence number.
//!    Because all backends assign `seq` identically (increment per
//!    insert, in writer order), scans are bit-identical across
//!    backends for the same insert history.
//! 2. **Stamp-implies-visibility** — `series_stamp` returns
//!    `(late_inserts, max_ts_µs)` with the counter and stamp published
//!    *after* the tuple itself (`Release`/`Acquire`): a reader that
//!    observes a new stamp must be able to find the tuple that caused
//!    it.
//! 3. **Late accounting** — a tuple is late iff the external hint says
//!    so or its timestamp does not strictly advance the key's maximum;
//!    the counter is monotone and never undercounts published tuples.
//! 4. **Eviction bound** — `evict_below(bound)` evicts exactly the
//!    tuples with `ts < bound` and nothing newer; the engines derive
//!    `bound` from the watermark so it never exceeds the durability
//!    retention bound (DESIGN.md §11), which recovery replay depends
//!    on.
//!
//! ## Adding a backend
//!
//! Implement [`OijIndexWriter`] + [`OijIndexReader`] for a new pair of
//! handle types, add an [`IndexBackend`] variant with arms in
//! [`BackendWriter`]/[`BackendReader`], and the backend-differential
//! suites (`tests/index_equivalence.rs`, `tests/differential.rs` here,
//! the `tests/property_equivalence.rs` backend axis) plus the
//! bench-smoke per-backend rows pick it up from `IndexBackend::ALL`.

#![warn(missing_docs)]

pub mod hint;
pub mod jiffy;
pub(crate) mod sync;

use oij_common::{Key, Timestamp, Tuple, Window};
use oij_skiplist::{IndexReader as SkipReader, IndexWriter as SkipWriter, TimeTravelIndex};

pub use hint::{HintIndex, HintReader, HintWriter};
pub use jiffy::{JiffyIndex, JiffyReader, JiffyWriter};

/// The backend selection engines carry in their configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexBackend {
    /// The double-layer time-travel skip list (`TimeTravelIndex`) — the
    /// reference backend and the default.
    #[default]
    SkipList,
    /// Jiffy-style immutable sorted runs with whole-batch publication.
    JiffyLite,
    /// HINT-style hierarchical time buckets for the window-probe path.
    HintLite,
}

impl IndexBackend {
    /// Every backend, reference first — the differential suites iterate
    /// this so a new backend gets coverage for free.
    pub const ALL: [IndexBackend; 3] = [
        IndexBackend::SkipList,
        IndexBackend::JiffyLite,
        IndexBackend::HintLite,
    ];

    /// Stable label used in bench reports, CI matrix legs, and the
    /// `OIJ_INDEX_BACKEND` test filter.
    pub fn label(self) -> &'static str {
        match self {
            IndexBackend::SkipList => "skiplist",
            IndexBackend::JiffyLite => "jiffy-lite",
            IndexBackend::HintLite => "hint-lite",
        }
    }

    /// Parses a [`label`](Self::label) (case-insensitive; `_` and `-`
    /// interchangeable).
    pub fn from_label(s: &str) -> Option<IndexBackend> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        IndexBackend::ALL.into_iter().find(|b| b.label() == norm)
    }

    /// Builds an empty index of this backend with the backend's default
    /// seed, returning the unique writer and an initial reader.
    pub fn build(self) -> (BackendWriter, BackendReader) {
        match self {
            IndexBackend::SkipList => {
                let (w, r) = TimeTravelIndex::new();
                (BackendWriter::SkipList(w), BackendReader::SkipList(r))
            }
            IndexBackend::JiffyLite => {
                let (w, r) = JiffyIndex::new();
                (BackendWriter::Jiffy(w), BackendReader::Jiffy(r))
            }
            IndexBackend::HintLite => {
                let (w, r) = HintIndex::new();
                (BackendWriter::Hint(w), BackendReader::Hint(r))
            }
        }
    }

    /// Builds an empty index with a deterministic structural seed (tower
    /// heights for the skip list; forwarded so identical seeds give
    /// identical layouts run to run).
    pub fn build_with_seed(self, seed: u64) -> (BackendWriter, BackendReader) {
        match self {
            IndexBackend::SkipList => {
                let (w, r) = TimeTravelIndex::with_seed(seed);
                (BackendWriter::SkipList(w), BackendReader::SkipList(r))
            }
            IndexBackend::JiffyLite => {
                let (w, r) = JiffyIndex::with_seed(seed);
                (BackendWriter::Jiffy(w), BackendReader::Jiffy(r))
            }
            IndexBackend::HintLite => {
                let (w, r) = HintIndex::with_seed(seed);
                (BackendWriter::Hint(w), BackendReader::Hint(r))
            }
        }
    }
}

/// Factory half of the index contract: ties a writer/reader pair
/// together and constructs empty indexes.
pub trait OijIndex {
    /// The unique mutating handle.
    type Writer: OijIndexWriter<Reader = Self::Reader>;
    /// The cloneable read handle.
    type Reader: OijIndexReader;

    /// Creates an empty index with a deterministic structural seed.
    fn with_seed(seed: u64) -> (Self::Writer, Self::Reader);
}

/// Writer half of the SWMR index contract (see the crate docs for the
/// invariants). Exactly one thread holds the writer; it is `Send` but
/// deliberately not `Sync`/`Clone`.
pub trait OijIndexWriter: Send {
    /// The reader type [`reader`](Self::reader) hands out.
    type Reader: OijIndexReader;

    /// Approximate in-memory footprint of one stored node, in bytes —
    /// what a window scan actually touches per tuple (drives the cache
    /// simulator with realistic access sizes).
    fn node_footprint(&self) -> usize;

    /// Inserts a tuple with an external *global* lateness hint (the
    /// engine knows the stream-wide maximum timestamp via the
    /// watermark; see `TimeTravelIndex::insert_hinted`).
    fn insert_hinted(&mut self, tuple: Tuple, globally_late: bool);

    /// Like [`insert_hinted`](Self::insert_hinted), additionally
    /// reporting the new node's address for cache-traffic simulation.
    fn insert_hinted_traced(&mut self, tuple: Tuple, globally_late: bool) -> usize;

    /// Inserts a tuple with no external lateness hint.
    fn insert(&mut self, tuple: Tuple) {
        self.insert_hinted(tuple, false);
    }

    /// Consumes a whole coalesced run of `(tuple, late_hint)` pairs in
    /// arrival order. Backends may defer *publication* to one atomic
    /// swap at the end of the run — so callers must not read the index
    /// (nor advance any frontier announcing these tuples) between the
    /// call and its return. Sequence numbers and late accounting are
    /// identical to inserting the run one tuple at a time.
    fn insert_batch(&mut self, run: Vec<(Tuple, bool)>) {
        for (tuple, late) in run {
            self.insert_hinted(tuple, late);
        }
    }

    /// Expires every tuple with `ts < bound` across all keys, returning
    /// the number evicted.
    fn evict_below(&mut self, bound: Timestamp) -> usize;

    /// A reader handle sharing this index.
    fn reader(&self) -> Self::Reader;

    /// Total live tuples.
    fn len(&self) -> usize;

    /// Whether the index holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys ever inserted.
    fn key_count(&self) -> usize;
}

/// Reader half of the SWMR index contract: cloneable, shareable across
/// the virtual team, safe under concurrent writes.
pub trait OijIndexReader: Clone + Send + Sync {
    /// Visits every stored tuple of `key` inside `window` (inclusive
    /// bounds) in `(ts, seq)` order, passing a stable node address for
    /// cache simulation. Returns the number visited.
    fn scan_window_addr(&self, key: Key, window: Window, f: impl FnMut(&Tuple, usize)) -> usize;

    /// Visits every stored tuple of `key` inside `window` in `(ts, seq)`
    /// order. Returns the number visited.
    fn scan_window(&self, key: Key, window: Window, mut f: impl FnMut(&Tuple)) -> usize {
        self.scan_window_addr(key, window, |t, _| f(t))
    }

    /// Visits every stored tuple of `key` inside `window` in `(ts, seq)`
    /// order, passing each tuple's dense per-index insertion sequence
    /// number (invariant 1 in the crate docs: all backends assign `seq`
    /// identically, in writer order). A caller that remembers the
    /// writer's insert count at some instant can filter on `seq < count`
    /// to recover exactly the insert prefix that preceded that instant —
    /// the serving runtime's shared-index visibility bound (DESIGN.md
    /// §13). Returns the number visited (before any caller-side filter).
    fn scan_window_seq(&self, key: Key, window: Window, f: impl FnMut(&Tuple, u64)) -> usize;

    /// Visits every stored tuple of `key` with `lo ≤ ts ≤ hi`; returns 0
    /// when `hi < lo`.
    fn scan_ts_range(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&Tuple),
    ) -> usize {
        self.scan_ts_range_addr(key, lo, hi, |t, _| f(t))
    }

    /// [`scan_ts_range`](Self::scan_ts_range) with node addresses for
    /// cache simulation.
    fn scan_ts_range_addr(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        f: impl FnMut(&Tuple, usize),
    ) -> usize;

    /// Number of live tuples stored under `key` (approximate under
    /// writes).
    fn key_len(&self, key: Key) -> usize;

    /// The key's late-insert counter.
    fn late_inserts(&self, key: Key) -> u64;

    /// The key's validation stamp `(late_inserts, max_ts_µs)`;
    /// `(0, i64::MIN)` when the key is unknown.
    fn series_stamp(&self, key: Key) -> (u64, i64);

    /// Whether `key` has ever been seen by this index.
    fn has_key(&self, key: Key) -> bool;

    /// Number of distinct keys (approximate under writes).
    fn key_count(&self) -> usize;
}

// ---------------------------------------------------------------------
// Reference backend: 1:1 delegation to the time-travel skip list.
// ---------------------------------------------------------------------

/// Marker implementing [`OijIndex`] for the skip-list reference.
pub struct SkipListIndex;

impl OijIndex for SkipListIndex {
    type Writer = SkipWriter;
    type Reader = SkipReader;

    fn with_seed(seed: u64) -> (SkipWriter, SkipReader) {
        TimeTravelIndex::with_seed(seed)
    }
}

impl OijIndexWriter for SkipWriter {
    type Reader = SkipReader;

    fn node_footprint(&self) -> usize {
        SkipWriter::node_footprint()
    }

    fn insert_hinted(&mut self, tuple: Tuple, globally_late: bool) {
        SkipWriter::insert_hinted(self, tuple, globally_late);
    }

    fn insert_hinted_traced(&mut self, tuple: Tuple, globally_late: bool) -> usize {
        SkipWriter::insert_hinted_traced(self, tuple, globally_late)
    }

    fn evict_below(&mut self, bound: Timestamp) -> usize {
        SkipWriter::evict_below(self, bound)
    }

    fn reader(&self) -> SkipReader {
        SkipWriter::reader(self)
    }

    fn len(&self) -> usize {
        SkipWriter::len(self)
    }

    fn key_count(&self) -> usize {
        SkipWriter::key_count(self)
    }
}

impl OijIndexReader for SkipReader {
    fn scan_window_addr(&self, key: Key, window: Window, f: impl FnMut(&Tuple, usize)) -> usize {
        SkipReader::scan_window_addr(self, key, window, f)
    }

    fn scan_window_seq(&self, key: Key, window: Window, f: impl FnMut(&Tuple, u64)) -> usize {
        SkipReader::scan_window_seq(self, key, window, f)
    }

    fn scan_ts_range_addr(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        f: impl FnMut(&Tuple, usize),
    ) -> usize {
        SkipReader::scan_ts_range_addr(self, key, lo, hi, f)
    }

    fn key_len(&self, key: Key) -> usize {
        SkipReader::key_len(self, key)
    }

    fn late_inserts(&self, key: Key) -> u64 {
        SkipReader::late_inserts(self, key)
    }

    fn series_stamp(&self, key: Key) -> (u64, i64) {
        SkipReader::series_stamp(self, key)
    }

    fn has_key(&self, key: Key) -> bool {
        SkipReader::has_key(self, key)
    }

    fn key_count(&self) -> usize {
        SkipReader::key_count(self)
    }
}

// ---------------------------------------------------------------------
// Runtime dispatch: the concrete pair engines hold.
// ---------------------------------------------------------------------

macro_rules! dispatch_writer {
    ($self:ident, $w:ident => $body:expr) => {
        match $self {
            BackendWriter::SkipList($w) => $body,
            BackendWriter::Jiffy($w) => $body,
            BackendWriter::Hint($w) => $body,
        }
    };
}

macro_rules! dispatch_reader {
    ($self:ident, $r:ident => $body:expr) => {
        match $self {
            BackendReader::SkipList($r) => $body,
            BackendReader::Jiffy($r) => $body,
            BackendReader::Hint($r) => $body,
        }
    };
}

/// Runtime-dispatched writer over the three backends. Built via
/// [`IndexBackend::build_with_seed`]; implements [`OijIndexWriter`] by
/// delegation, so engines stay backend-agnostic.
pub enum BackendWriter {
    /// Time-travel skip list (reference).
    SkipList(SkipWriter),
    /// Jiffy-lite sorted runs.
    Jiffy(JiffyWriter),
    /// HINT-lite bucket hierarchy.
    Hint(HintWriter),
}

impl BackendWriter {
    /// Which backend this writer is.
    pub fn backend(&self) -> IndexBackend {
        match self {
            BackendWriter::SkipList(_) => IndexBackend::SkipList,
            BackendWriter::Jiffy(_) => IndexBackend::JiffyLite,
            BackendWriter::Hint(_) => IndexBackend::HintLite,
        }
    }
}

impl OijIndexWriter for BackendWriter {
    type Reader = BackendReader;

    fn node_footprint(&self) -> usize {
        dispatch_writer!(self, w => w.node_footprint())
    }

    fn insert_hinted(&mut self, tuple: Tuple, globally_late: bool) {
        dispatch_writer!(self, w => w.insert_hinted(tuple, globally_late))
    }

    fn insert_hinted_traced(&mut self, tuple: Tuple, globally_late: bool) -> usize {
        dispatch_writer!(self, w => w.insert_hinted_traced(tuple, globally_late))
    }

    fn insert_batch(&mut self, run: Vec<(Tuple, bool)>) {
        dispatch_writer!(self, w => w.insert_batch(run))
    }

    fn evict_below(&mut self, bound: Timestamp) -> usize {
        dispatch_writer!(self, w => w.evict_below(bound))
    }

    fn reader(&self) -> BackendReader {
        match self {
            BackendWriter::SkipList(w) => BackendReader::SkipList(w.reader()),
            BackendWriter::Jiffy(w) => BackendReader::Jiffy(OijIndexWriter::reader(w)),
            BackendWriter::Hint(w) => BackendReader::Hint(OijIndexWriter::reader(w)),
        }
    }

    fn len(&self) -> usize {
        dispatch_writer!(self, w => OijIndexWriter::len(w))
    }

    fn key_count(&self) -> usize {
        dispatch_writer!(self, w => OijIndexWriter::key_count(w))
    }
}

/// Runtime-dispatched reader over the three backends.
pub enum BackendReader {
    /// Time-travel skip list (reference).
    SkipList(SkipReader),
    /// Jiffy-lite sorted runs.
    Jiffy(JiffyReader),
    /// HINT-lite bucket hierarchy.
    Hint(HintReader),
}

impl Clone for BackendReader {
    fn clone(&self) -> Self {
        match self {
            BackendReader::SkipList(r) => BackendReader::SkipList(r.clone()),
            BackendReader::Jiffy(r) => BackendReader::Jiffy(r.clone()),
            BackendReader::Hint(r) => BackendReader::Hint(r.clone()),
        }
    }
}

impl OijIndexReader for BackendReader {
    fn scan_window_addr(&self, key: Key, window: Window, f: impl FnMut(&Tuple, usize)) -> usize {
        dispatch_reader!(self, r => r.scan_window_addr(key, window, f))
    }

    fn scan_window_seq(&self, key: Key, window: Window, f: impl FnMut(&Tuple, u64)) -> usize {
        dispatch_reader!(self, r => r.scan_window_seq(key, window, f))
    }

    fn scan_ts_range_addr(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        f: impl FnMut(&Tuple, usize),
    ) -> usize {
        dispatch_reader!(self, r => r.scan_ts_range_addr(key, lo, hi, f))
    }

    fn key_len(&self, key: Key) -> usize {
        dispatch_reader!(self, r => r.key_len(key))
    }

    fn late_inserts(&self, key: Key) -> u64 {
        dispatch_reader!(self, r => r.late_inserts(key))
    }

    fn series_stamp(&self, key: Key) -> (u64, i64) {
        dispatch_reader!(self, r => r.series_stamp(key))
    }

    fn has_key(&self, key: Key) -> bool {
        dispatch_reader!(self, r => r.has_key(key))
    }

    fn key_count(&self) -> usize {
        dispatch_reader!(self, r => r.key_count())
    }
}

// ---------------------------------------------------------------------
// Exclusive: mutable-only sharing for !Sync writers behind a lock.
// ---------------------------------------------------------------------

/// A cell that is `Sync` for any `Send` payload by refusing all shared
/// access to it (the `std::sync::Exclusive` pattern, reproduced here
/// because the workspace MSRV predates its stabilization being usable).
///
/// The OpenMLDB baseline keeps its shared store behind an `RwLock`; a
/// [`BackendWriter`] is deliberately `!Sync` (single writer), so the
/// lock alone cannot make it shareable. Wrapping it in `Exclusive`
/// restores `Sync` soundly: the only way to touch the payload is
/// [`get_mut`](Self::get_mut), which requires `&mut self` and therefore
/// the write lock — concurrent `&Exclusive` references can do nothing.
pub struct Exclusive<T> {
    inner: T,
}

// SAFETY: `Exclusive` exposes no `&self` access to `inner` — every path
// to the payload goes through `&mut self` (`get_mut`) or ownership
// (`into_inner`), so shared references across threads cannot touch `T`
// and `T: Send` suffices.
unsafe impl<T: Send> Sync for Exclusive<T> {}

impl<T> Exclusive<T> {
    /// Wraps a value.
    pub fn new(inner: T) -> Self {
        Exclusive { inner }
    }

    /// Mutable access — the only access. Requires exclusivity, which the
    /// caller proves by holding `&mut` (e.g. a write-lock guard).
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::Duration;

    fn t(key: Key, us: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp::from_micros(us), key, v)
    }

    #[test]
    fn labels_round_trip() {
        for b in IndexBackend::ALL {
            assert_eq!(IndexBackend::from_label(b.label()), Some(b));
        }
        assert_eq!(
            IndexBackend::from_label("JIFFY_LITE"),
            Some(IndexBackend::JiffyLite)
        );
        assert_eq!(IndexBackend::from_label("nope"), None);
    }

    #[test]
    fn every_backend_scans_in_ts_seq_order() {
        for backend in IndexBackend::ALL {
            let (mut w, r) = backend.build_with_seed(0x9E37_79B9 | 1);
            w.insert(t(7, 30, 3.0));
            w.insert(t(7, 10, 1.0));
            w.insert(t(7, 30, 4.0)); // duplicate ts: seq breaks the tie
            w.insert(t(7, 20, 2.0));
            let mut seen = Vec::new();
            let visited = r.scan_window(
                7,
                Window {
                    start: Timestamp::from_micros(0),
                    end: Timestamp::from_micros(100),
                },
                |tp| seen.push((tp.ts.as_micros(), tp.value)),
            );
            assert_eq!(visited, 4, "{}", backend.label());
            assert_eq!(
                seen,
                vec![(10, 1.0), (20, 2.0), (30, 3.0), (30, 4.0)],
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn every_backend_exposes_dense_insert_seq() {
        for backend in IndexBackend::ALL {
            let (mut w, r) = backend.build_with_seed(0xC0FFEE);
            // Interleave keys: seq is dense over the *index*, not per key.
            w.insert(t(1, 30, 3.0)); // seq 0
            w.insert(t(2, 5, 9.0)); // seq 1
            w.insert(t(1, 10, 1.0)); // seq 2
            w.insert(t(1, 30, 4.0)); // seq 3 (duplicate ts: seq breaks tie)
            let win = Window {
                start: Timestamp::from_micros(0),
                end: Timestamp::from_micros(100),
            };
            let mut seen = Vec::new();
            let visited = r.scan_window_seq(1, win, |tp, seq| {
                seen.push((tp.ts.as_micros(), seq, tp.value));
            });
            assert_eq!(visited, 3, "{}", backend.label());
            assert_eq!(
                seen,
                vec![(10, 2, 1.0), (30, 0, 3.0), (30, 3, 4.0)],
                "{}",
                backend.label()
            );
            // A prefix filter on seq reproduces the state after the
            // first two inserts exactly.
            let mut prefix = Vec::new();
            r.scan_window_seq(1, win, |tp, seq| {
                if seq < 2 {
                    prefix.push((tp.ts.as_micros(), tp.value));
                }
            });
            assert_eq!(prefix, vec![(30, 3.0)], "{}", backend.label());
            // Inverted windows visit nothing.
            let none = r.scan_window_seq(
                1,
                Window {
                    start: Timestamp::from_micros(10),
                    end: Timestamp::from_micros(5),
                },
                |_, _| panic!("inverted window must not visit"),
            );
            assert_eq!(none, 0, "{}", backend.label());
        }
    }

    #[test]
    fn every_backend_accounts_late_inserts() {
        for backend in IndexBackend::ALL {
            let (mut w, r) = backend.build_with_seed(3);
            w.insert(t(1, 100, 1.0));
            w.insert(t(1, 50, 2.0)); // locally late
            w.insert_hinted(t(1, 200, 3.0), true); // globally late hint
            assert_eq!(r.late_inserts(1), 2, "{}", backend.label());
            assert_eq!(r.series_stamp(1), (2, 200), "{}", backend.label());
            assert_eq!(r.series_stamp(99), (0, i64::MIN), "{}", backend.label());
        }
    }

    #[test]
    fn every_backend_evicts_below_bound_exactly() {
        for backend in IndexBackend::ALL {
            let (mut w, r) = backend.build_with_seed(11);
            for us in [10, 20, 30, 40] {
                w.insert(t(5, us, us as f64));
            }
            let evicted = w.evict_below(Timestamp::from_micros(30));
            assert_eq!(evicted, 2, "{}", backend.label());
            assert_eq!(OijIndexWriter::len(&w), 2, "{}", backend.label());
            let mut left = Vec::new();
            r.scan_ts_range(5, Timestamp::MIN, Timestamp::MAX, |tp| {
                left.push(tp.ts.as_micros());
            });
            assert_eq!(left, vec![30, 40], "{}", backend.label());
        }
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let run: Vec<(Tuple, bool)> = vec![
            (t(1, 10, 1.0), false),
            (t(2, 5, 2.0), true),
            (t(1, 8, 3.0), false),
            (t(1, 12, 4.0), false),
        ];
        for backend in IndexBackend::ALL {
            let (mut wa, ra) = backend.build_with_seed(77);
            let (mut wb, rb) = backend.build_with_seed(77);
            wa.insert_batch(run.clone());
            for (tuple, late) in run.clone() {
                wb.insert_hinted(tuple, late);
            }
            for key in [1u64, 2] {
                let collect = |r: &BackendReader| {
                    let mut v = Vec::new();
                    r.scan_ts_range(key, Timestamp::MIN, Timestamp::MAX, |tp| {
                        v.push((tp.ts.as_micros(), tp.value));
                    });
                    v
                };
                assert_eq!(collect(&ra), collect(&rb), "{} key {key}", backend.label());
                assert_eq!(
                    ra.series_stamp(key),
                    rb.series_stamp(key),
                    "{} key {key}",
                    backend.label()
                );
            }
        }
    }

    #[test]
    fn window_spec_duration_smoke() {
        // Keep the oij-common dev-surface exercised from this crate too.
        let w = Window {
            start: Timestamp::from_micros(0),
            end: Timestamp::from_micros(10),
        };
        assert_eq!(w.length(), Duration(10));
    }
}
