//! HINT-lite backend: hierarchical time buckets for the probe path.
//!
//! lint: hot_path
//!
//! Adapted from HINT's hierarchical main-memory interval index
//! (PAPERS.md) to the point-event, SWMR setting the engines run in.
//! Layer 1 reuses the paper's SWMR skip list to map
//! `key → Arc<HintShared>`; the per-key second layer partitions event
//! time into fixed-width leaf buckets of `2^BUCKET_SHIFT` µs (entries
//! inside a bucket sorted by `(ts, seq)`) and keeps one coarser summary
//! level grouping `2^GROUP_SHIFT` consecutive leaves. A window probe
//! descends the hierarchy: whole groups outside the probed bucket range
//! are skipped with one comparison, then only the leaf buckets that
//! overlap the window are visited, with the two boundary buckets
//! binary-searched. HINT proper stores intervals in logarithmically many
//! levels; with point data every tuple lives in exactly one leaf, so the
//! hierarchy degenerates to this two-level directory — documented
//! honestly in DESIGN.md.
//!
//! Snapshots are published through an [`RcuCell`] (one swap per insert,
//! or per touched key for a whole `insert_batch` run), with the same
//! stamp discipline as the other backends: run data first, then
//! `max_ts`/`late_inserts` (`Release` paired with readers' `Acquire`).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use oij_common::{Key, Timestamp, Tuple, Window};
use oij_skiplist::{RcuCell, Reader, SwmrSkipList, Writer};

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use crate::{OijIndex, OijIndexReader, OijIndexWriter};

/// Second-layer key: event timestamp plus the per-index dense sequence
/// number (identical tie-break to every other backend).
type TsKey = (Timestamp, u64);
type Entry = (TsKey, Tuple);
type Bucket = Arc<Vec<Entry>>;

/// Leaf buckets cover `2^BUCKET_SHIFT` µs (≈ 4 ms).
const BUCKET_SHIFT: u32 = 12;
/// One summary group spans `2^GROUP_SHIFT` consecutive leaf buckets.
const GROUP_SHIFT: u32 = 3;

/// Leaf-bucket id of a timestamp (arithmetic shift = floor division, so
/// negative timestamps map consistently).
fn bucket_id(ts: Timestamp) -> i64 {
    ts.as_micros() >> BUCKET_SHIFT
}

/// One summary-level group: a contiguous slice of the leaf vector.
struct Group {
    gid: i64,
    /// Index range into `HintSnapshot::leaves`.
    start: usize,
    end: usize,
}

/// The published snapshot of one key's bucket hierarchy.
struct HintSnapshot {
    /// Leaf level, sorted by bucket id.
    leaves: Vec<(i64, Bucket)>,
    /// Summary level over `leaves`, sorted by group id.
    groups: Vec<Group>,
    live: usize,
}

/// Per-key state published through layer 1.
struct HintShared {
    snap: RcuCell<HintSnapshot>,
    late_inserts: AtomicU64,
    /// Largest inserted timestamp (µs; `i64::MIN` when empty); published
    /// by the writer after the snapshot that contains it.
    max_ts: AtomicI64,
}

/// Factory for the HINT-lite index.
pub struct HintIndex;

impl HintIndex {
    /// Creates an empty index, returning the unique writer and an
    /// initial reader handle.
    #[allow(clippy::new_ret_no_self)] // factory type: handles ARE the API
    pub fn new() -> (HintWriter, HintReader) {
        Self::with_seed(0xC0FF_EE11_D00D_F00D)
    }

    /// Creates an empty index with a deterministic layer-1 height seed.
    pub fn with_seed(seed: u64) -> (HintWriter, HintReader) {
        <Self as OijIndex>::with_seed(seed)
    }
}

impl OijIndex for HintIndex {
    type Writer = HintWriter;
    type Reader = HintReader;

    fn with_seed(seed: u64) -> (HintWriter, HintReader) {
        let (kw, kr) = SwmrSkipList::with_seed::<Key, Arc<HintShared>>(seed);
        (
            HintWriter {
                keys: kw,
                series: HashMap::new(),
                next_seq: 0,
                len: 0,
            },
            HintReader { keys: kr },
        )
    }
}

/// Writer-private per-key state: mutable buckets (copy-on-write via
/// [`Arc::make_mut`] so published snapshots stay immutable) plus the
/// staging bookkeeping for deferred batch publication.
struct HintSeries {
    shared: Arc<HintShared>,
    buckets: BTreeMap<i64, Bucket>,
    live: usize,
    max_ts: Timestamp,
    staged_late: u64,
    dirty: bool,
}

impl HintSeries {
    /// Inserts one entry into its leaf bucket, keeping the bucket
    /// sorted; does NOT publish.
    fn stage(&mut self, entry: Entry, late: bool) {
        let id = bucket_id(entry.0 .0);
        let bucket = self.buckets.entry(id).or_default();
        let bucket = Arc::make_mut(bucket);
        let pos = bucket.partition_point(|e| e.0 <= entry.0);
        bucket.insert(pos, entry);
        self.live += 1;
        if late {
            self.staged_late += 1;
        }
        self.dirty = true;
    }

    /// Publishes the hierarchy, then the stamps (data before stamp, as
    /// everywhere).
    fn publish(&mut self) {
        if !self.dirty {
            return;
        }
        let leaves: Vec<(i64, Bucket)> = self
            .buckets
            .iter()
            .map(|(id, b)| (*id, Arc::clone(b)))
            .collect();
        let mut groups: Vec<Group> = Vec::new();
        for (idx, (id, _)) in leaves.iter().enumerate() {
            let gid = id >> GROUP_SHIFT;
            match groups.last_mut() {
                Some(g) if g.gid == gid => g.end = idx + 1,
                _ => groups.push(Group {
                    gid,
                    start: idx,
                    end: idx + 1,
                }),
            }
        }
        self.shared.snap.replace(HintSnapshot {
            leaves,
            groups,
            live: self.live,
        });
        if self.max_ts != Timestamp::MIN {
            // ORDERING: Release — pairs with the Acquire loads in `series_stamp` / `max_ts`: observing the new stamp implies the snapshot holding the tuple is published.
            self.shared
                .max_ts
                .store(self.max_ts.as_micros(), Ordering::Release);
        }
        if self.staged_late > 0 {
            // ORDERING: Release — pairs with the Acquire counter load in `series_stamp` / `late_inserts`; ordered after the snapshot publication above.
            self.shared
                .late_inserts
                .fetch_add(self.staged_late, Ordering::Release);
            self.staged_late = 0;
        }
        self.dirty = false;
    }
}

/// The unique mutating handle of the HINT-lite index.
pub struct HintWriter {
    /// Layer 1 (shared with readers).
    keys: Writer<Key, Arc<HintShared>>,
    series: HashMap<Key, HintSeries>,
    next_seq: u64,
    len: usize,
}

impl HintWriter {
    fn stage_inner(&mut self, tuple: Tuple, late_hint: bool) -> Key {
        let key = tuple.key;
        let ts = tuple.ts;
        let seq = self.next_seq;
        self.next_seq += 1;
        let state = self.series.entry(key).or_insert_with(|| {
            let shared = Arc::new(HintShared {
                snap: RcuCell::new(HintSnapshot {
                    leaves: Vec::new(),
                    groups: Vec::new(),
                    live: 0,
                }),
                late_inserts: AtomicU64::new(0),
                max_ts: AtomicI64::new(i64::MIN),
            });
            self.keys.insert(key, Arc::clone(&shared));
            HintSeries {
                shared,
                buckets: BTreeMap::new(),
                live: 0,
                max_ts: Timestamp::MIN,
                staged_late: 0,
                dirty: false,
            }
        });
        let locally_late = state.max_ts != Timestamp::MIN && ts <= state.max_ts;
        if ts > state.max_ts || state.max_ts == Timestamp::MIN {
            state.max_ts = ts;
        }
        state.stage(((ts, seq), tuple), late_hint || locally_late);
        self.len += 1;
        key
    }

    fn publish_key(&mut self, key: Key) {
        if let Some(state) = self.series.get_mut(&key) {
            state.publish();
        }
    }
}

impl OijIndexWriter for HintWriter {
    type Reader = HintReader;

    fn node_footprint(&self) -> usize {
        // One bucket entry: the (ts, seq) key plus the tuple; buckets
        // are contiguous vectors.
        std::mem::size_of::<Entry>()
    }

    fn insert_hinted(&mut self, tuple: Tuple, globally_late: bool) {
        let key = self.stage_inner(tuple, globally_late);
        self.publish_key(key);
    }

    fn insert_hinted_traced(&mut self, tuple: Tuple, globally_late: bool) -> usize {
        let ts = tuple.ts;
        let seq = self.next_seq;
        let key = self.stage_inner(tuple, globally_late);
        self.publish_key(key);
        self.series
            .get(&key)
            .and_then(|state| state.buckets.get(&bucket_id(ts)))
            .and_then(|bucket| bucket.iter().find(|e| e.0 == (ts, seq)))
            .map(|e| e as *const Entry as usize)
            .unwrap_or(0)
    }

    fn insert_batch(&mut self, run: Vec<(Tuple, bool)>) {
        let mut touched: Vec<Key> = Vec::with_capacity(4);
        for (tuple, late) in run {
            let key = self.stage_inner(tuple, late);
            if !touched.contains(&key) {
                touched.push(key);
            }
        }
        for key in touched {
            self.publish_key(key);
        }
    }

    fn evict_below(&mut self, bound: Timestamp) -> usize {
        let bound_bucket = bucket_id(bound);
        let limit: TsKey = (bound, 0u64);
        let mut total = 0usize;
        for state in self.series.values_mut() {
            let mut evicted = 0usize;
            // Whole leaves strictly below the boundary bucket go in one
            // O(1) drop each — the hierarchy's eviction advantage.
            let keep = state.buckets.split_off(&bound_bucket);
            for (_, bucket) in std::mem::replace(&mut state.buckets, keep) {
                evicted += bucket.len();
            }
            // The boundary bucket straddles the bound: filter in place —
            // but only when its minimum actually dips below the limit,
            // so a no-op eviction tick doesn't deep-copy the (snapshot-
            // shared) bucket via make_mut.
            if let Some(bucket) = state
                .buckets
                .get_mut(&bound_bucket)
                .filter(|b| b.first().is_some_and(|e| e.0 < limit))
            {
                let bucket = Arc::make_mut(bucket);
                let before = bucket.len();
                bucket.retain(|e| e.0 >= limit);
                evicted += before - bucket.len();
            }
            if evicted > 0 {
                state.live -= evicted;
                state.dirty = true;
                state.publish();
                total += evicted;
            }
        }
        self.len -= total;
        total
    }

    fn reader(&self) -> HintReader {
        HintReader {
            keys: self.keys.reader(),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn key_count(&self) -> usize {
        self.series.len()
    }
}

/// A cloneable read handle over the HINT-lite index.
pub struct HintReader {
    keys: Reader<Key, Arc<HintShared>>,
}

impl Clone for HintReader {
    fn clone(&self) -> Self {
        HintReader {
            keys: self.keys.clone(),
        }
    }
}

impl HintReader {
    /// The shared scan body: visits every entry of `key` with
    /// `lo ≤ ts ≤ hi` in `(ts, seq)` order. Both public scan shapes
    /// (address-reporting and seq-reporting) project from the `Entry`
    /// this hands out.
    fn for_each_entry_in(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&Entry),
    ) -> usize {
        if hi < lo {
            return 0;
        }
        let (blo, bhi) = (bucket_id(lo), bucket_id(hi));
        let (glo, ghi) = (blo >> GROUP_SHIFT, bhi >> GROUP_SHIFT);
        let lo_key: TsKey = (lo, 0u64);
        let hi_key: TsKey = (hi, u64::MAX);
        self.keys
            .get_with(&key, |shared| {
                let snap = shared.snap.load();
                let mut visited = 0usize;
                // Descend: prune whole summary groups, then walk only
                // the overlapping leaves.
                for group in &snap.groups {
                    if group.gid < glo {
                        continue;
                    }
                    if group.gid > ghi {
                        break;
                    }
                    for (id, bucket) in snap.leaves.get(group.start..group.end).unwrap_or(&[]) {
                        if *id < blo {
                            continue;
                        }
                        if *id > bhi {
                            break;
                        }
                        // Interior buckets are fully covered; boundary
                        // buckets get binary-searched bounds.
                        let start = if *id == blo {
                            bucket.partition_point(|e| e.0 < lo_key)
                        } else {
                            0
                        };
                        for e in bucket.get(start..).unwrap_or(&[]) {
                            if e.0 > hi_key {
                                break;
                            }
                            f(e);
                            visited += 1;
                        }
                    }
                }
                visited
            })
            .unwrap_or(0)
    }
}

impl OijIndexReader for HintReader {
    fn scan_window_addr(&self, key: Key, window: Window, f: impl FnMut(&Tuple, usize)) -> usize {
        self.scan_ts_range_addr(key, window.start, window.end, f)
    }

    fn scan_ts_range_addr(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&Tuple, usize),
    ) -> usize {
        self.for_each_entry_in(key, lo, hi, |e| f(&e.1, e as *const Entry as usize))
    }

    fn scan_window_seq(&self, key: Key, window: Window, mut f: impl FnMut(&Tuple, u64)) -> usize {
        self.for_each_entry_in(key, window.start, window.end, |e| f(&e.1, e.0 .1))
    }

    fn key_len(&self, key: Key) -> usize {
        self.keys
            .get_with(&key, |shared| shared.snap.load().live)
            .unwrap_or(0)
    }

    fn late_inserts(&self, key: Key) -> u64 {
        // ORDERING: Acquire — pairs with the Release `fetch_add` in `publish`, so the count covers every published late entry.
        self.keys
            .get_with(&key, |shared| shared.late_inserts.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    fn series_stamp(&self, key: Key) -> (u64, i64) {
        self.keys
            .get_with(&key, |shared| {
                // Counter first (conservative stamp; see the reference
                // backend's rationale).
                // ORDERING: Acquire — counter first; pairs with the Release `fetch_add` in `publish`.
                let late = shared.late_inserts.load(Ordering::Acquire);
                // ORDERING: Acquire — pairs with the Release `max_ts` store in `publish`: the new stamp implies the snapshot is visible.
                let max = shared.max_ts.load(Ordering::Acquire);
                (late, max)
            })
            .unwrap_or((0, i64::MIN))
    }

    fn has_key(&self, key: Key) -> bool {
        self.keys.contains(&key)
    }

    fn key_count(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: Key, us: i64, v: f64) -> Tuple {
        Tuple::new(Timestamp::from_micros(us), key, v)
    }

    #[test]
    fn probe_touches_only_overlapping_buckets() {
        let (mut w, r) = HintIndex::with_seed(7);
        let width = 1i64 << BUCKET_SHIFT;
        // Spread tuples over many buckets (and several summary groups).
        for i in 0..64i64 {
            w.insert(t(1, i * width, i as f64));
        }
        let mut seen = Vec::new();
        r.scan_ts_range(
            1,
            Timestamp::from_micros(10 * width),
            Timestamp::from_micros(12 * width),
            |tp| seen.push(tp.value as i64),
        );
        assert_eq!(seen, vec![10, 11, 12]);
    }

    #[test]
    fn boundary_buckets_are_filtered_exactly() {
        let (mut w, r) = HintIndex::with_seed(17);
        for us in [5, 10, 15, 20, 25] {
            w.insert(t(2, us, us as f64));
        }
        let mut seen = Vec::new();
        r.scan_ts_range(
            2,
            Timestamp::from_micros(10),
            Timestamp::from_micros(20),
            |tp| seen.push(tp.ts.as_micros()),
        );
        assert_eq!(seen, vec![10, 15, 20]);
    }

    #[test]
    fn eviction_drops_whole_buckets_and_filters_the_boundary() {
        let (mut w, r) = HintIndex::with_seed(23);
        let width = 1i64 << BUCKET_SHIFT;
        for i in 0..10i64 {
            for j in 0..4i64 {
                w.insert(t(3, i * width + j, 0.0));
            }
        }
        // Bound inside bucket 5: buckets 0–4 dropped whole, bucket 5
        // filtered (entries at offsets 0,1 evicted; 2,3 kept).
        let evicted = w.evict_below(Timestamp::from_micros(5 * width + 2));
        assert_eq!(evicted, 5 * 4 + 2);
        assert_eq!(r.key_len(3), 40 - 22);
        let mut first = None;
        r.scan_ts_range(3, Timestamp::MIN, Timestamp::MAX, |tp| {
            first.get_or_insert(tp.ts.as_micros());
        });
        assert_eq!(first, Some(5 * width + 2));
    }

    #[test]
    fn negative_timestamps_bucket_consistently() {
        let (mut w, r) = HintIndex::with_seed(29);
        for us in [-5000, -100, 0, 100, 5000] {
            w.insert(t(4, us, us as f64));
        }
        let mut seen = Vec::new();
        r.scan_ts_range(
            4,
            Timestamp::from_micros(-200),
            Timestamp::from_micros(200),
            |tp| seen.push(tp.ts.as_micros()),
        );
        assert_eq!(seen, vec![-100, 0, 100]);
    }
}
