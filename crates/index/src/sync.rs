//! Facade over the synchronization primitives the index backends use.
//!
//! Mirrors `oij-skiplist`'s `sync` module (see DESIGN.md §8): in the
//! normal configuration `atomic` re-exports `std::sync::atomic`, and
//! under `RUSTFLAGS="--cfg loom"` it re-exports the vendored loom model
//! checker's instrumented atomics, so the Jiffy-lite and HINT-lite
//! backends compile unchanged against either backend. The `cargo xtask
//! lint` rule R2 enforces that every module in this crate imports
//! atomics from here, never `std::sync` directly — otherwise an atomic
//! added in a refactor would silently fall outside loom's view.
//!
//! The backends are lock-free (publication goes through
//! `oij_skiplist::RcuCell` and the SWMR skip list, both already behind
//! their own facade), so no lock re-exports are needed here; R2 bans
//! `std::sync` locks crate-wide, and any future lock must land in this
//! file to inherit the lockdep instrumentation.

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
}

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loom::sync::atomic::{AtomicI64, AtomicU64};
    pub(crate) use std::sync::atomic::Ordering;
}
