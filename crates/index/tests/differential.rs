//! Backend-differential property suite: every `IndexBackend` must be an
//! observationally identical implementation of the `OijIndex` contract.
//!
//! A random operation sequence (hinted inserts, whole-run batch inserts,
//! evictions) is applied to all three backends in lockstep; after every
//! eviction and at the end, every read-side observation must agree
//! **bit-identically** with the skip-list reference:
//!
//! - full-range scans: same `(ts, key, value)` rows in the same order,
//! - windowed scans (`scan_window`, `scan_ts_range`) over random bounds,
//! - per-key `key_len`, `late_inserts`, `series_stamp`,
//! - `len`, `key_count`, and each `evict_below` return value.
//!
//! This also pins the eviction/compaction interaction per backend: runs
//! interleave eviction with further inserts (including re-inserting below
//! previously evicted bounds) so Jiffy's run compaction and HINT's bucket
//! drops are exercised mid-stream, not only on a frozen index.

use oij_common::{Timestamp, Tuple, Window};
use oij_index::{BackendReader, BackendWriter, IndexBackend, OijIndexReader, OijIndexWriter};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// One hinted insert, published immediately.
    Insert { key: u64, ts: i64, hint: bool },
    /// A whole run handed to `insert_batch` (one publish per touched key).
    Batch(Vec<(u64, i64, bool)>),
    /// Evict everything strictly below the bound.
    Evict { bound: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..6, -2_000i64..60_000, any::<bool>())
            .prop_map(|(key, ts, hint)| Op::Insert { key, ts, hint }),
        2 => proptest::collection::vec((0u64..6, -2_000i64..60_000, any::<bool>()), 1..40)
            .prop_map(Op::Batch),
        1 => (-1_000i64..50_000).prop_map(|bound| Op::Evict { bound }),
    ]
}

fn tuple(key: u64, ts: i64) -> Tuple {
    // Value derived from (key, ts) so a row mismatch is self-describing.
    Tuple::new(
        Timestamp::from_micros(ts),
        key,
        (ts as f64) + key as f64 / 8.0,
    )
}

/// Everything a reader can observe about one index, in comparable form.
#[derive(Debug, PartialEq)]
struct Observation {
    len: usize,
    key_count: usize,
    /// Per probed key: (key_len, late_inserts, stamp).
    keys: Vec<(usize, u64, (u64, i64))>,
    /// Full-range rows per probed key: (ts, key, value-bits).
    rows: Vec<Vec<(i64, u64, u64)>>,
    /// Windowed scan rows + counts over the probe windows.
    windowed: Vec<Vec<(i64, u64)>>,
}

fn observe(writer: &BackendWriter, reader: &BackendReader, windows: &[(i64, i64)]) -> Observation {
    let keys = (0u64..6)
        .map(|k| {
            (
                reader.key_len(k),
                reader.late_inserts(k),
                reader.series_stamp(k),
            )
        })
        .collect();
    let rows = (0u64..6)
        .map(|k| {
            let mut rows = Vec::new();
            reader.scan_ts_range(k, Timestamp::MIN, Timestamp::MAX, |t| {
                rows.push((t.ts.as_micros(), t.key, t.value.to_bits()));
            });
            rows
        })
        .collect();
    let windowed = (0u64..6)
        .flat_map(|k| windows.iter().map(move |&(lo, hi)| (k, lo, hi)))
        .map(|(k, lo, hi)| {
            let mut rows = Vec::new();
            let win = Window {
                start: Timestamp::from_micros(lo),
                end: Timestamp::from_micros(hi),
            };
            reader.scan_window(k, win, |t| rows.push((t.ts.as_micros(), t.value.to_bits())));
            rows
        })
        .collect();
    Observation {
        len: writer.len(),
        key_count: writer.key_count(),
        keys,
        rows,
        windowed,
    }
}

fn apply(writer: &mut BackendWriter, op: &Op) -> usize {
    match op {
        Op::Insert { key, ts, hint } => {
            writer.insert_hinted(tuple(*key, *ts), *hint);
            0
        }
        Op::Batch(run) => {
            writer.insert_batch(run.iter().map(|&(k, ts, h)| (tuple(k, ts), h)).collect());
            0
        }
        Op::Evict { bound } => writer.evict_below(Timestamp::from_micros(*bound)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backends_are_observationally_identical(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        windows in proptest::collection::vec((-500i64..40_000, 0i64..20_000), 1..4),
    ) {
        let windows: Vec<(i64, i64)> =
            windows.into_iter().map(|(lo, span)| (lo, lo + span)).collect();
        let (mut ref_w, ref_r) = IndexBackend::SkipList.build_with_seed(7);
        let mut others: Vec<(BackendWriter, BackendReader)> =
            [IndexBackend::JiffyLite, IndexBackend::HintLite]
                .iter()
                .map(|b| b.build_with_seed(7))
                .collect();

        for (step, op) in ops.iter().enumerate() {
            let want_evicted = apply(&mut ref_w, op);
            for (w, _) in others.iter_mut() {
                let got_evicted = apply(w, op);
                prop_assert_eq!(
                    got_evicted, want_evicted,
                    "evict count diverged at step {} ({:?}) on {}",
                    step, op, w.backend().label()
                );
            }
            // Compare after every eviction (the compaction-sensitive
            // moment) and at the end; every step would be O(n^2).
            let last = step + 1 == ops.len();
            if matches!(op, Op::Evict { .. }) || last {
                let want = observe(&ref_w, &ref_r, &windows);
                for (w, r) in others.iter() {
                    let got = observe(w, r, &windows);
                    prop_assert_eq!(
                        &got, &want,
                        "observation diverged at step {} ({:?}) on {}",
                        step, op, w.backend().label()
                    );
                }
            }
        }
    }

    #[test]
    fn eviction_bound_is_exact_per_backend(
        inserts in proptest::collection::vec((0u64..4, 0i64..10_000), 1..80),
        bound in 0i64..12_000,
    ) {
        // `evict_below(b)` must drop exactly the tuples with `ts < b` —
        // the same bound the durability layer uses for WAL retention, so
        // an off-by-one here silently breaks crash recovery.
        for backend in IndexBackend::ALL {
            let (mut w, r) = backend.build();
            for &(k, ts) in &inserts {
                w.insert(tuple(k, ts));
            }
            let below = inserts.iter().filter(|&&(_, ts)| ts < bound).count();
            let evicted = w.evict_below(Timestamp::from_micros(bound));
            prop_assert_eq!(evicted, below, "backend {}", backend.label());
            prop_assert_eq!(w.len(), inserts.len() - below, "backend {}", backend.label());
            let mut seen_below = 0usize;
            for k in 0u64..4 {
                r.scan_ts_range(k, Timestamp::MIN, Timestamp::MAX, |t| {
                    if t.ts.as_micros() < bound {
                        seen_below += 1;
                    }
                });
            }
            prop_assert_eq!(seen_below, 0, "backend {}", backend.label());
        }
    }

    #[test]
    fn batch_and_sequential_inserts_converge(
        run in proptest::collection::vec((0u64..5, -100i64..5_000, any::<bool>()), 1..60),
    ) {
        // For every backend, one `insert_batch(run)` must leave the index
        // in the same observable state as inserting the run one by one —
        // same rows, same order, same late accounting, same stamps.
        for backend in IndexBackend::ALL {
            let (mut batched_w, batched_r) = backend.build_with_seed(11);
            let (mut seq_w, seq_r) = backend.build_with_seed(11);
            batched_w.insert_batch(
                run.iter().map(|&(k, ts, h)| (tuple(k, ts), h)).collect(),
            );
            for &(k, ts, h) in &run {
                seq_w.insert_hinted(tuple(k, ts), h);
            }
            let windows = [(0i64, 2_500i64)];
            let want = observe(&seq_w, &seq_r, &windows);
            let got = observe(&batched_w, &batched_r, &windows);
            prop_assert_eq!(&got, &want, "backend {}", backend.label());
        }
    }
}
