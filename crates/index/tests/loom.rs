//! Loom model checks for the Jiffy-lite and HINT-lite backends'
//! publish/snapshot paths.
//!
//! Compile and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p oij-index --test loom --release
//! ```
//!
//! Both backends publish through `RcuCell` (one `Release` pointer swap per
//! touched key) and stamp `max_ts`/`late_inserts` afterwards, mirroring
//! the skip-list reference's publication discipline. The scenarios pin the
//! three ways that discipline could break (the same caveats as the
//! skip-list models apply: the vendored loom is sequentially consistent,
//! so wrong orderings are ThreadSanitizer's job, not loom's):
//!
//! 1. **Stamp implies visibility**: once a reader observes `max_ts == T`
//!    via `series_stamp`, a scan must find the tuple with timestamp `T` —
//!    data is published strictly before the stamp.
//! 2. **Batch runs publish atomically per key**: a reader racing an
//!    `insert_batch` run over one key sees either none or all of the
//!    run's entries, never a prefix (one RCU swap publishes the run).
//! 3. **Eviction swaps snapshots atomically**: a scan racing
//!    `evict_below` sees the pre-eviction or the post-eviction series,
//!    never a torn mixture.

#![cfg(loom)]

use loom::thread;
use oij_common::{Timestamp, Tuple};
use oij_index::{IndexBackend, OijIndexReader, OijIndexWriter};

const BACKENDS: [IndexBackend; 2] = [IndexBackend::JiffyLite, IndexBackend::HintLite];

fn tuple(ts: i64, value: f64) -> Tuple {
    Tuple::new(Timestamp::from_micros(ts), 1, value)
}

fn scan_all(reader: &impl OijIndexReader) -> Vec<i64> {
    let mut rows = Vec::new();
    reader.scan_ts_range(1, Timestamp::MIN, Timestamp::MAX, |t| {
        rows.push(t.ts.as_micros());
    });
    rows
}

#[test]
fn stamp_implies_visibility() {
    for backend in BACKENDS {
        loom::model(move || {
            let (mut w, r) = backend.build_with_seed(3);
            let reader = thread::spawn(move || {
                let (_, max) = r.series_stamp(1);
                (max, scan_all(&r))
            });
            w.insert(tuple(5, 1.0));
            let (max, rows) = reader.join().unwrap();
            if max == 5 {
                assert!(
                    rows.contains(&5),
                    "{}: stamp published before its data",
                    backend.label()
                );
            }
        });
    }
}

#[test]
fn batch_runs_publish_atomically_per_key() {
    for backend in BACKENDS {
        loom::model(move || {
            let (mut w, r) = backend.build_with_seed(3);
            let reader = thread::spawn(move || scan_all(&r));
            w.insert_batch(vec![(tuple(10, 1.0), false), (tuple(20, 2.0), false)]);
            let rows = reader.join().unwrap();
            assert!(
                rows.is_empty() || rows == [10, 20],
                "{}: torn batch publication: {:?}",
                backend.label(),
                rows
            );
        });
    }
}

#[test]
fn eviction_swaps_snapshots_atomically() {
    for backend in BACKENDS {
        loom::model(move || {
            let (mut w, r) = backend.build_with_seed(3);
            w.insert(tuple(10, 1.0));
            w.insert(tuple(20, 2.0));
            let reader = thread::spawn(move || scan_all(&r));
            let evicted = w.evict_below(Timestamp::from_micros(15));
            assert_eq!(evicted, 1);
            let rows = reader.join().unwrap();
            assert!(
                rows == [10, 20] || rows == [20],
                "{}: torn eviction snapshot: {:?}",
                backend.label(),
                rows
            );
        });
    }
}
