//! Property-based tests: the SWMR skip list and time-travel index must
//! behave exactly like ordered-map reference models under arbitrary
//! operation sequences.

use std::collections::BTreeMap;

use oij_common::{Timestamp, Tuple, Window};
use oij_skiplist::{SwmrSkipList, TimeTravelIndex};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    EvictBelow(i64),
    RangeScan(i64, i64),
    Get(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (-100i64..100, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (-100i64..100).prop_map(Op::EvictBelow),
        2 => (-100i64..100, -100i64..100).prop_map(|(a, b)| Op::RangeScan(a, b)),
        2 => (-100i64..100).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The skip list equals a BTreeMap under any op interleaving, with
    /// insert-keeps-first semantics and prefix eviction.
    #[test]
    fn skiplist_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let (mut w, r) = SwmrSkipList::new::<i64, i64>();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let inserted = w.insert(k, v);
                    let model_inserted = !model.contains_key(&k);
                    if model_inserted {
                        model.insert(k, v);
                    }
                    prop_assert_eq!(inserted, model_inserted);
                }
                Op::EvictBelow(bound) => {
                    let evicted = w.evict_below(&bound);
                    let before = model.len();
                    model = model.split_off(&bound);
                    prop_assert_eq!(evicted, before - model.len());
                }
                Op::RangeScan(a, b) => {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let mut got = Vec::new();
                    r.for_each_range(&lo, &hi, |k, v| got.push((*k, *v)));
                    let want: Vec<(i64, i64)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
                Op::Get(k) => {
                    prop_assert_eq!(r.get_cloned(&k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }

        // Final full scan equality.
        let got = r.collect_all();
        let want: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Time-travel window scans equal a naive filter over all inserted,
    /// non-expired tuples, for any insertion disorder.
    #[test]
    fn timetravel_scan_matches_naive_filter(
        tuples in proptest::collection::vec((0i64..500, 0u64..8, -100.0f64..100.0), 1..300),
        evict_at in 0i64..500,
        window in (0i64..500, 0i64..500),
    ) {
        let (mut w, r) = TimeTravelIndex::new();
        for &(ts, key, val) in &tuples {
            w.insert(Tuple::new(Timestamp::from_micros(ts), key, val));
        }
        let evicted = w.evict_below(Timestamp::from_micros(evict_at));
        let expected_evicted = tuples.iter().filter(|(ts, _, _)| *ts < evict_at).count();
        prop_assert_eq!(evicted, expected_evicted);

        let (lo, hi) = (window.0.min(window.1), window.0.max(window.1));
        let win = Window {
            start: Timestamp::from_micros(lo),
            end: Timestamp::from_micros(hi),
        };
        for key in 0u64..8 {
            let mut got: Vec<f64> = Vec::new();
            r.scan_window(key, win, |t| got.push(t.value));
            let mut want: Vec<(i64, f64)> = tuples
                .iter()
                .filter(|(ts, k, _)| *k == key && *ts >= evict_at && *ts >= lo && *ts <= hi)
                .map(|(ts, _, v)| (*ts, *v))
                .collect();
            // Index scans in ts order; equal-ts order is insertion order
            // (seq), matching a stable sort of the input.
            want.sort_by_key(|(ts, _)| *ts);
            let want: Vec<f64> = want.into_iter().map(|(_, v)| v).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Scan-level eviction boundary on the double-layer index: after
    /// `evict_below(b)`, no scan (however wide) returns a tuple with
    /// `ts < b`, and **every** surviving tuple (`ts >= b`) stays reachable
    /// through its key — eviction must be exact, neither leaking expired
    /// tuples nor collaterally unlinking live ones.
    #[test]
    fn timetravel_eviction_is_exact(
        tuples in proptest::collection::vec((0i64..400, 0u64..6, -50.0f64..50.0), 1..250),
        bound in 0i64..400,
        rounds in 1usize..4,
    ) {
        let (mut w, r) = TimeTravelIndex::new();
        for &(ts, key, val) in &tuples {
            w.insert(Tuple::new(Timestamp::from_micros(ts), key, val));
        }
        // Repeated eviction at the same bound must be idempotent.
        let mut evicted_total = 0;
        for _ in 0..rounds {
            evicted_total += w.evict_below(Timestamp::from_micros(bound));
        }
        let expected_evicted = tuples.iter().filter(|(ts, _, _)| *ts < bound).count();
        prop_assert_eq!(evicted_total, expected_evicted);
        prop_assert_eq!(w.len(), tuples.len() - expected_evicted);

        let everything = Window {
            start: Timestamp::from_micros(i64::MIN),
            end: Timestamp::from_micros(i64::MAX),
        };
        for key in 0u64..6 {
            let mut seen: Vec<(i64, f64)> = Vec::new();
            r.scan_window(key, everything, |t| seen.push((t.ts.as_micros(), t.value)));
            // No expired tuple is ever returned...
            prop_assert!(seen.iter().all(|(ts, _)| *ts >= bound));
            // ...and every survivor is, in (ts, insertion-seq) order.
            let mut want: Vec<(i64, f64)> = tuples
                .iter()
                .filter(|(ts, k, _)| *k == key && *ts >= bound)
                .map(|(ts, _, v)| (*ts, *v))
                .collect();
            want.sort_by_key(|(ts, _)| *ts);
            prop_assert_eq!(seen, want);
        }
    }

    /// Eviction below the minimum and maximum bounds behaves as no-op/clear.
    #[test]
    fn eviction_boundaries(keys in proptest::collection::vec(0i64..1000, 1..100)) {
        let (mut w, _r) = SwmrSkipList::new::<i64, ()>();
        let mut unique = 0;
        for &k in &keys {
            if w.insert(k, ()) {
                unique += 1;
            }
        }
        prop_assert_eq!(w.evict_below(&i64::MIN), 0);
        prop_assert_eq!(w.len(), unique);
        prop_assert_eq!(w.evict_below(&i64::MAX), unique);
        prop_assert!(w.is_empty());
    }
}
