//! Loom model checks for the SWMR skip list and the RCU cell.
//!
//! Compile and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p oij-skiplist --test loom --release
//! ```
//!
//! Under `--cfg loom` the crate's `sync` facade and the vendored
//! `crossbeam-epoch`'s pointer words swap to the vendored loom's
//! instrumented atomics, and `loom::model` explores the distinct thread
//! interleavings of each scenario (up to the preemption bound). Two
//! caveats bound what these checks prove: the stand-in models
//! **sequential consistency only** (wrong `Release`/`Acquire` orderings
//! are invisible — ThreadSanitizer is the layer that covers those), and
//! the loom-mode epoch backend **leaks** deferred destructors, so
//! premature-reclamation bugs are covered by Miri/ASan, not here. See
//! `vendor/loom`, `vendor/README.md`, and DESIGN.md §8.
//!
//! Each scenario checks one leg of the paper's concurrency contract:
//!
//! 1. **Put → Search publication** (Algorithms 1–2): once a search
//!    observes a key, every key inserted before it is observable too.
//! 2. **Bottom-up linking**: a tall node being published concurrently with
//!    readers is either entirely absent or correctly reachable — scans
//!    stay sorted and complete, upper-level shortcuts never lead to a node
//!    whose level-0 publication hasn't happened.
//! 3. **`evict_below` vs. concurrent scans**: eviction repoints the head
//!    atomically per level; a full scan sees the pre-eviction or the
//!    post-eviction list, never a torn mixture, and survivors are always
//!    reachable.
//! 4. **RCU swap/read**: a reader racing `RcuCell::replace` observes the
//!    old or the new value, each internally consistent.

#![cfg(loom)]

use loom::thread;
use oij_skiplist::{RcuCell, SwmrSkipList};
use std::sync::Arc;

/// Finds a deterministic RNG seed for which inserts 1–3 produce height-1
/// towers and insert 4 produces a tall (≥ 2 level) tower. Runs outside
/// `loom::model`, where the instrumented atomics degrade to plain ones.
fn tall_fourth_insert_seed() -> u64 {
    for seed in 1..2_000u64 {
        let (mut w, _r) = SwmrSkipList::with_seed::<u64, u64>(seed);
        w.insert(10, 1);
        w.insert(20, 2);
        w.insert(30, 3);
        if w.current_height() == 1 {
            w.insert(40, 4);
            if w.current_height() >= 2 {
                return seed;
            }
        }
    }
    panic!("no seed yields three short towers then a tall one");
}

#[test]
fn put_then_search_publication() {
    loom::model(|| {
        let (mut w, r) = SwmrSkipList::new::<u64, u64>();
        let reader = thread::spawn(move || {
            // Probe in reverse insertion order: seeing the later key
            // obliges the earlier one to be visible.
            let two = r.get_cloned(&2);
            let one = r.get_cloned(&1);
            (one, two)
        });
        w.insert(1, 10);
        w.insert(2, 20);
        let (one, two) = reader.join().unwrap();
        if let Some(v) = two {
            assert_eq!(v, 20);
            assert_eq!(
                one,
                Some(10),
                "key 2 was visible before key 1: level-0 publication order broken"
            );
        }
        if let Some(v) = one {
            assert_eq!(v, 10);
        }
        // The writer's view after both inserts is complete regardless of
        // interleaving.
        assert_eq!(w.len(), 2);
    });
}

#[test]
fn bottom_up_linking_of_tall_nodes() {
    let seed = tall_fourth_insert_seed();
    loom::model(move || {
        let (mut w, r) = SwmrSkipList::with_seed::<u64, u64>(seed);
        // Quiescent prefix: three height-1 nodes.
        w.insert(10, 1);
        w.insert(20, 2);
        w.insert(30, 3);
        let reader = thread::spawn(move || {
            // A keyed search descends through the (possibly half-linked)
            // tall tower; a full scan walks level 0.
            let hit = r.get_cloned(&40);
            let keys: Vec<u64> = r.collect_all().iter().map(|(k, _)| *k).collect();
            (hit, keys)
        });
        // Concurrently publish the tall node (height ≥ 2 by seed choice).
        w.insert(40, 4);
        let (hit, keys) = reader.join().unwrap();
        if let Some(v) = hit {
            assert_eq!(v, 4);
        }
        assert!(
            keys == [10, 20, 30] || keys == [10, 20, 30, 40],
            "scan tore a half-published tall node: {keys:?}"
        );
        // If the keyed search (which ran first) found the node, the scan
        // must have found it too — level 0 was already published.
        if hit.is_some() {
            assert_eq!(keys, [10, 20, 30, 40]);
        }
    });
}

#[test]
fn evict_below_vs_concurrent_scan() {
    loom::model(|| {
        let (mut w, r) = SwmrSkipList::new::<u64, u64>();
        for k in 1..=4u64 {
            w.insert(k, k * 10);
        }
        let reader = thread::spawn(move || {
            let all = r.collect_all();
            let mut last = 0u64;
            for (k, v) in &all {
                assert_eq!(*v, *k * 10, "value torn during eviction");
                assert!(*k > last, "scan out of order during eviction");
                last = *k;
            }
            all.iter().map(|(k, _)| *k).collect::<Vec<u64>>()
        });
        let evicted = w.evict_below(&3);
        assert_eq!(evicted, 2);
        let keys = reader.join().unwrap();
        // The level-0 head repoint is one atomic store: a scan drains the
        // whole old prefix or starts at the first survivor.
        assert!(
            keys == [1, 2, 3, 4] || keys == [3, 4],
            "scan saw a torn eviction: {keys:?}"
        );
        assert_eq!(w.len(), 2);
    });
}

#[test]
fn rcu_replace_vs_read() {
    loom::model(|| {
        let cell = Arc::new(RcuCell::new((0u64, 0u64)));
        let c = Arc::clone(&cell);
        let reader = thread::spawn(move || {
            let v = c.load();
            assert_eq!(v.1, v.0 * 2, "torn RCU read");
            *v
        });
        let old = cell.replace((1, 2));
        assert_eq!(*old, (0, 0));
        let seen = reader.join().unwrap();
        assert!(
            seen == (0, 0) || seen == (1, 2),
            "reader saw a value that was never published: {seen:?}"
        );
    });
}
