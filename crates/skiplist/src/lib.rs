//! # oij-skiplist — SWMR lock-free ordered indexes for Scale-OIJ
//!
//! This crate implements the *time-travel data structure* of the paper's
//! Section V-A: a **single-writer, multiple-reader (SWMR)** lock-free skip
//! list ([`swmr::SwmrSkipList`]) and, built from two layers of it, the
//! double-layer index ([`timetravel::TimeTravelIndex`]) that maps
//! `key → (timestamp → tuple)`.
//!
//! ## Concurrency contract
//!
//! Exactly **one** thread (the owning joiner) mutates an index through its
//! [`swmr::Writer`] handle; any number of threads (the joiner's *virtual
//! team*) read concurrently through cloneable [`swmr::Reader`] handles. The
//! write path publishes new nodes with `Release` stores after preparing them
//! with `Relaxed` stores (paper Algorithm 2); readers traverse with
//! `Acquire` loads (Algorithm 1). Expired prefixes are unlinked by the
//! writer and reclaimed through `crossbeam-epoch`, so readers that still
//! hold references into an evicted prefix remain safe until the grace
//! period ends.
//!
//! The crate also provides [`rcu::RcuCell`], the epoch-based publication
//! cell the dynamic scheduler uses to atomically replace the partition
//! schedule (paper §V-B: "atomically replaced after a new schedule").

#![warn(missing_docs)]

pub mod rcu;
pub mod swmr;
pub(crate) mod sync;
pub mod timetravel;

pub use rcu::RcuCell;
pub use swmr::{Reader, SwmrSkipList, Writer};
pub use timetravel::{IndexReader, IndexWriter, TimeTravelIndex};
