//! Single-writer multiple-reader lock-free skip list.
//!
//! lint: hot_path
//!
//! Faithful implementation of the paper's Algorithms 1 (Search) and 2 (Put),
//! extended with the prefix eviction required by tuple expiration:
//!
//! - **Put** (writer only): find the predecessor tower slots, prepare the new
//!   node's `next` pointers with `Relaxed` stores (the node is unpublished,
//!   so no ordering is needed yet), then link it bottom-up with `Release`
//!   stores — the moment the level-0 predecessor pointer is stored, the node
//!   is atomically visible to readers.
//! - **Search / range scan** (any reader): traverse `next` pointers with
//!   `Acquire` loads, pairing with the writer's `Release` stores so a reader
//!   that observes a link also observes the fully initialised node behind it.
//! - **Evict-below** (writer only): unlink the ordered prefix `key < bound`
//!   by re-pointing the head tower at the first survivor per level, then
//!   defer destruction of the unlinked nodes through `crossbeam-epoch`.
//!   Readers still inside the prefix keep following valid forward pointers
//!   (prefix links are never rewritten) and the memory outlives them by the
//!   epoch grace period.
//!
//! ## Memory layout
//!
//! Nodes are allocated with **exactly** as many tower slots as their random
//! height (expected 1⅓ slots at branching 4), not `MAX_HEIGHT` — the same
//! flexible-array layout crossbeam-skiplist and LevelDB's memtable use.
//! This keeps nodes small (the hot path is bound by cache misses while
//! walking them) at the cost of a little `unsafe` allocation code, which is
//! confined to [`Node`]. The list also tracks its current height so
//! searches descend from the highest *occupied* level instead of
//! `MAX_HEIGHT`.
//!
//! The single-writer discipline is enforced at compile time: all mutating
//! operations live on [`Writer`], which is `Send` but neither `Clone` nor
//! `Sync`, while [`Reader`] is freely cloneable and shareable.

use crate::sync::atomic::{AtomicUsize, Ordering};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Shared};

/// Maximum tower height. With branching factor 4 this comfortably indexes
/// tens of millions of entries per list.
pub const MAX_HEIGHT: usize = 12;

/// log2 of the branching factor (4).
const BRANCHING_BITS: u32 = 2;

/// A skip-list node header; `height` tower slots follow it in the same
/// allocation (flexible array member).
#[repr(C)]
struct Node<K, V> {
    key: K,
    value: V,
    height: u8,
}

impl<K, V> Node<K, V> {
    /// Allocation layout of a node with `height` tower slots, and the byte
    /// offset of the tower.
    fn layout(height: usize) -> (Layout, usize) {
        // PANIC-OK: layout of at most MAX_HEIGHT pointer slots; cannot overflow isize.
        let (layout, offset) = Layout::new::<Node<K, V>>()
            .extend(Layout::array::<Atomic<Node<K, V>>>(height).expect("tiny array"))
            .expect("tiny layout");
        (layout.pad_to_align(), offset)
    }

    /// Allocates and initialises a node with null tower slots.
    fn create(key: K, value: V, height: u8) -> *mut Node<K, V> {
        let (layout, tower_offset) = Self::layout(height as usize);
        // SAFETY: layout is non-zero-sized (header at minimum); we
        // initialise every field and every tower slot before use.
        unsafe {
            let ptr = alloc(layout) as *mut Node<K, V>;
            if ptr.is_null() {
                handle_alloc_error(layout);
            }
            ptr.write(Node { key, value, height });
            let tower = (ptr as *mut u8).add(tower_offset) as *mut Atomic<Node<K, V>>;
            for i in 0..height as usize {
                tower.add(i).write(Atomic::null());
            }
            ptr
        }
    }

    /// Pointer to the node's level-0 tower slot.
    ///
    /// # Safety
    /// `this` must point at a live node created by [`create`](Self::create).
    unsafe fn tower_base(this: *const Node<K, V>) -> *const Atomic<Node<K, V>> {
        // SAFETY: `this` is live per the caller contract, so reading the
        // header and offsetting within the same allocation are in bounds.
        unsafe {
            let (_, tower_offset) = Self::layout((*this).height as usize);
            (this as *const u8).add(tower_offset) as *const Atomic<Node<K, V>>
        }
    }

    /// The node's tower slot at `level`.
    ///
    /// # Safety
    /// `this` must be live and `level < this.height`.
    unsafe fn tower<'a>(this: *const Node<K, V>, level: usize) -> &'a Atomic<Node<K, V>> {
        // SAFETY: `this` is live and `level < height` per the caller
        // contract; every slot in `0..height` was initialised by `create`.
        unsafe {
            debug_assert!(level < (*this).height as usize);
            &*Self::tower_base(this).add(level)
        }
    }

    /// Drops the key/value and frees the allocation.
    ///
    /// # Safety
    /// `this` must be live, created by [`create`](Self::create), and never
    /// used again.
    unsafe fn destroy(this: *mut Node<K, V>) {
        // SAFETY: `this` is live and uniquely owned per the caller
        // contract; the layout recomputed from the stored height matches
        // the one used by `create`.
        unsafe {
            let (layout, _) = Self::layout((*this).height as usize);
            std::ptr::drop_in_place(this);
            dealloc(this as *mut u8, layout);
        }
    }
}

struct Inner<K, V> {
    head: [Atomic<Node<K, V>>; MAX_HEIGHT],
    /// Highest level currently occupied (≥ 1 once non-empty). Searches
    /// start here instead of `MAX_HEIGHT`.
    height: AtomicUsize,
    len: AtomicUsize,
    /// Debug-build tripwire for the single-writer contract: held (true)
    /// while a mutating operation is in flight. The type system already
    /// enforces the discipline (`Writer` is unique and `!Sync`), so this
    /// only fires if unsafe code or a future refactor breaks it. Routed
    /// through `sync::uninstrumented` on purpose — it is instrumentation,
    /// not part of the protocol, and must not add schedule points under
    /// loom.
    #[cfg(debug_assertions)]
    write_active: crate::sync::uninstrumented::AtomicBool,
}

// SAFETY: the structure is a map of K→V reachable from multiple threads;
// readers only obtain shared references to keys/values, and reclamation is
// deferred through epochs. The same bounds a lock-based map would need.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Inner<K, V> {}
// SAFETY: as for Send above — shared access hands out only &K/&V, and
// unlinked nodes outlive every reader that can still see them.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Inner<K, V> {}

impl<K, V> Inner<K, V> {
    fn new() -> Self {
        Inner {
            head: std::array::from_fn(|_| Atomic::null()),
            height: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            #[cfg(debug_assertions)]
            write_active: crate::sync::uninstrumented::AtomicBool::new(false),
        }
    }
}

impl<K, V> Drop for Inner<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access — no readers or writer can exist when the
        // last Arc drops, so walking and freeing without pinning is sound.
        unsafe {
            let guard = epoch::unprotected();
            // ORDERING: Relaxed — Drop has exclusive access (last Arc); plain teardown walk.
            let mut cur = self.head[0].load(Ordering::Relaxed, guard);
            while !cur.is_null() {
                let raw = cur.as_raw() as *mut Node<K, V>;
                // ORDERING: Relaxed — as above: no concurrent readers or writer exist in Drop.
                let next = Node::tower(raw, 0).load(Ordering::Relaxed, guard);
                Node::destroy(raw);
                cur = next;
            }
        }
    }
}

/// Factory for SWMR skip lists. See the [module docs](self) for the
/// concurrency contract.
pub struct SwmrSkipList;

impl SwmrSkipList {
    /// Creates an empty list, returning its unique writer handle and an
    /// initial reader handle (clone the reader to share it further).
    #[allow(clippy::new_ret_no_self)] // factory type: handles ARE the API
    pub fn new<K, V>() -> (Writer<K, V>, Reader<K, V>)
    where
        K: Ord + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        Self::with_seed(0x9E37_79B9_7F4A_7C15)
    }

    /// Creates an empty list with an explicit tower-height RNG seed
    /// (deterministic structure for tests and reproducible benches).
    pub fn with_seed<K, V>(seed: u64) -> (Writer<K, V>, Reader<K, V>)
    where
        K: Ord + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        let inner = Arc::new(Inner::new());
        // PANIC-OK: from_fn index i < MAX_HEIGHT == head array length.
        let tail = std::array::from_fn(|i| &inner.head[i] as *const _);
        (
            Writer {
                inner: Arc::clone(&inner),
                rng: seed | 1,
                tail,
                max_key: None,
                _not_sync: PhantomData,
            },
            Reader { inner },
        )
    }
}

/// The unique mutating handle of one skip list.
pub struct Writer<K, V> {
    inner: Arc<Inner<K, V>>,
    rng: u64,
    /// The rightmost tower slot per level (the path a search for +∞ takes).
    /// Lets strictly-ascending inserts — the common case for streams whose
    /// disorder is far smaller than their retention — splice at the tail in
    /// O(height) without a search. Rebuilt after evictions.
    tail: [*const Atomic<Node<K, V>>; MAX_HEIGHT],
    /// The largest key ever inserted and still live (None when empty).
    max_key: Option<K>,
    // `Cell` makes Writer !Sync, so `&Writer` cannot be shared across
    // threads and the single-writer discipline cannot be broken by aliasing.
    _not_sync: PhantomData<std::cell::Cell<u8>>,
}

// SAFETY: the raw tail pointers target the head array inside the Arc'd
// Inner (stable address) or node towers in stable heap allocations that
// only the writer itself can free — sending the Writer moves the pointers
// with their sole user.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Writer<K, V> {}

/// A cloneable, shareable read-only handle of one skip list.
pub struct Reader<K, V> {
    inner: Arc<Inner<K, V>>,
}

impl<K, V> Clone for Reader<K, V> {
    fn clone(&self) -> Self {
        Reader {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// RAII half of the debug-build single-writer check: releases the
/// `write_active` flag when the mutating operation returns (or panics).
/// Holds its own `Arc` so the writer's fields stay freely borrowable
/// while the token is live.
#[cfg(debug_assertions)]
struct WriteToken<K, V> {
    inner: Arc<Inner<K, V>>,
}

#[cfg(debug_assertions)]
impl<K, V> Drop for WriteToken<K, V> {
    fn drop(&mut self) {
        // ORDERING: Release publishes the token holder's writes before the
        // guard reads false; pairs with the AcqRel compare_exchange in
        // `write_token()`.
        self.inner
            .write_active
            .store(false, crate::sync::uninstrumented::Ordering::Release);
    }
}

impl<K, V> Writer<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Claims the debug-build write token, panicking if another mutating
    /// operation is already in flight on this list. That is unreachable
    /// through the safe API (one `!Sync` writer, `&mut self` mutators);
    /// the check exists to catch unsafe misuse and refactoring mistakes.
    #[cfg(debug_assertions)]
    fn write_token(&self) -> WriteToken<K, V> {
        use crate::sync::uninstrumented::Ordering as O;
        // ORDERING: AcqRel claim — Acquire sees the previous holder's
        // Release store in `WriteToken::drop`, Release publishes the claim
        // to the next claimant; failure Acquire for the assert's read.
        let claimed = self
            .inner
            .write_active
            .compare_exchange(false, true, O::AcqRel, O::Acquire)
            .is_ok();
        assert!(
            claimed,
            "single-writer contract violated: two mutating operations ran \
             concurrently on one SwmrSkipList"
        );
        WriteToken {
            inner: Arc::clone(&self.inner),
        }
    }
    /// xorshift64*; cheap and deterministic per writer.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Geometric tower height with p = 1/4 per extra level, capped at
    /// [`MAX_HEIGHT`] (paper Algorithm 2: "a new node with random height").
    fn random_height(&mut self) -> u8 {
        let mut bits = self.next_rand();
        let mut h = 1u8;
        while (h as usize) < MAX_HEIGHT && bits & 0b11 == 0 {
            h += 1;
            bits >>= BRANCHING_BITS;
        }
        h
    }

    /// Inserts `key → value`. Returns `false` (and drops `value`) if the key
    /// is already present; existing entries are never overwritten, matching
    /// the append-only tuple-store semantics of the engines.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.insert_traced(key, value).is_some()
    }

    /// Like [`insert`](Self::insert), additionally reporting the new node's
    /// address (`None` on duplicate key). The address feeds the cache
    /// simulator's write-traffic model.
    pub fn insert_traced(&mut self, key: K, value: V) -> Option<usize> {
        #[cfg(debug_assertions)]
        let _token = self.write_token();
        let height = self.random_height() as usize;
        let guard = epoch::pin();
        // Predecessor tower slots per level (paper Algorithm 2's `pre`
        // array). Levels above the traversal keep the head slots.
        // PANIC-OK: from_fn index i < MAX_HEIGHT == head array length.
        let mut pre: [*const Atomic<Node<K, V>>; MAX_HEIGHT] =
            std::array::from_fn(|i| &self.inner.head[i] as *const _);

        if self.max_key.as_ref().is_some_and(|m| key > *m) || self.max_key.is_none() {
            // Tail fast path: a strictly-ascending key's predecessors are
            // exactly the rightmost slots at every level.
            pre[..].copy_from_slice(&self.tail);
        } else {
            // ORDERING: Relaxed — `height` is written only by this writer thread.
            let start = self
                .inner
                .height
                .load(Ordering::Relaxed)
                .max(height)
                .clamp(1, MAX_HEIGHT);

            // Writer-side traversal. `Relaxed` suffices: the writer reads
            // only pointers it previously stored itself (program order) —
            // this is the plain load of Algorithm 2 line 4.
            let mut tower: *const Atomic<Node<K, V>> = self.inner.head.as_ptr();
            let mut level = start - 1;
            loop {
                // SAFETY: `tower` has more than `level` slots: it is either
                // the head array (MAX_HEIGHT slots) or the tower of a node
                // we entered at a level ≥ `level` (so its height > level).
                let slot = unsafe { &*tower.add(level) };
                // ORDERING: Relaxed — single-writer reads its own prior stores; readers never write, so there is no remote store to pair with.
                let next = slot.load(Ordering::Relaxed, &guard);
                // SAFETY: nodes are reclaimed only after a grace period and
                // the writer itself defers destruction, so it is valid.
                match unsafe { next.as_ref() } {
                    Some(node) if node.key < key => {
                        // SAFETY: `next` is live.
                        tower = unsafe { Node::tower_base(next.as_raw()) };
                    }
                    other => {
                        if let Some(node) = other {
                            if node.key == key {
                                return None;
                            }
                        }
                        // PANIC-OK: level starts below list_height ≤ MAX_HEIGHT and only decreases.
                        pre[level] = slot;
                        if level == 0 {
                            break;
                        }
                        level -= 1;
                    }
                }
            }
        }

        let new_max = self.max_key.as_ref().is_none_or(|m| key > *m);
        if new_max {
            self.max_key = Some(key.clone());
        }
        let node = Node::create(key, value, height as u8);
        let node_shared: Shared<Node<K, V>> = Shared::from(node as *const _);
        // Prepare the unpublished node's forward pointers (Relaxed: no other
        // thread can observe them yet) — Algorithm 2 lines 13–14.
        for (i, slot) in pre.iter().enumerate().take(height) {
            // SAFETY: `node` is fresh with `height` slots; `*slot` is a live
            // Atomic (head or a predecessor node's slot).
            unsafe {
                // ORDERING: Relaxed — the node is unpublished (Algorithm 2 lines 13-14); no reader can reach these slots until the Release store below.
                Node::tower(node, i)
                    .store((**slot).load(Ordering::Relaxed, &guard), Ordering::Relaxed);
            }
        }
        // Publish bottom-up with Release — Algorithm 2 lines 15–16. After
        // the level-0 store the node is atomically visible.
        for slot in pre.iter().take(height) {
            // ORDERING: Release — publishes the fully-initialised node (Algorithm 2 lines 15-16); pairs with the Acquire loads in `Reader::pred_tower` and the range scans.
            // SAFETY: predecessor slots stay valid — we are the only writer.
            unsafe { (**slot).store(node_shared, Ordering::Release) };
        }
        // ORDERING: Relaxed load — `height` is written only by this writer thread.
        if height > self.inner.height.load(Ordering::Relaxed) {
            // ORDERING: Release — pairs with the Acquire `height` load in `Reader::pred_tower`, so a reader entering at the new level sees the published tower.
            self.inner.height.store(height, Ordering::Release);
        }
        // Maintain the rightmost-slot cache: the new node becomes the
        // rightmost at every level where it has no successor. (This also
        // happens on slow-path inserts — a tall node inserted below the
        // maximum key can still be the last node at its upper levels, and a
        // stale tail there would corrupt level order on the next tail
        // splice.)
        for i in 0..height {
            // SAFETY: `node` is live; tower slots live as long as the node.
            unsafe {
                // ORDERING: Relaxed — writer-private read of the just-published node's slot;
                // publication ordering was established by the Release store above.
                // PANIC-OK: i < height ≤ MAX_HEIGHT == tail array length.
                if Node::tower(node, i)
                    .load(Ordering::Relaxed, &guard)
                    .is_null()
                {
                    // PANIC-OK: i < height ≤ MAX_HEIGHT == tail array length.
                    self.tail[i] = Node::tower(node, i) as *const _;
                }
            }
        }
        // ORDERING: Relaxed — `len` is a monotonic counter read only by the
        // approximate `len()`; no synchronisation piggybacks on it.
        self.inner.len.fetch_add(1, Ordering::Relaxed);
        Some(node as usize)
    }

    /// Rebuilds the cached rightmost-slot path (after evictions, which may
    /// destroy nodes the tail pointed into). O(expected height · branching).
    fn rebuild_tail(&mut self) {
        let guard = epoch::pin();
        // ORDERING: Relaxed — single-writer reads its own prior stores;
        // readers never write, so there is no remote store to pair with.
        if self.inner.head[0].load(Ordering::Relaxed, &guard).is_null() {
            // PANIC-OK: from_fn index i < MAX_HEIGHT == head/tail array length.
            self.tail = std::array::from_fn(|i| &self.inner.head[i] as *const _);
            self.max_key = None;
            return;
        }
        // ORDERING: Relaxed — `height` is written only by this writer thread.
        let list_height = self
            .inner
            .height
            .load(Ordering::Relaxed)
            .clamp(1, MAX_HEIGHT);
        for i in list_height..MAX_HEIGHT {
            // PANIC-OK: i < MAX_HEIGHT loop bound == head/tail array length.
            self.tail[i] = &self.inner.head[i] as *const _;
        }
        let mut tower: *const Atomic<Node<K, V>> = self.inner.head.as_ptr();
        let mut level = list_height - 1;
        loop {
            // SAFETY: `tower` has more than `level` slots, as in `insert`.
            let slot = unsafe { &*tower.add(level) };
            // ORDERING: Relaxed — single-writer reads its own prior stores; readers never write, so there is no remote store to pair with.
            let next = slot.load(Ordering::Relaxed, &guard);
            // SAFETY: writer-side pointers are valid (no concurrent frees).
            match unsafe { next.as_ref() } {
                Some(_) => {
                    // SAFETY: `next` is non-null (Some arm) and live.
                    tower = unsafe { Node::tower_base(next.as_raw()) };
                }
                None => {
                    // PANIC-OK: level < list_height ≤ MAX_HEIGHT == tail array length.
                    self.tail[level] = slot;
                    if level == 0 {
                        break;
                    }
                    level -= 1;
                }
            }
        }
    }

    /// Unlinks and (deferred-)frees every entry with `key < bound`.
    /// Returns the number of evicted entries.
    ///
    /// This is the expiration path: keys are ordered, so expired tuples form
    /// a prefix. The head tower is re-pointed at the first survivor per
    /// level with `Release` stores; prefix nodes keep their forward pointers
    /// so in-flight readers drain out of the prefix safely, and the nodes
    /// are destroyed only after the current epoch's readers unpin.
    pub fn evict_below(&mut self, bound: &K) -> usize {
        #[cfg(debug_assertions)]
        let _token = self.write_token();
        let guard = epoch::pin();
        // ORDERING: Relaxed — single-writer reads its own prior stores; readers never write, so there is no remote store to pair with.
        let old_first = self.inner.head[0].load(Ordering::Relaxed, &guard);
        if old_first.is_null() {
            return 0;
        }
        // SAFETY: valid under the pin, as in `insert`.
        if unsafe { old_first.deref() }.key >= *bound {
            return 0; // nothing expired
        }

        // ORDERING: Relaxed — `height` is written only by this writer thread.
        let list_height = self
            .inner
            .height
            .load(Ordering::Relaxed)
            .clamp(1, MAX_HEIGHT);
        for level in (0..list_height).rev() {
            // ORDERING: Relaxed — writer reads its own head slots; the unlink is published by the Release store below.
            // PANIC-OK: level < list_height ≤ MAX_HEIGHT == head array length.
            let mut n = self.inner.head[level].load(Ordering::Relaxed, &guard);
            loop {
                // SAFETY: valid under the pin.
                match unsafe { n.as_ref() } {
                    Some(node) if node.key < *bound => {
                        // SAFETY: node is live and linked at `level`, so its
                        // height exceeds `level`.
                        let slot = unsafe { Node::tower(n.as_raw(), level) };
                        // ORDERING: Relaxed — single-writer reads its own prior stores; readers never write, so there is no remote store to pair with.
                        n = slot.load(Ordering::Relaxed, &guard);
                    }
                    _ => break,
                }
            }
            // ORDERING: Release — unlinks the expired prefix; pairs with the reader-side Acquire head/tower loads so a reader entering afterwards cannot walk into the freed prefix.
            // PANIC-OK: level < list_height ≤ MAX_HEIGHT == head array length.
            self.inner.head[level].store(n, Ordering::Release);
        }

        // The prefix is now unreachable from the head; defer destruction.
        let mut evicted = 0usize;
        let mut n = old_first;
        // SAFETY: valid under the pin; we stop at the first survivor.
        while let Some(node) = unsafe { n.as_ref() } {
            if node.key >= *bound {
                break;
            }
            let raw = n.as_raw() as *mut Node<K, V>;
            // ORDERING: Relaxed — the prefix is already unreachable from the head; writer-private walk for deferred destruction.
            // SAFETY: node is live and has a level-0 slot.
            let next = unsafe { Node::tower(raw, 0) }.load(Ordering::Relaxed, &guard);
            // SAFETY: the node is unlinked from the head, so no new reader
            // can reach it; current readers are protected by their epoch
            // pins. `destroy` runs exactly once, after the grace period.
            unsafe { guard.defer_unchecked(move || Node::destroy(raw)) };
            evicted += 1;
            n = next;
        }
        // ORDERING: Relaxed — `len` is an approximate counter; see `insert_traced`.
        self.inner.len.fetch_sub(evicted, Ordering::Relaxed);
        if evicted > 0 {
            // Eviction may have destroyed nodes the tail path ran through.
            self.rebuild_tail();
        }
        evicted
    }

    /// A read handle sharing this list (the writer may also read through it).
    pub fn reader(&self) -> Reader<K, V> {
        Reader {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        // ORDERING: Relaxed — approximate counter; no ordering contract.
        self.inner.len.load(Ordering::Relaxed)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest occupied tower level. Diagnostic; used by the structural
    /// tests (including the loom model checks) to pick seeds that produce
    /// tall towers.
    pub fn current_height(&self) -> usize {
        // ORDERING: Relaxed — diagnostic read; no ordering contract.
        self.inner.height.load(Ordering::Relaxed)
    }
}

impl<K, V> Reader<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Number of live entries (approximate under concurrent writes).
    pub fn len(&self) -> usize {
        // ORDERING: Relaxed — approximate under concurrent writes by contract.
        self.inner.len.load(Ordering::Relaxed)
    }

    /// Whether the list is empty (approximate under concurrent writes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Descends to the last node with `key < target` and returns its tower
    /// base pointer (or the head tower). Reader-side traversal uses
    /// `Acquire` loads — paper Algorithm 1.
    ///
    /// A stale (smaller) `height` read only costs extra hops at the top —
    /// correctness never depends on it because every node is linked at
    /// level 0.
    fn pred_tower(&self, target: &K, guard: &Guard) -> *const Atomic<Node<K, V>> {
        let mut tower: *const Atomic<Node<K, V>> = self.inner.head.as_ptr();
        // ORDERING: Acquire — pairs with the writer's Release `height` store in `insert_traced`, so towers at the entry level are already published.
        let list_height = self
            .inner
            .height
            .load(Ordering::Acquire)
            .clamp(1, MAX_HEIGHT);
        let mut level = list_height - 1;
        loop {
            // SAFETY: `tower` has more than `level` slots (head array or a
            // node entered at a level ≥ `level`).
            let slot = unsafe { &*tower.add(level) };
            // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
            let next = slot.load(Ordering::Acquire, guard);
            // SAFETY: epoch-protected pointer, valid while `guard` is pinned.
            match unsafe { next.as_ref() } {
                Some(node) if node.key < *target => {
                    // SAFETY: `next` is live.
                    tower = unsafe { Node::tower_base(next.as_raw()) };
                }
                _ => {
                    if level == 0 {
                        return tower;
                    }
                    level -= 1;
                }
            }
        }
    }

    /// Looks up `key` and applies `f` to its value. Returns `None` if the
    /// key is absent. (Algorithm 1, exact-match form.)
    pub fn get_with<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        let guard = epoch::pin();
        let tower = self.pred_tower(key, &guard);
        // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
        // SAFETY: every tower has ≥ 1 slot.
        let next = unsafe { &*tower }.load(Ordering::Acquire, &guard);
        // SAFETY: epoch-protected.
        match unsafe { next.as_ref() } {
            Some(node) if node.key == *key => Some(f(&node.value)),
            _ => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Clones out the value stored under `key`.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    /// Visits every entry with `lo ≤ key ≤ hi` in ascending key order,
    /// passing the entry and its node address (the address feeds the cache
    /// simulator; ignore it otherwise). Returns the number visited.
    ///
    /// This is the *time-travel* read: the window boundary is located in
    /// `O(log n)` and only in-range entries are touched.
    pub fn for_each_range_addr(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V, usize)) -> usize {
        if hi < lo {
            return 0;
        }
        let guard = epoch::pin();
        let tower = self.pred_tower(lo, &guard);
        // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
        // SAFETY: ≥ 1 slot; epoch-protected loads below.
        let mut cur = unsafe { &*tower }.load(Ordering::Acquire, &guard);
        let mut visited = 0usize;
        // SAFETY: `cur` is epoch-protected while `guard` lives.
        while let Some(node) = unsafe { cur.as_ref() } {
            if node.key > *hi {
                break;
            }
            f(&node.key, &node.value, cur.as_raw() as usize);
            visited += 1;
            // SAFETY: `cur` is live (just visited) and every node has a
            // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
            // level-0 slot.
            cur = unsafe { Node::tower(cur.as_raw(), 0) }.load(Ordering::Acquire, &guard);
        }
        visited
    }

    /// Visits every entry with `lo ≤ key ≤ hi` in ascending key order.
    /// Returns the number visited.
    pub fn for_each_range(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V)) -> usize {
        self.for_each_range_addr(lo, hi, |k, v, _| f(k, v))
    }

    /// Visits every entry in ascending key order.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) -> usize {
        let guard = epoch::pin();
        // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
        let mut cur = self.inner.head[0].load(Ordering::Acquire, &guard);
        let mut visited = 0usize;
        // SAFETY: `cur` is epoch-protected while `guard` lives.
        while let Some(node) = unsafe { cur.as_ref() } {
            f(&node.key, &node.value);
            visited += 1;
            // SAFETY: `cur` is live (just visited) and every node has a
            // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
            // level-0 slot.
            cur = unsafe { Node::tower(cur.as_raw(), 0) }.load(Ordering::Acquire, &guard);
        }
        visited
    }

    /// The smallest key, cloned, if any.
    pub fn first_key(&self) -> Option<K>
    where
        K: Clone,
    {
        let guard = epoch::pin();
        // ORDERING: Acquire — pairs with the writer's Release publication in `insert_traced` and prefix unlink in `evict_below`, so the node read here is fully initialised.
        let first = self.inner.head[0].load(Ordering::Acquire, &guard);
        // SAFETY: epoch-protected pointer.
        unsafe { first.as_ref() }.map(|n| n.key.clone())
    }

    /// Collects the whole list into a vector (tests / diagnostics).
    pub fn collect_all(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k.clone(), v.clone())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let (mut w, r) = SwmrSkipList::new::<u64, String>();
        assert!(w.insert(5, "five".into()));
        assert!(w.insert(1, "one".into()));
        assert!(w.insert(9, "nine".into()));
        assert!(!w.insert(5, "dup".into()));
        assert_eq!(w.len(), 3);
        assert_eq!(r.get_cloned(&5).unwrap(), "five");
        assert_eq!(r.get_cloned(&1).unwrap(), "one");
        assert!(r.get_cloned(&2).is_none());
    }

    #[test]
    fn iteration_is_sorted() {
        let (mut w, r) = SwmrSkipList::new::<i64, i64>();
        for k in [7, 3, 9, 1, 5, 8, 2, 6, 4, 0] {
            assert!(w.insert(k, k * 10));
        }
        let all = r.collect_all();
        let keys: Vec<i64> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        for (k, v) in all {
            assert_eq!(v, k * 10);
        }
    }

    #[test]
    fn range_scan_is_inclusive() {
        let (mut w, r) = SwmrSkipList::new::<i64, ()>();
        for k in 0..100 {
            w.insert(k * 2, ()); // evens only
        }
        let mut seen = Vec::new();
        let n = r.for_each_range(&10, &20, |k, _| seen.push(*k));
        assert_eq!(seen, vec![10, 12, 14, 16, 18, 20]);
        assert_eq!(n, 6);
        // Bounds between stored keys
        seen.clear();
        r.for_each_range(&11, &19, |k, _| seen.push(*k));
        assert_eq!(seen, vec![12, 14, 16, 18]);
        // Inverted range is empty
        assert_eq!(r.for_each_range(&20, &10, |_, _| panic!("no visit")), 0);
    }

    #[test]
    fn evict_below_removes_prefix_only() {
        let (mut w, r) = SwmrSkipList::new::<i64, i64>();
        for k in 0..50 {
            w.insert(k, k);
        }
        assert_eq!(w.evict_below(&20), 20);
        assert_eq!(w.len(), 30);
        assert_eq!(r.first_key(), Some(20));
        assert!(!r.contains(&19));
        assert!(r.contains(&20));
        // Idempotent
        assert_eq!(w.evict_below(&20), 0);
        // Evict everything
        assert_eq!(w.evict_below(&1000), 30);
        assert!(w.is_empty());
        assert_eq!(r.first_key(), None);
    }

    #[test]
    fn evict_on_empty_list() {
        let (mut w, _r) = SwmrSkipList::new::<i64, ()>();
        assert_eq!(w.evict_below(&5), 0);
    }

    #[test]
    fn insert_after_evict_reuses_range() {
        let (mut w, r) = SwmrSkipList::new::<i64, i64>();
        for k in 0..10 {
            w.insert(k, k);
        }
        w.evict_below(&10);
        // Out-of-order (late) tuples below the evicted bound may still come.
        assert!(w.insert(5, 55));
        assert_eq!(r.get_cloned(&5), Some(55));
        assert_eq!(r.first_key(), Some(5));
    }

    #[test]
    fn tower_heights_are_bounded_and_varied() {
        let (mut w, _r) = SwmrSkipList::with_seed::<u64, ()>(42);
        let mut hist = [0usize; MAX_HEIGHT + 1];
        for _ in 0..10_000 {
            let h = w.random_height() as usize;
            assert!((1..=MAX_HEIGHT).contains(&h));
            hist[h] += 1;
        }
        // Roughly geometric: height 1 dominates, some height ≥ 3 exist.
        assert!(hist[1] > 6_000);
        assert!(hist[3..].iter().sum::<usize>() > 100);
    }

    #[test]
    fn values_with_heap_contents_drop_cleanly() {
        // Exercises drop_in_place through destroy (String key + Vec value).
        let (mut w, r) = SwmrSkipList::new::<String, Vec<u8>>();
        for i in 0..100 {
            w.insert(format!("key-{i:03}"), vec![i as u8; 100]);
        }
        assert_eq!(w.evict_below(&"key-050".to_string()), 50);
        assert_eq!(r.len(), 50);
        assert_eq!(r.first_key().unwrap(), "key-050");
        drop(w);
        drop(r); // frees everything; run under miri/asan for verification
        drain_epoch_garbage(); // evicted nodes, for the ASan leak pass
    }

    /// Drains deferred epoch garbage so the leak-checking ASan pass (see
    /// scripts/sanitize.sh) ends with nothing queued. Bounded: another
    /// test's transient pin can stall an epoch advance, so retry.
    fn drain_epoch_garbage() {
        for _ in 0..1000 {
            epoch::pin().flush();
            std::thread::yield_now();
        }
    }

    #[test]
    fn concurrent_readers_during_writes_and_eviction() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as O};
        let (mut w, r) = SwmrSkipList::new::<u64, u64>();
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let r = r.clone();
                let stop = Arc::clone(&stop);
                let scans = Arc::new(AtomicU64::new(0));
                let scans2 = Arc::clone(&scans);
                let handle = std::thread::spawn(move || {
                    while !stop.load(O::Relaxed) {
                        // Invariant: scans are sorted and values match keys.
                        let mut last = None;
                        r.for_each(|k, v| {
                            assert_eq!(*v, k * 7);
                            if let Some(prev) = last {
                                assert!(*k > prev, "unsorted scan");
                            }
                            last = Some(*k);
                        });
                        scans2.fetch_add(1, O::Relaxed);
                    }
                });
                (handle, scans)
            })
            .collect();

        // Shrunk under Miri (it runs threads, just much more slowly).
        const BATCHES: u64 = if cfg!(miri) { 6 } else { 50 };
        const PER_BATCH: u64 = if cfg!(miri) { 40 } else { 200 };
        for batch in 0u64..BATCHES {
            for i in 0..PER_BATCH {
                let k = batch * PER_BATCH + i;
                w.insert(k, k * 7);
            }
            // Expire everything older than two batches.
            if batch >= 2 {
                w.evict_below(&((batch - 1) * PER_BATCH));
            }
        }
        // The writer can outrun the readers (reclamation is amortised off
        // the read path, so writes are fast); keep the — now static — list
        // readable until every reader has finished at least one full scan,
        // then stop. Bounded so a wedged reader still fails the test.
        for _ in 0..1_000_000 {
            if readers.iter().all(|(_, s)| s.load(O::Relaxed) > 0) {
                break;
            }
            std::thread::yield_now();
        }
        stop.store(true, O::Relaxed);
        for (h, scans) in readers {
            h.join().unwrap();
            assert!(scans.load(O::Relaxed) > 0, "reader never completed a scan");
        }
        // 2 surviving batches
        assert_eq!(w.len(), 2 * PER_BATCH as usize);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn single_writer_token_trips_on_overlap() {
        // The safe API cannot reach this state (unique !Sync writer with
        // &mut mutators); claim the token directly to prove the runtime
        // tripwire fires if unsafe code ever breaks the discipline.
        let (w, _r) = SwmrSkipList::new::<u64, u64>();
        let _held = w.write_token();
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _overlap = w.write_token();
        }));
        assert!(second.is_err(), "overlapping write must panic");
        drop(_held);
        // Token released on drop: the next claim succeeds again.
        let _after = w.write_token();
    }

    #[test]
    fn drop_releases_all_nodes() {
        // Smoke test that Drop walks the list without crashing; run under
        // miri/asan in CI to validate no leaks or UAF.
        let (mut w, r) = SwmrSkipList::new::<u64, Vec<u8>>();
        for k in 0..1000 {
            w.insert(k, vec![0u8; 32]);
        }
        drop(w);
        assert_eq!(r.len(), 1000);
        drop(r);
    }

    #[test]
    fn slow_path_tall_inserts_keep_level_order() {
        // Regression: a tall node inserted below the max must take over the
        // rightmost-slot cache at its upper levels; otherwise the next
        // in-order insert splices behind it, breaking level order and
        // letting eviction free reachable nodes (use-after-free).
        let (mut w, r) = SwmrSkipList::with_seed::<i64, i64>(0xBADF00D);
        let mut next_key = 0i64;
        const ROUNDS: i64 = if cfg!(miri) { 150 } else { 2000 };
        for round in 0..ROUNDS {
            // Mostly ascending inserts...
            for _ in 0..4 {
                next_key += 2;
                w.insert(next_key, next_key);
            }
            // ...with an out-of-order insert up to ~40 behind the max
            // (odd keys never collide with the ascending evens).
            let lag = 1 + (round * 7) % 40;
            w.insert(next_key - lag, next_key - lag);
            // Periodic eviction forces tail rebuilds and node frees.
            if round % 50 == 49 {
                w.evict_below(&(next_key - 100));
            }
            if round % 200 == 199 {
                // Full order check.
                let mut last = i64::MIN;
                r.for_each(|k, _| {
                    assert!(*k > last, "order violated: {k} after {last}");
                    last = *k;
                });
            }
        }
    }

    #[test]
    fn list_height_grows_and_search_still_finds_everything() {
        let (mut w, r) = SwmrSkipList::with_seed::<u64, u64>(1234);
        const N: u64 = if cfg!(miri) { 4_000 } else { 50_000 };
        for k in 0..N {
            w.insert(k, k);
        }
        assert!(w.current_height() > 3, "height {}", w.current_height());
        for k in (0..N).step_by(997) {
            assert_eq!(r.get_cloned(&k), Some(k));
        }
        // Evicting everything leaves a consistent (tall but empty) list.
        assert_eq!(w.evict_below(&u64::MAX), N as usize);
        assert!(r.collect_all().is_empty());
        assert!(w.insert(1, 1));
        assert_eq!(r.get_cloned(&1), Some(1));
    }
}
