//! The double-layer *time-travel* index (paper §V-A, Figure 10).
//!
//! lint: hot_path
//!
//! Layer 1 is an SWMR skip list mapping `key → second-layer handle`; each
//! second layer is an SWMR skip list mapping `(timestamp, seq) → tuple`
//! (the sequence number disambiguates equal timestamps, preserving every
//! tuple). Locating a window boundary costs
//! `O(log N_key) + O(log N_ts)` and a scan then touches **only** in-window
//! tuples — this is what makes lateness "insignificant to the performance"
//! (paper Finding 3): out-of-window tuples retained for late arrivals are
//! never visited.
//!
//! The owning joiner writes through [`IndexWriter`]; every member of its
//! virtual team reads through cloned [`IndexReader`]s, exploiting the SWMR
//! property of both layers.

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::Arc;

use oij_common::{Key, Timestamp, Tuple, Window};

use crate::swmr::{Reader, SwmrSkipList, Writer};

/// Second-layer key: event timestamp plus a per-index dense sequence number
/// so that tuples with identical timestamps coexist.
pub type TsKey = (Timestamp, u64);

type SeriesWriter = Writer<TsKey, Tuple>;
type SeriesReader = Reader<TsKey, Tuple>;

/// The per-key state published through layer 1: the second-layer reader
/// plus a counter of *late* inserts (tuples whose timestamp was below the
/// key's maximum at insertion time). Incremental join states snapshot the
/// counter and fall back to a full rescan when it moves — late probe
/// tuples land inside the already-covered window region, which `⊕`-only
/// advancement would silently miss.
struct SeriesShared {
    reader: SeriesReader,
    late_inserts: AtomicU64,
    /// The key's largest inserted timestamp (µs; `i64::MIN` when empty),
    /// published by the writer. Together with the late counter this forms
    /// the per-member *stamp* incremental states validate against.
    max_ts: AtomicI64,
}

/// Factory for the double-layer index.
pub struct TimeTravelIndex;

impl TimeTravelIndex {
    /// Creates an empty index, returning the unique writer and an initial
    /// reader handle.
    #[allow(clippy::new_ret_no_self)] // factory type: handles ARE the API
    pub fn new() -> (IndexWriter, IndexReader) {
        Self::with_seed(0xC0FF_EE11_D00D_F00D)
    }

    /// Creates an empty index with a deterministic skip-list height seed.
    pub fn with_seed(seed: u64) -> (IndexWriter, IndexReader) {
        let (kw, kr) = SwmrSkipList::with_seed::<Key, Arc<SeriesShared>>(seed);
        (
            IndexWriter {
                keys: kw,
                series: HashMap::new(),
                seed: seed.rotate_left(17) | 1,
                next_seq: 0,
                len: 0,
            },
            IndexReader { keys: kr },
        )
    }
}

/// The unique mutating handle: insert tuples, expire old ones.
pub struct IndexWriter {
    /// Layer 1 (shared with readers).
    keys: Writer<Key, Arc<SeriesShared>>,
    /// The writer halves of every second-layer list, plus the shared state
    /// and the writer-private max timestamp per key. Only this joiner
    /// inserts, so keeping them privately in a hash map gives O(1) writer
    /// lookup while readers still locate series through the layer-1 skip
    /// list as in the paper.
    series: HashMap<Key, SeriesState>,
    seed: u64,
    next_seq: u64,
    len: usize,
}

struct SeriesState {
    writer: SeriesWriter,
    shared: Arc<SeriesShared>,
    max_ts: Timestamp,
}

impl IndexWriter {
    /// Approximate in-memory footprint of one second-layer node, in bytes —
    /// what a window scan actually touches per tuple (used to drive the
    /// cache simulator with realistic access sizes).
    pub fn node_footprint() -> usize {
        // key (ts, seq) + tuple + tower of MAX_HEIGHT atomics.
        std::mem::size_of::<TsKey>()
            + std::mem::size_of::<Tuple>()
            + crate::swmr::MAX_HEIGHT * std::mem::size_of::<usize>()
    }

    /// Like [`insert`](Self::insert) but with an external *global* lateness
    /// hint. The engine knows the stream-wide maximum timestamp (via the
    /// watermark); a tuple below that maximum must bump the late counter
    /// even when it is the first tuple this particular writer sees for the
    /// key — otherwise a team member joining mid-stream could absorb a
    /// globally-late tuple without any team reader noticing.
    pub fn insert_hinted(&mut self, tuple: Tuple, globally_late: bool) {
        self.insert_inner(tuple, globally_late);
    }

    /// Like [`insert_hinted`](Self::insert_hinted), additionally reporting
    /// the new node's address for cache-traffic simulation.
    pub fn insert_hinted_traced(&mut self, tuple: Tuple, globally_late: bool) -> usize {
        self.insert_inner(tuple, globally_late)
    }

    /// Inserts a tuple, creating its key series on first sight. A tuple
    /// whose timestamp is below the key's maximum so far bumps the key's
    /// published late-insert counter (see [`IndexReader::late_inserts`]).
    pub fn insert(&mut self, tuple: Tuple) {
        self.insert_inner(tuple, false);
    }

    fn insert_inner(&mut self, tuple: Tuple, late_hint: bool) -> usize {
        let key = tuple.key;
        let ts = tuple.ts;
        let seq = self.next_seq;
        self.next_seq += 1;
        let state = self.series.entry(key).or_insert_with(|| {
            self.seed = self
                .seed
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(1);
            let (sw, sr) = SwmrSkipList::with_seed::<TsKey, Tuple>(self.seed | 1);
            let shared = Arc::new(SeriesShared {
                reader: sr,
                late_inserts: AtomicU64::new(0),
                max_ts: AtomicI64::new(i64::MIN),
            });
            // Publish the shared state through layer 1 so the virtual team
            // can find it.
            self.keys.insert(key, Arc::clone(&shared));
            SeriesState {
                writer: sw,
                shared,
                max_ts: Timestamp::MIN,
            }
        });
        // PANIC-OK: duplicate (ts, seq) is impossible — `seq` increments per insert, so `insert_traced` cannot observe an equal key.
        let addr = state
            .writer
            .insert_traced((ts, seq), tuple)
            .expect("(ts, seq) keys are unique by construction");
        // A tuple that does not STRICTLY advance the key's maximum counts
        // as late: it leaves the max stamp unchanged, so only the counter
        // can make it visible to incremental-state validation.
        let locally_late = state.max_ts != Timestamp::MIN && ts <= state.max_ts;
        if ts > state.max_ts || state.max_ts == Timestamp::MIN {
            state.max_ts = ts;
            // Publish after the node itself (Release pairs with readers'
            // Acquire): observing the new stamp implies the node is visible.
            // ORDERING: Release — pairs with the Acquire loads in `series_stamp` / `max_ts`: observing the new stamp implies the node is published.
            state.shared.max_ts.store(ts.as_micros(), Ordering::Release);
        }
        if late_hint || locally_late {
            // ORDERING: Release — pairs with the Acquire counter load in `series_stamp` / `late_inserts`; ordered after the node publication above.
            state.shared.late_inserts.fetch_add(1, Ordering::Release);
        }
        self.len += 1;
        addr
    }

    /// Expires every tuple with `ts < bound` across all keys. Returns the
    /// number of evicted tuples. Empty series stay registered (key churn is
    /// low in the paper's workloads; a key's series is reused on re-arrival).
    pub fn evict_below(&mut self, bound: Timestamp) -> usize {
        let limit = (bound, 0u64);
        let mut evicted = 0usize;
        for state in self.series.values_mut() {
            evicted += state.writer.evict_below(&limit);
        }
        self.len -= evicted;
        evicted
    }

    /// A reader handle sharing this index.
    pub fn reader(&self) -> IndexReader {
        IndexReader {
            keys: self.keys.reader(),
        }
    }

    /// Total live tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys ever inserted.
    pub fn key_count(&self) -> usize {
        self.series.len()
    }
}

/// A cloneable read handle over the double-layer index.
pub struct IndexReader {
    keys: Reader<Key, Arc<SeriesShared>>,
}

impl Clone for IndexReader {
    fn clone(&self) -> Self {
        IndexReader {
            keys: self.keys.clone(),
        }
    }
}

impl IndexReader {
    /// Visits every stored tuple of `key` whose timestamp lies in `window`
    /// (inclusive bounds), in timestamp order. The callback also receives a
    /// stable node address for cache simulation. Returns the number visited
    /// — which, by construction, equals the number matched.
    pub fn scan_window_addr(
        &self,
        key: Key,
        window: Window,
        mut f: impl FnMut(&Tuple, usize),
    ) -> usize {
        let lo = (window.start, 0u64);
        let hi = (window.end, u64::MAX);
        self.keys
            .get_with(&key, |shared| {
                shared
                    .reader
                    .for_each_range_addr(&lo, &hi, |_, tuple, addr| f(tuple, addr))
            })
            .unwrap_or(0)
    }

    /// Visits every stored tuple of `key` inside `window`, in timestamp
    /// order. Returns the number visited.
    pub fn scan_window(&self, key: Key, window: Window, mut f: impl FnMut(&Tuple)) -> usize {
        self.scan_window_addr(key, window, |t, _| f(t))
    }

    /// Visits every stored tuple of `key` inside `window` in `(ts, seq)`
    /// order, passing each tuple's dense per-index insertion sequence
    /// number. A reader that remembers the writer's insert count at some
    /// instant can filter on `seq < count` to reproduce exactly the
    /// prefix of inserts that preceded that instant — the serving
    /// runtime's shared-index visibility bound.
    pub fn scan_window_seq(
        &self,
        key: Key,
        window: Window,
        mut f: impl FnMut(&Tuple, u64),
    ) -> usize {
        let lo = (window.start, 0u64);
        let hi = (window.end, u64::MAX);
        self.keys
            .get_with(&key, |shared| {
                shared
                    .reader
                    .for_each_range(&lo, &hi, |k, tuple| f(tuple, k.1))
            })
            .unwrap_or(0)
    }

    /// Visits every stored tuple of `key` with `lo ≤ ts ≤ hi` — the
    /// incremental join uses this to scan only the delta between two
    /// overlapping windows.
    pub fn scan_ts_range(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&Tuple),
    ) -> usize {
        self.scan_ts_range_addr(key, lo, hi, |t, _| f(t))
    }

    /// [`scan_ts_range`](Self::scan_ts_range) with node addresses for cache
    /// simulation.
    pub fn scan_ts_range_addr(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&Tuple, usize),
    ) -> usize {
        if hi < lo {
            return 0;
        }
        self.scan_window_addr(key, Window { start: lo, end: hi }, &mut f)
    }

    /// Number of live tuples stored under `key` (approximate under writes).
    pub fn key_len(&self, key: Key) -> usize {
        self.keys
            .get_with(&key, |shared| shared.reader.len())
            .unwrap_or(0)
    }

    /// The key's late-insert counter: how many tuples have ever been
    /// inserted below the key's then-maximum timestamp. Incremental join
    /// states snapshot this and fully rescan when it changes.
    pub fn late_inserts(&self, key: Key) -> u64 {
        // ORDERING: Acquire — pairs with the Release `fetch_add` in `insert`, so the count covers every published late node.
        self.keys
            .get_with(&key, |shared| shared.late_inserts.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// The key's validation stamp: `(late_inserts, max_ts_µs)`. A member
    /// whose stamp is unchanged has inserted nothing for the key; one whose
    /// max advanced past a state's covered end inserted only delta-visible
    /// tuples. `(0, i64::MIN)` when the key is unknown to this index.
    pub fn series_stamp(&self, key: Key) -> (u64, i64) {
        self.keys
            .get_with(&key, |shared| {
                // Load the counter first: a concurrent in-order insert then
                // at worst shows a newer max with an old counter, which the
                // validity rule treats conservatively.
                // ORDERING: Acquire — counter first; pairs with the Release `fetch_add` in `insert` (see comment above on the conservative stamp).
                let late = shared.late_inserts.load(Ordering::Acquire);
                // ORDERING: Acquire — pairs with the Release `max_ts` store in `insert`: the new stamp implies the node is visible.
                let max = shared.max_ts.load(Ordering::Acquire);
                (late, max)
            })
            .unwrap_or((0, i64::MIN))
    }

    /// Whether `key` has ever been seen by this index.
    pub fn has_key(&self, key: Key) -> bool {
        self.keys.contains(&key)
    }

    /// Number of distinct keys (approximate under writes).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::Duration;

    fn tup(ts: i64, key: Key, value: f64) -> Tuple {
        Tuple::new(Timestamp::from_micros(ts), key, value)
    }

    fn win(lo: i64, hi: i64) -> Window {
        Window {
            start: Timestamp::from_micros(lo),
            end: Timestamp::from_micros(hi),
        }
    }

    #[test]
    fn scan_window_filters_key_and_time() {
        let (mut w, r) = TimeTravelIndex::new();
        w.insert(tup(10, 1, 1.0));
        w.insert(tup(20, 1, 2.0));
        w.insert(tup(30, 1, 3.0));
        w.insert(tup(20, 2, 99.0)); // other key
        let mut vals = Vec::new();
        let n = r.scan_window(1, win(15, 30), |t| vals.push(t.value));
        assert_eq!(vals, vec![2.0, 3.0]);
        assert_eq!(n, 2);
        // Unknown key
        assert_eq!(r.scan_window(7, win(0, 100), |_| panic!()), 0);
    }

    #[test]
    fn duplicate_timestamps_are_all_kept() {
        let (mut w, r) = TimeTravelIndex::new();
        for i in 0..5 {
            w.insert(tup(42, 9, i as f64));
        }
        let mut sum = 0.0;
        assert_eq!(r.scan_window(9, win(42, 42), |t| sum += t.value), 5);
        assert_eq!(sum, 0.0 + 1.0 + 2.0 + 3.0 + 4.0);
    }

    #[test]
    fn out_of_order_inserts_scan_in_ts_order() {
        let (mut w, r) = TimeTravelIndex::new();
        for ts in [50, 10, 40, 20, 30] {
            w.insert(tup(ts, 1, ts as f64));
        }
        let mut seen = Vec::new();
        r.scan_window(1, win(0, 100), |t| seen.push(t.ts.as_micros()));
        assert_eq!(seen, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn evict_below_prunes_every_key() {
        let (mut w, r) = TimeTravelIndex::new();
        for key in 0..4u64 {
            for ts in 0..10 {
                w.insert(tup(ts * 10, key, 1.0));
            }
        }
        assert_eq!(w.len(), 40);
        let evicted = w.evict_below(Timestamp::from_micros(50));
        assert_eq!(evicted, 4 * 5);
        assert_eq!(w.len(), 20);
        for key in 0..4u64 {
            assert_eq!(r.key_len(key), 5);
            assert_eq!(r.scan_window(key, win(0, 49), |_| panic!()), 0);
            assert_eq!(r.scan_window(key, win(0, 1000), |_| ()), 5);
        }
    }

    #[test]
    fn ts_range_scan_for_incremental_deltas() {
        let (mut w, r) = TimeTravelIndex::new();
        for ts in 0..20 {
            w.insert(tup(ts, 3, ts as f64));
        }
        // Delta (b, b'] with exclusive-then-inclusive semantics is expressed
        // by callers as [b+1, b'].
        let mut sum = 0.0;
        let n = r.scan_ts_range(
            3,
            Timestamp::from_micros(11),
            Timestamp::from_micros(14),
            |t| sum += t.value,
        );
        assert_eq!(n, 4);
        assert_eq!(sum, 11.0 + 12.0 + 13.0 + 14.0);
        // Inverted range empty
        assert_eq!(
            r.scan_ts_range(
                3,
                Timestamp::from_micros(5),
                Timestamp::from_micros(4),
                |_| panic!()
            ),
            0
        );
    }

    #[test]
    fn window_spec_integration() {
        use oij_common::WindowSpec;
        let (mut w, r) = TimeTravelIndex::new();
        for ts in [980, 990, 1000, 1010, 1020] {
            w.insert(tup(ts, 1, 1.0));
        }
        let spec = WindowSpec::new(
            Duration::from_micros(20),
            Duration::from_micros(10),
            Duration::ZERO,
        )
        .unwrap();
        // Base tuple at ts=1000 → window [980, 1010]
        let n = r.scan_window(1, spec.window_of(Timestamp::from_micros(1000)), |_| ());
        assert_eq!(n, 4);
    }

    #[test]
    fn late_insert_counter_tracks_disorder() {
        let (mut w, r) = TimeTravelIndex::new();
        assert_eq!(r.late_inserts(1), 0); // unknown key
        w.insert(tup(10, 1, 1.0));
        w.insert(tup(20, 1, 1.0));
        assert_eq!(r.late_inserts(1), 0); // in order so far
        w.insert(tup(15, 1, 1.0)); // late
        assert_eq!(r.late_inserts(1), 1);
        w.insert(tup(15, 1, 1.0)); // equal to a past ts but below max: late
        assert_eq!(r.late_inserts(1), 2);
        // Equal to the max: counts as late too — it does not move the max
        // stamp, so only the counter can reveal it to incremental states.
        w.insert(tup(20, 1, 1.0));
        assert_eq!(r.late_inserts(1), 3);
        // Other keys are independent.
        w.insert(tup(5, 2, 1.0));
        assert_eq!(r.late_inserts(2), 0);
    }

    #[test]
    fn series_stamps_track_late_and_max() {
        let (mut w, r) = TimeTravelIndex::new();
        assert_eq!(r.series_stamp(1), (0, i64::MIN)); // unknown key
        w.insert(tup(100, 1, 1.0));
        assert_eq!(r.series_stamp(1), (0, 100));
        w.insert(tup(250, 1, 1.0));
        assert_eq!(r.series_stamp(1), (0, 250));
        w.insert(tup(180, 1, 1.0)); // late: counter bumps, max unchanged
        assert_eq!(r.series_stamp(1), (1, 250));
        w.insert(tup(250, 1, 1.0)); // duplicate of max: late as well
        assert_eq!(r.series_stamp(1), (2, 250));
    }

    #[test]
    fn node_footprint_is_plausible() {
        let f = IndexWriter::node_footprint();
        // key (16) + Tuple + tower — sane bounds, used by the cache sim.
        assert!(f > 32, "{f}");
        assert!(f < 512, "{f}");
    }

    #[test]
    fn global_late_hint_flags_first_sight_tuples() {
        // A tuple that is the FIRST its writer sees for a key is locally
        // in-order, but the global hint must still mark it late.
        let (mut w, r) = TimeTravelIndex::new();
        w.insert_hinted(tup(100, 1, 1.0), false);
        assert_eq!(r.late_inserts(1), 0);
        // New key, but globally late (hint from the engine's watermark).
        w.insert_hinted(tup(50, 2, 1.0), true);
        assert_eq!(r.late_inserts(2), 1);
    }

    #[test]
    fn concurrent_team_readers() {
        use std::sync::atomic::{AtomicBool, Ordering as O};
        use std::sync::Arc;
        let (mut w, r) = TimeTravelIndex::new();
        let stop = Arc::new(AtomicBool::new(false));
        let team: Vec<_> = (0..3)
            .map(|_| {
                let r = r.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(O::Relaxed) {
                        for key in 0..8u64 {
                            let mut last = i64::MIN;
                            r.scan_window(key, win(0, i64::MAX / 2), |t| {
                                assert!(t.ts.as_micros() >= last, "unordered scan");
                                last = t.ts.as_micros();
                                assert_eq!(t.key, key);
                            });
                        }
                    }
                })
            })
            .collect();

        // Miri runs threads but executes ~100× slower; a shorter run still
        // exercises the same insert/evict/scan interleavings.
        const ROUNDS: i64 = if cfg!(miri) { 20 } else { 200 };
        for round in 0i64..ROUNDS {
            for key in 0..8u64 {
                w.insert(tup(round * 100 + key as i64, key, 1.0));
            }
            if round % 10 == 9 {
                w.evict_below(Timestamp::from_micros((round - 5) * 100));
            }
        }
        stop.store(true, O::Relaxed);
        for h in team {
            h.join().unwrap();
        }
    }
}
