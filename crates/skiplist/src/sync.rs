//! Facade over the synchronization primitives the index structures use.
//!
//! In the normal configuration this re-exports `std::sync::atomic`; when the
//! crate is compiled with `RUSTFLAGS="--cfg loom"` it re-exports the loom
//! model checker's instrumented atomics instead, so `swmr`, `timetravel`,
//! and `rcu` compile unchanged against either backend. The loom tests in
//! `tests/loom.rs` systematically explore thread interleavings of the
//! publication, linking, eviction, and RCU-swap protocols (under
//! sequential consistency only — the stand-in checker cannot catch wrong
//! `Release`/`Acquire` orderings; see DESIGN.md §8 for the coverage map).
//!
//! Everything in the data-structure modules must import atomics from
//! `crate::sync::atomic` — never from `std::sync::atomic` directly — or the
//! model checker cannot observe (and so cannot permute) those operations.
//! `crossbeam_epoch`'s pointer words are instrumented the same way by the
//! vendored crate's own `cfg(loom)` backend.

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loom::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize};
    pub(crate) use std::sync::atomic::Ordering;
}

/// Always-std atomics for debug tripwires that must not become loom
/// schedule points. The single user is `swmr`'s single-writer guard: its
/// compare-exchange merely *detects* a second `write_token()` caller (an
/// API-contract violation), so modelling it would multiply loom's state
/// space without exploring any legal interleaving — and the vendored
/// loom's `AtomicBool` deliberately omits `compare_exchange` for the same
/// reason. Protocol state never goes through this module (R2 still bans
/// `std::sync::atomic` elsewhere in the crate). Compiled only when the
/// tripwire is, so release builds carry no unused re-exports.
#[cfg(debug_assertions)]
pub(crate) mod uninstrumented {
    pub(crate) use std::sync::atomic::{AtomicBool, Ordering};
}

/// Class-carrying locks routed through the workspace lockdep witness
/// (`oij_common::lockdep`): acquisitions are tagged for lint rule R6 and,
/// under `RUSTFLAGS="--cfg lockdep"`, recorded in the runtime lock-order
/// graph. The index structures are lock-free today, so nothing imports
/// these yet — but R2 bans `std::sync` locks crate-wide, so any future
/// lock lands here and inherits the instrumentation automatically.
#[allow(unused_imports)]
pub(crate) use oij_common::lockdep::{Mutex, RwLock};
