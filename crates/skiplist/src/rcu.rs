//! Epoch-based read-copy-update cell.
//!
//! lint: hot_path
//!
//! The dynamic scheduler (paper §V-B) periodically computes a new key
//! partition schedule and must publish it so that the partitioner observes
//! either the old or the new schedule — never a mixture — without taking a
//! lock on the hot routing path. [`RcuCell`] provides exactly that: readers
//! pay one epoch pin plus one `Acquire` load; the writer swaps in a new
//! value and defers destruction of the old one until all current readers
//! have moved on.

use crate::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

/// A cell holding an `Arc<T>` that can be atomically replaced while being
/// read lock-free from any number of threads.
pub struct RcuCell<T> {
    slot: Atomic<Arc<T>>,
}

impl<T: Send + Sync + 'static> RcuCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        RcuCell {
            slot: Atomic::new(Arc::new(value)),
        }
    }

    /// Returns a snapshot of the current value. The returned `Arc` keeps the
    /// snapshot alive independently of later [`replace`](Self::replace)s.
    pub fn load(&self) -> Arc<T> {
        let guard = epoch::pin();
        // ORDERING: Acquire — pairs with the AcqRel `swap` in `replace`, so the loaded schedule is fully constructed before any field is read.
        let shared = self.slot.load(Ordering::Acquire, &guard);
        // SAFETY: `shared` is non-null by construction (always initialised,
        // never stored null) and epoch-protected against reclamation while
        // `guard` is live; cloning the Arc extends the value's life past it.
        unsafe { shared.deref() }.clone()
    }

    /// Publishes a new value, returning a snapshot of the replaced one.
    ///
    /// Callers must serialise replacements (in the engine only the scheduler
    /// thread replaces); concurrent `load`s are always safe.
    pub fn replace(&self, value: T) -> Arc<T> {
        let guard = epoch::pin();
        // ORDERING: AcqRel — Release publishes the new value to readers' Acquire loads; Acquire orders the unlink before this thread reads the old value.
        let old = self
            .slot
            .swap(Owned::new(Arc::new(value)), Ordering::AcqRel, &guard);
        // SAFETY: non-null as above.
        let snapshot = unsafe { old.deref() }.clone();
        // SAFETY: `old` is unlinked; readers that loaded it earlier are
        // protected by their own pins until the grace period passes.
        unsafe { guard.defer_destroy(old) };
        snapshot
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access during drop; free the final value.
        unsafe {
            let guard = epoch::unprotected();
            // ORDERING: Relaxed — Drop has exclusive access; no concurrent loads remain.
            let shared = self.slot.load(Ordering::Relaxed, guard);
            if !shared.is_null() {
                drop(shared.into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as O};

    #[test]
    fn load_returns_current_value() {
        let cell = RcuCell::new(41);
        assert_eq!(*cell.load(), 41);
        let old = cell.replace(42);
        assert_eq!(*old, 41);
        assert_eq!(*cell.load(), 42);
    }

    #[test]
    fn snapshots_outlive_replacement() {
        let cell = RcuCell::new(vec![1, 2, 3]);
        let snap = cell.load();
        cell.replace(vec![9]);
        assert_eq!(*snap, vec![1, 2, 3]); // old snapshot intact
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_loads_never_see_torn_values() {
        // Invariant: value is (n, 2n); a torn read would break it.
        let cell = Arc::new(RcuCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let loads = Arc::new(AtomicUsize::new(0));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let loads = Arc::clone(&loads);
                std::thread::spawn(move || {
                    while !stop.load(O::Relaxed) {
                        let v = cell.load();
                        assert_eq!(v.1, v.0 * 2);
                        loads.fetch_add(1, O::Relaxed);
                    }
                })
            })
            .collect();

        let mut n = 0u64;
        // Keep replacing until the readers have observably run (bounded so
        // a pathological scheduler cannot hang the test).
        const MIN_REPLACES: u64 = if cfg!(miri) { 200 } else { 2_000 };
        const MAX_REPLACES: u64 = if cfg!(miri) { 100_000 } else { 50_000_000 };
        while n < MIN_REPLACES || (loads.load(O::Relaxed) == 0 && n < MAX_REPLACES) {
            n += 1;
            cell.replace((n, n * 2));
            if n.is_multiple_of(4096) {
                std::thread::yield_now();
            }
        }
        stop.store(true, O::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert!(loads.load(O::Relaxed) > 0);
    }

    #[test]
    fn drop_frees_value() {
        // Arc refcount proves the cell released its reference on drop.
        let marker = Arc::new(());
        let cell = RcuCell::new(Arc::clone(&marker));
        assert_eq!(Arc::strong_count(&marker), 2);
        drop(cell);
        // Epoch reclamation is deferred; flush by pinning repeatedly.
        for _ in 0..1000 {
            epoch::pin().flush();
            if Arc::strong_count(&marker) == 1 {
                break;
            }
        }
        // The value may legitimately still be queued; at minimum no UAF
        // occurred. If reclamation ran, the count is back to 1.
        assert!(Arc::strong_count(&marker) <= 2);
    }
}
