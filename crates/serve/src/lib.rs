//! # oij-serve — the multi-query feature-serving runtime
//!
//! OpenMLDB's online feature platform does not run one join at a time:
//! many feature queries are served **concurrently over the same ingested
//! stream**, registered and cancelled while ingest keeps flowing. This
//! crate is that long-running layer on top of the engines (DESIGN.md
//! §13):
//!
//! * **Shared single-writer ingest.** The runtime owns one SWMR index
//!   writer for the probe side of the stream; every registered query's
//!   workers scan it through cloned readers. A probe tuple is inserted
//!   exactly *once* no matter how many queries are active — the paper's
//!   shared-store insight, applied across plans instead of across
//!   joiners.
//! * **Bit-identical serving.** Each base message carries the writer's
//!   probe-insert count at dispatch as a visibility bound; workers
//!   filter their `(ts, seq)`-ordered window scans to `seq < bound`
//!   (dense sequence numbers are an index-contract invariant), so every
//!   query's output — multiset, order, and `f64` accumulation — is
//!   exactly what a solo run over the same events would produce.
//! * **Admission control.** [`ServeRuntime::register`] enforces budgets
//!   (concurrent queries, total joiner threads, per-query channel
//!   memory) and rejects with a reasoned [`Error::Admission`] instead of
//!   degrading everyone.
//! * **Backpressure and shedding.** Fan-out uses the engines' bounded
//!   channels. In the default lossless mode a stalled query blocks
//!   ingest at most `send_timeout` before it alone is poisoned; with
//!   [`ServeConfig::shed_when_full`] the runtime drops that query's base
//!   messages instead, counting them in
//!   [`RunStats::shed_events`](oij_core::RunStats::shed_events).
//! * **Fault isolation.** Every query gets its own supervised workers,
//!   failure cell, and kill flag. A panic, wedge, or slow sink in query
//!   A surfaces as A's [`Error::WorkerFailed`]; query B's output is
//!   untouched.

#![warn(missing_docs)]

mod sync;
mod worker;

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Sender, TrySendError};

use oij_common::{
    EmitMode, Error, Event, EventKind, Result, Side, Timestamp, Tuple, WatermarkTracker,
};
use oij_core::faults::{join_within, run_supervised, send_guarded, FailureCell};
use oij_core::instrument::JoinerReport;
use oij_core::sink::worker_sink_stack;
use oij_core::{hash_key, EngineConfig, RunStats, Sink};
use oij_index::{BackendWriter, IndexBackend, OijIndexWriter};

use crate::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use crate::sync::Mutex;
use crate::worker::{BaseMsg, Msg, QueryWorker};

/// Worker-failure attribution label for this runtime.
const ENGINE: &str = "serve";

/// Handle of one registered query, returned by
/// [`ServeRuntime::register`] and accepted by
/// [`cancel`](ServeRuntime::cancel)/[`stats`](ServeRuntime::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl QueryId {
    /// The raw numeric id (stable for the runtime's lifetime).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Budgets and stream-wide knobs of one [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission: maximum concurrently registered queries.
    pub max_queries: usize,
    /// Admission: maximum joiner threads summed over all active queries.
    pub max_total_joiners: usize,
    /// Admission: upper bound on a query's `channel_capacity` (the
    /// per-query memory budget — bounded channels are the only
    /// per-query buffering the runtime allocates).
    pub max_channel_capacity: usize,
    /// Joiner threads given to queries registered from SQL text
    /// ([`ServeRuntime::register_sql`], which has no [`EngineConfig`]).
    pub default_joiners: usize,
    /// Backend of the shared probe index. Per-query
    /// `EngineConfig::index_backend` is ignored: all queries scan the
    /// same store, so the runtime's choice wins.
    pub index_backend: IndexBackend,
    /// Ingest events between central eviction sweeps of the shared
    /// index.
    pub expire_every: usize,
    /// Overload policy: `false` (default) applies backpressure — a full
    /// query channel blocks ingest up to the query's `send_timeout`,
    /// then poisons *that query only*. `true` sheds instead: the base
    /// message is dropped for the full query and counted in its
    /// [`RunStats::shed_events`](oij_core::RunStats::shed_events),
    /// and ingest never blocks.
    pub shed_when_full: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queries: 64,
            max_total_joiners: 256,
            max_channel_capacity: 1 << 16,
            default_joiners: 1,
            index_backend: IndexBackend::default(),
            expire_every: 1024,
            shed_when_full: false,
        }
    }
}

impl ServeConfig {
    /// The default budgets (64 queries / 256 joiners / 64 Ki messages).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the shared-index backend.
    pub fn with_index_backend(mut self, backend: IndexBackend) -> Self {
        self.index_backend = backend;
        self
    }

    /// Replaces the admission budgets.
    pub fn with_budgets(mut self, queries: usize, joiners: usize, capacity: usize) -> Self {
        self.max_queries = queries;
        self.max_total_joiners = joiners;
        self.max_channel_capacity = capacity;
        self
    }

    /// Enables load shedding instead of blocking backpressure.
    pub fn with_shedding(mut self) -> Self {
        self.shed_when_full = true;
        self
    }

    /// Validates invariants; called by [`ServeRuntime::new`].
    pub fn validate(&self) -> Result<()> {
        if self.max_queries == 0 {
            return Err(Error::InvalidConfig("max_queries must be > 0".into()));
        }
        if self.max_total_joiners == 0 {
            return Err(Error::InvalidConfig("max_total_joiners must be > 0".into()));
        }
        if self.max_channel_capacity == 0 {
            return Err(Error::InvalidConfig(
                "max_channel_capacity must be > 0".into(),
            ));
        }
        if self.default_joiners == 0 || self.default_joiners > self.max_total_joiners {
            return Err(Error::InvalidConfig(format!(
                "default_joiners = {} must be in 1..={}",
                self.default_joiners, self.max_total_joiners
            )));
        }
        if self.expire_every == 0 {
            return Err(Error::InvalidConfig("expire_every must be > 0".into()));
        }
        Ok(())
    }
}

/// Live counters of one registered query
/// ([`ServeRuntime::stats`]; final numbers come from
/// [`cancel`](ServeRuntime::cancel)'s [`RunStats`]).
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// The query's handle.
    pub id: QueryId,
    /// Optional `-- name:` label carried from SQL.
    pub name: Option<String>,
    /// Joiner threads the query holds from the admission budget.
    pub joiners: usize,
    /// Events this query has ingested (probes and bases).
    pub pushed: u64,
    /// Base messages shed under overload (lossy mode only).
    pub shed: u64,
    /// Whether the query is poisoned (a worker failed or stalled); the
    /// cause is returned by [`cancel`](ServeRuntime::cancel).
    pub failed: bool,
}

/// Runtime-wide counters ([`ServeRuntime::snapshot`]).
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// Currently registered queries.
    pub active_queries: usize,
    /// Events ingested since start.
    pub events: u64,
    /// Probe tuples inserted into the shared index (each exactly once).
    pub probe_inserts: u64,
    /// Probe tuples currently retained by the shared index.
    pub retained: usize,
    /// Probe tuples evicted by the central sweeps.
    pub evicted: u64,
}

/// Admission bookkeeping, shared with any front-end thread that
/// registers or cancels queries.
struct Ledger {
    active_queries: usize,
    active_joiners: usize,
    /// Active `-- name:` labels → query id (labels are unique while
    /// registered; freed on cancel).
    names: BTreeMap<String, u64>,
}

/// One registered query's runtime state on the ingest side.
struct Query {
    name: Option<String>,
    cfg: EngineConfig,
    tracker: WatermarkTracker,
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<Option<JoinerReport>>>,
    reports: Vec<JoinerReport>,
    failures: Arc<FailureCell>,
    kill: Arc<AtomicBool>,
    retries: Arc<AtomicU64>,
    /// Per-worker acknowledged watermarks feeding the central evictor.
    acks: Vec<Arc<AtomicI64>>,
    /// First observed failure: the query stops receiving, neighbours
    /// are untouched.
    poison: Option<Error>,
    /// Per-joiner coalescing buffers (`batch_size > 1`).
    batches: Vec<Vec<BaseMsg>>,
    since_heartbeat: usize,
    pushed: u64,
    shed: u64,
    /// Probe-side lateness violations (base-side ones are counted by
    /// the workers; the sum matches a solo run's accounting).
    probe_late: u64,
    started: Option<Instant>,
}

impl Query {
    /// Routed send on the `ingest -> query` edge. Lossless mode blocks
    /// up to `send_timeout` and poisons the query on failure; lossy
    /// mode drops full-channel base traffic and counts the shed.
    fn route(&mut self, j: usize, msg: Msg, lossy: bool) -> Result<()> {
        if lossy {
            match self.senders[j].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(dropped)) => {
                    self.shed += match dropped {
                        Msg::Data(_) => 1,
                        Msg::Batch(b) => b.len() as u64,
                        // Control traffic is never shed; unreachable
                        // because heartbeats/flushes route losslessly.
                        Msg::Heartbeat(_) | Msg::Flush => 0,
                    };
                    return Ok(());
                }
                // A disconnect means the worker died: fall through to
                // the guarded path, which waits briefly for the
                // supervisor's attribution and reports the real cause.
                Err(TrySendError::Disconnected(m)) => {
                    return self.route_guarded(j, m);
                }
            }
        }
        self.route_guarded(j, msg)
    }

    fn route_guarded(&mut self, j: usize, msg: Msg) -> Result<()> {
        match send_guarded(
            &self.senders[j],
            msg,
            self.cfg.send_timeout,
            ENGINE,
            j,
            &self.failures,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Routes one base message, coalescing per destination when the
    /// query asked for batching.
    fn route_base(&mut self, msg: BaseMsg, lossy: bool) -> Result<()> {
        let j = (hash_key(msg.tuple.key) % self.cfg.joiners as u64) as usize;
        if self.cfg.batch_size > 1 {
            self.batches[j].push(msg);
            if self.batches[j].len() >= self.cfg.batch_size {
                let out = std::mem::take(&mut self.batches[j]);
                // PROTO: ingest-query.stream
                return self.route(j, Msg::Batch(out), lossy);
            }
            Ok(())
        } else {
            // PROTO: ingest-query.stream
            self.route(j, Msg::Data(Box::new(msg)), lossy)
        }
    }

    /// Hands over every partially filled batch buffer.
    fn flush_batches(&mut self, lossy: bool) -> Result<()> {
        for j in 0..self.batches.len() {
            if self.batches[j].is_empty() {
                continue;
            }
            let out = std::mem::take(&mut self.batches[j]);
            // PROTO: ingest-query.stream
            self.route(j, Msg::Batch(out), lossy)?;
        }
        Ok(())
    }

    /// Ends the query: flushes, joins every worker, and merges its
    /// reports — or returns the first failure (the poison, if already
    /// set). Workers are always joined, even on the failure path.
    fn shutdown(&mut self) -> Result<RunStats> {
        if self.poison.is_none() {
            // Terminal flush; failures here poison and fall through to
            // the joins below so no thread leaks.
            let _ = self.flush_batches(false);
            for j in 0..self.senders.len() {
                if self.poison.is_some() {
                    break;
                }
                // PROTO: ingest-query.closed
                let _ = self.route(j, Msg::Flush, false);
            }
        }
        if self.poison.is_some() {
            // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
            self.kill.store(true, Ordering::Release);
        }
        self.senders.clear();
        let mut first_err: Option<Error> = None;
        for (j, handle) in self.handles.drain(..).enumerate() {
            let (report, err) = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                j,
                &self.failures,
                &self.kill,
            );
            if let Some(r) = report {
                self.reports.push(r);
            }
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = self.poison.clone().or(first_err) {
            self.poison = Some(e.clone());
            return Err(e);
        }
        let elapsed = self
            .started
            .map(|s| s.elapsed())
            .unwrap_or_else(|| std::time::Duration::from_nanos(1));
        let reports = std::mem::take(&mut self.reports);
        let mut stats = RunStats::from_reports(self.pushed, elapsed, reports, 0);
        stats.late_violations += self.probe_late;
        stats.shed_events = self.shed;
        // ORDERING: Relaxed — statistics counter; workers are already joined.
        stats.sink_retries = self.retries.load(Ordering::Relaxed);
        Ok(stats)
    }
}

impl Drop for Query {
    fn drop(&mut self) {
        // Dropped without shutdown (runtime dropped mid-serve): raise
        // the kill flag first, disconnect, then join with a deadline.
        // ORDERING: Release — pairs with the workers' Acquire `kill` loads (fault supervision paths), so teardown state precedes the flag.
        self.kill.store(true, Ordering::Release);
        self.senders.clear();
        while let Some(handle) = self.handles.pop() {
            let _ = join_within(
                handle,
                self.cfg.send_timeout,
                ENGINE,
                self.handles.len(),
                &self.failures,
                &self.kill,
            );
        }
    }
}

/// The serving runtime. One instance per ingested stream; see the
/// [crate docs](self) for the model.
///
/// The runtime itself is driven from one thread (`&mut self` ingest —
/// the single-writer contract of the shared index); its workers are
/// supervised background threads. A debug-assertions tripwire flags any
/// unsound future attempt to touch the writer concurrently.
pub struct ServeRuntime {
    cfg: ServeConfig,
    writer: BackendWriter,
    probe_inserts: u64,
    queries: BTreeMap<u64, Query>,
    /// Final stats of cleanly cancelled queries (observability after
    /// cancel, e.g. the CLI's `STATS`).
    retired: BTreeMap<u64, RunStats>,
    next_id: u64,
    ledger: Mutex<Ledger>,
    /// Debug tripwire for the single-writer invariant (only read under
    /// `debug_assertions`; release builds keep the ingest path free).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    write_busy: AtomicBool,
    origin: Instant,
    events: u64,
    since_expire: usize,
    evicted: u64,
}

impl ServeRuntime {
    /// A runtime with no registered queries.
    pub fn new(cfg: ServeConfig) -> Result<Self> {
        cfg.validate()?;
        let (writer, _) = cfg.index_backend.build();
        Ok(ServeRuntime {
            writer,
            cfg,
            probe_inserts: 0,
            queries: BTreeMap::new(),
            retired: BTreeMap::new(),
            next_id: 0,
            ledger: Mutex::new(
                "serve_admission",
                Ledger {
                    active_queries: 0,
                    active_joiners: 0,
                    names: BTreeMap::new(),
                },
            ),
            write_busy: AtomicBool::new(false),
            origin: Instant::now(),
            events: 0,
            since_expire: 0,
            evicted: 0,
        })
    }

    /// Registers a query given as OpenMLDB SQL text (one statement; an
    /// optional `-- name:` label names the plan). Uses
    /// [`ServeConfig::default_joiners`] and engine defaults.
    pub fn register_sql(&mut self, sql: &str, sink: Sink) -> Result<QueryId> {
        let parsed = oij_sql::parse(sql)?;
        let query = parsed.to_oij_query()?;
        let cfg = EngineConfig::new(query, self.cfg.default_joiners)?;
        self.register(cfg, sink, parsed.name)
    }

    /// Registers every `;`-separated statement of a SQL script,
    /// returning the ids in statement order. All-or-nothing: a failed
    /// admission mid-script cancels the statements already admitted.
    pub fn register_script(&mut self, sql: &str, sink: &Sink) -> Result<Vec<QueryId>> {
        let parsed = oij_sql::parse_many(sql)?;
        let mut ids = Vec::with_capacity(parsed.len());
        for stmt in parsed {
            let lowered = stmt.to_oij_query().and_then(|q| {
                EngineConfig::new(q, self.cfg.default_joiners)
                    .and_then(|cfg| self.register(cfg, sink.clone(), stmt.name.clone()))
            });
            match lowered {
                Ok(id) => ids.push(id),
                Err(e) => {
                    for id in ids {
                        let _ = self.cancel(id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(ids)
    }

    /// Registers a query with an explicit engine configuration —
    /// joiners, channel capacity, batching, fault plan (tests) — and an
    /// optional unique name. Runs the admission checks and spawns the
    /// query's supervised workers; ingest is **not** paused.
    pub fn register(
        &mut self,
        cfg: EngineConfig,
        sink: Sink,
        name: Option<String>,
    ) -> Result<QueryId> {
        cfg.validate()?;
        if cfg.query.emit != EmitMode::Eager {
            return Err(Error::Admission(
                "only eager emission is served (watermark emission needs per-query \
                 buffering the shared-ingest runtime does not provide)"
                    .into(),
            ));
        }
        if cfg.durability.is_some() {
            return Err(Error::Admission(
                "durability is per-engine-run; the serving runtime does not write-ahead-log".into(),
            ));
        }
        if cfg.channel_capacity > self.cfg.max_channel_capacity {
            return Err(Error::Admission(format!(
                "channel_capacity {} exceeds the per-query memory budget of {} messages",
                cfg.channel_capacity, self.cfg.max_channel_capacity
            )));
        }
        let id = self.next_id;
        {
            // Reserve budget before spawning anything.
            // LOCK: serve_admission
            let mut ledger = self.ledger.lock();
            if ledger.active_queries + 1 > self.cfg.max_queries {
                return Err(Error::Admission(format!(
                    "concurrent query limit of {} reached",
                    self.cfg.max_queries
                )));
            }
            if ledger.active_joiners + cfg.joiners > self.cfg.max_total_joiners {
                return Err(Error::Admission(format!(
                    "joiner budget exhausted: {} in use of {}, query wants {}",
                    ledger.active_joiners, self.cfg.max_total_joiners, cfg.joiners
                )));
            }
            if let Some(n) = &name {
                if ledger.names.contains_key(n) {
                    return Err(Error::Admission(format!(
                        "query name '{n}' is already registered"
                    )));
                }
                ledger.names.insert(n.clone(), id);
            }
            ledger.active_queries += 1;
            ledger.active_joiners += cfg.joiners;
        }
        match self.spawn_query(id, cfg, sink, name.clone()) {
            Ok(()) => {
                self.next_id += 1;
                Ok(QueryId(id))
            }
            Err(e) => {
                // Release the reservation; nothing was spawned durably
                // (spawn_query joins what it managed to start).
                // LOCK: serve_admission
                let mut ledger = self.ledger.lock();
                ledger.active_queries -= 1;
                ledger.active_joiners -= self
                    .queries
                    .get(&id)
                    .map(|q| q.cfg.joiners)
                    .unwrap_or_default();
                if let Some(n) = &name {
                    ledger.names.remove(n);
                }
                Err(e)
            }
        }
    }

    fn spawn_query(
        &mut self,
        id: u64,
        mut cfg: EngineConfig,
        sink: Sink,
        name: Option<String>,
    ) -> Result<()> {
        // All queries scan the shared store; the runtime's backend wins.
        cfg.index_backend = self.cfg.index_backend;
        let failures = Arc::new(FailureCell::new());
        let kill = Arc::new(AtomicBool::new(false));
        let retries = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(cfg.joiners);
        let mut handles = Vec::with_capacity(cfg.joiners);
        let mut acks = Vec::with_capacity(cfg.joiners);
        for w in 0..cfg.joiners {
            // CHANNEL: ingest -> query (one bounded queue per worker of one registered plan)
            let (tx, rx) = bounded::<Msg>(cfg.channel_capacity);
            let worker_sink =
                worker_sink_stack(&cfg, w, sink.clone(), &None, &failures, &retries, &kill);
            let ack = Arc::new(AtomicI64::new(i64::MIN));
            let worker = QueryWorker::new(
                &cfg,
                worker_sink,
                self.origin,
                self.writer.reader(),
                Arc::clone(&ack),
            );
            let faults = cfg.faults.for_worker(w, ENGINE, w, &failures);
            let cell = Arc::clone(&failures);
            let wkill = Arc::clone(&kill);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("oij-serve-q{id}-w{w}"))
                    .spawn(move || {
                        run_supervised(ENGINE, w, &cell, move || worker.run(rx, faults, wkill))
                    })
                    .map_err(|e| Error::InvalidState(format!("spawn failed: {e}")))?,
            );
            senders.push(tx);
            acks.push(ack);
        }
        let lateness = cfg.query.window.lateness;
        let batches = (0..cfg.joiners).map(|_| Vec::new()).collect();
        self.queries.insert(
            id,
            Query {
                name,
                tracker: WatermarkTracker::new(lateness),
                senders,
                handles,
                reports: Vec::new(),
                failures,
                kill,
                retries,
                acks,
                poison: None,
                batches,
                since_heartbeat: 0,
                pushed: 0,
                shed: 0,
                probe_late: 0,
                started: None,
                cfg,
            },
        );
        Ok(())
    }

    /// Deregisters a query without draining shared ingest: flushes its
    /// workers, joins them, frees its admission budget, and returns its
    /// final [`RunStats`] — or the failure that poisoned it
    /// ([`Error::WorkerFailed`]/[`Error::WorkerStalled`], attributable
    /// to this query alone).
    pub fn cancel(&mut self, id: QueryId) -> Result<RunStats> {
        let mut q = self
            .queries
            .remove(&id.0)
            .ok_or_else(|| Error::InvalidState(format!("unknown query {id}")))?;
        {
            // LOCK: serve_admission
            let mut ledger = self.ledger.lock();
            ledger.active_queries -= 1;
            ledger.active_joiners -= q.cfg.joiners;
            if let Some(n) = &q.name {
                ledger.names.remove(n);
            }
        }
        let result = q.shutdown();
        if let Ok(stats) = &result {
            self.retired.insert(id.0, stats.clone());
        }
        result
    }

    /// Cancels every remaining query (shutdown path); per-query results
    /// in registration order.
    pub fn finish(&mut self) -> Vec<(QueryId, Result<RunStats>)> {
        let ids: Vec<u64> = self.queries.keys().copied().collect();
        ids.into_iter()
            .map(|id| (QueryId(id), self.cancel(QueryId(id))))
            .collect()
    }

    /// Resolves an active query's `-- name:` label.
    pub fn lookup(&self, name: &str) -> Option<QueryId> {
        // LOCK: serve_admission
        self.ledger.lock().names.get(name).copied().map(QueryId)
    }

    /// Live per-query counters, in registration order.
    pub fn stats(&self) -> Vec<QueryStats> {
        self.queries
            .iter()
            .map(|(&id, q)| QueryStats {
                id: QueryId(id),
                name: q.name.clone(),
                joiners: q.cfg.joiners,
                pushed: q.pushed,
                shed: q.shed,
                failed: q.poison.is_some(),
            })
            .collect()
    }

    /// Final stats of a cleanly cancelled query, if retained.
    pub fn retired_stats(&self, id: QueryId) -> Option<&RunStats> {
        self.retired.get(&id.0)
    }

    /// Runtime-wide counters.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            active_queries: self.queries.len(),
            events: self.events,
            probe_inserts: self.probe_inserts,
            retained: self.writer.len(),
            evicted: self.evicted,
        }
    }

    /// Feeds one event to every registered query. Probes are indexed
    /// once in the shared store; bases fan out with a visibility bound.
    /// Per-query failures are contained (the failing query is poisoned
    /// and skipped; see [`stats`](Self::stats) and
    /// [`cancel`](Self::cancel)) — `push` itself only fails on runtime-
    /// level misuse.
    pub fn push(&mut self, event: Event) -> Result<()> {
        self.push_at(event, Instant::now())
    }

    /// [`push`](Self::push) with an explicit arrival instant, from which
    /// per-row latency is measured. Open-loop load generators pass the
    /// event's **scheduled** arrival here (which may be in the past when
    /// the feeder fell behind), so queueing delay accumulated while
    /// ingest was backed up is charged to the runtime instead of being
    /// silently omitted (coordinated omission).
    pub fn push_at(&mut self, event: Event, arrival: Instant) -> Result<()> {
        match event.kind {
            // A flush marker ends one *feed*, not the service: queries
            // are long-running and are ended individually by `cancel`.
            EventKind::Flush => Ok(()),
            EventKind::Data { side, tuple } => {
                self.dispatch(event.seq, side, tuple, arrival);
                Ok(())
            }
        }
    }

    fn dispatch(&mut self, seq: u64, side: Side, tuple: Tuple, now: Instant) {
        self.events += 1;
        if side == Side::Probe {
            self.writer_enter();
            self.writer.insert(tuple.clone());
            self.writer_exit();
            self.probe_inserts += 1;
        }
        let bound = self.probe_inserts;
        let lossy = self.cfg.shed_when_full;
        for q in self.queries.values_mut() {
            if q.poison.is_some() {
                continue;
            }
            if q.started.is_none() {
                q.started = Some(now);
            }
            // Pre-observation stamp, exactly as the engine drivers do.
            // STAMP: stamp-observe.pre
            let watermark = q.tracker.current().time();
            // STAMP: stamp-observe.post
            q.tracker.observe(tuple.ts);
            q.pushed += 1;
            match side {
                Side::Probe => {
                    if tuple.ts < watermark {
                        q.probe_late += 1;
                    }
                }
                Side::Base => {
                    let msg = BaseMsg {
                        tuple: tuple.clone(),
                        seq,
                        arrival: now,
                        watermark,
                        bound,
                    };
                    // Isolation: a failed route poisons q only.
                    let _ = q.route_base(msg, lossy);
                }
            }
            q.since_heartbeat += 1;
            if q.since_heartbeat >= q.cfg.heartbeat_every && q.poison.is_none() {
                q.since_heartbeat = 0;
                // Flush-before-heartbeat: a heartbeat must never pass
                // tuples still parked in a coalescing buffer.
                // STAMP: flush-heartbeat.pre
                let flushed = q.flush_batches(lossy);
                if flushed.is_ok() {
                    for j in 0..q.senders.len() {
                        // Control traffic always routes losslessly.
                        // STAMP: flush-heartbeat.post
                        // PROTO: ingest-query.stream
                        if q.route(j, Msg::Heartbeat(watermark), false).is_err() {
                            break;
                        }
                    }
                }
            }
        }
        self.since_expire += 1;
        if self.since_expire >= self.cfg.expire_every {
            self.since_expire = 0;
            self.expire();
        }
    }

    /// Central eviction of the shared index: conservative over every
    /// query's *acknowledged* progress, so a backlogged worker's pending
    /// scans never lose probes. (A per-query engine evicts at its own
    /// `last_wm − window length`; the shared store must take the
    /// minimum, and only over watermarks the workers have actually
    /// caught up to.)
    fn expire(&mut self) {
        let mut bound: Option<Timestamp> = None;
        for q in self.queries.values() {
            if q.poison.is_some() {
                // A poisoned query's workers may be gone and will never
                // acknowledge again; its output is already void, so it
                // no longer pins retention.
                continue;
            }
            let mut q_min = i64::MAX;
            for ack in &q.acks {
                // ORDERING: Acquire — pairs with the workers' Release fetch_max publications, so acknowledged scans are complete before we trust the watermark.
                q_min = q_min.min(ack.load(Ordering::Acquire));
            }
            if q_min == i64::MIN {
                // Some worker has not acknowledged anything yet
                // (registered mid-stream or idle slice): retain all.
                return;
            }
            let cand = Timestamp::from_micros(q_min).saturating_sub(q.cfg.query.window.length());
            bound = Some(match bound {
                None => cand,
                Some(b) => b.min(cand),
            });
        }
        if let Some(b) = bound {
            if b > Timestamp::MIN {
                self.writer_enter();
                self.evicted += self.writer.evict_below(b) as u64;
                self.writer_exit();
            }
        }
    }

    /// Single-writer tripwire (debug builds): every mutation of the
    /// shared index must be bracketed by enter/exit; any overlap —
    /// which the `&mut self` API should make impossible — panics
    /// instead of corrupting readers.
    #[inline]
    fn writer_enter(&self) {
        #[cfg(debug_assertions)]
        {
            // ORDERING: AcqRel — the swap both claims the writer (Acquire: later index writes cannot float above it) and publishes the claim (Release).
            let was = self.write_busy.swap(true, Ordering::AcqRel);
            assert!(
                !was,
                "single-writer invariant violated: concurrent access to the shared index writer"
            );
        }
    }

    #[inline]
    fn writer_exit(&self) {
        #[cfg(debug_assertions)]
        {
            // ORDERING: Release — index writes made under the claim are published before it is dropped.
            self.write_busy.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{AggSpec, Duration, OijQuery};
    use oij_core::faults::FaultPlan;
    use oij_core::{KeyOij, OijEngine};

    fn query(pre: i64, lateness: i64) -> OijQuery {
        OijQuery::builder()
            .preceding(Duration::from_micros(pre))
            .lateness(Duration::from_micros(lateness))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Eager)
            .build()
            .unwrap()
    }

    fn events(n: u64) -> Vec<Event> {
        // Deterministic interleaved stream over a handful of keys with
        // mild compliant disorder.
        (0..n)
            .map(|i| {
                let ts = (i * 7 % 9 + i * 5) as i64;
                let side = if i % 3 == 0 { Side::Base } else { Side::Probe };
                Event::data(
                    i,
                    side,
                    Tuple::new(Timestamp::from_micros(ts), i % 4, i as f64 * 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn one_served_query_matches_a_solo_engine_run() {
        let cfg = EngineConfig::new(query(40, 20), 2).unwrap();
        let (solo_sink, solo_rows) = Sink::collect();
        let mut solo = KeyOij::spawn(cfg.clone(), solo_sink).unwrap();
        let mut rt = ServeRuntime::new(ServeConfig::new()).unwrap();
        let (sink, rows) = Sink::collect();
        let id = rt.register(cfg, sink, None).unwrap();
        for ev in events(500) {
            solo.push(ev.clone()).unwrap();
            rt.push(ev).unwrap();
        }
        let solo_stats = solo.finish().unwrap();
        let stats = rt.cancel(id).unwrap();
        let mut a = solo_rows.lock().clone();
        let mut b = rows.lock().clone();
        a.sort_by_key(|r| r.seq);
        b.sort_by_key(|r| r.seq);
        assert_eq!(a, b, "served rows must be bit-identical to the solo run");
        assert_eq!(stats.results, solo_stats.results);
        assert_eq!(stats.late_violations, solo_stats.late_violations);
        assert_eq!(stats.shed_events, 0);
    }

    #[test]
    fn admission_budgets_reject_with_reasons() {
        let mut rt = ServeRuntime::new(ServeConfig::new().with_budgets(2, 3, 1 << 12)).unwrap();
        let cfg = |j| EngineConfig::new(query(10, 0), j).unwrap();
        let a = rt.register(cfg(2), Sink::null(), Some("a".into())).unwrap();
        // Joiner budget: 2 of 3 in use, next wants 2.
        let err = rt.register(cfg(2), Sink::null(), None).unwrap_err();
        assert!(matches!(err, Error::Admission(ref r) if r.contains("joiner budget")));
        let _b = rt.register(cfg(1), Sink::null(), Some("b".into())).unwrap();
        // Query-count limit.
        let err = rt.register(cfg(1), Sink::null(), None).unwrap_err();
        assert!(matches!(err, Error::Admission(ref r) if r.contains("query limit")));
        // Cancelling frees the budget.
        rt.cancel(a).unwrap();
        // Duplicate name while active.
        let err = rt
            .register(cfg(1), Sink::null(), Some("b".into()))
            .unwrap_err();
        assert!(matches!(err, Error::Admission(ref r) if r.contains("already registered")));
        let a2 = rt.register(cfg(2), Sink::null(), Some("a".into())).unwrap();
        assert_eq!(rt.lookup("a"), Some(a2));
        // Memory budget.
        let mut big = cfg(1);
        big.channel_capacity = 1 << 13;
        let err = rt.register(big, Sink::null(), None).unwrap_err();
        assert!(matches!(err, Error::Admission(ref r) if r.contains("memory budget")));
        // Watermark emission is not served.
        let wm_query = OijQuery::builder()
            .preceding(Duration::from_micros(10))
            .agg(AggSpec::Sum)
            .emit(EmitMode::Watermark)
            .build()
            .unwrap();
        let err = rt
            .register(EngineConfig::new(wm_query, 1).unwrap(), Sink::null(), None)
            .unwrap_err();
        assert!(matches!(err, Error::Admission(ref r) if r.contains("eager")));
    }

    #[test]
    fn sql_registration_carries_names() {
        let mut rt = ServeRuntime::new(ServeConfig::new()).unwrap();
        let sql = "-- name: spend\n\
                   SELECT SUM(value) OVER w FROM base WINDOW w AS (UNION probe \
                   PARTITION BY key ORDER BY ts ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)";
        let id = rt.register_sql(sql, Sink::null()).unwrap();
        assert_eq!(rt.lookup("spend"), Some(id));
        let stats = rt.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name.as_deref(), Some("spend"));
        rt.cancel(id).unwrap();
        assert_eq!(rt.lookup("spend"), None);
        assert!(rt.retired_stats(id).is_some());
    }

    #[test]
    fn a_panicking_query_is_isolated_from_its_neighbour() {
        let mut rt = ServeRuntime::new(ServeConfig::new()).unwrap();
        let cfg = EngineConfig::new(query(40, 20), 1).unwrap();
        // Healthy twin for comparison.
        let (sink_b, rows_b) = Sink::collect();
        let b = rt.register(cfg.clone(), sink_b, None).unwrap();
        let mut bad = cfg.clone();
        bad.faults = FaultPlan::none().panic_at(0, 10, "injected worker panic");
        let a = rt.register(bad, Sink::null(), None).unwrap();
        for ev in events(400) {
            rt.push(ev).unwrap();
        }
        let err = rt.cancel(a).unwrap_err();
        assert!(matches!(
            err,
            Error::WorkerFailed {
                engine: "serve",
                ..
            }
        ));
        // B is bit-identical to a solo run over the same events.
        let (solo_sink, solo_rows) = Sink::collect();
        let mut solo = KeyOij::spawn(cfg, solo_sink).unwrap();
        for ev in events(400) {
            solo.push(ev).unwrap();
        }
        solo.finish().unwrap();
        rt.cancel(b).unwrap();
        let mut got = rows_b.lock().clone();
        let mut want = solo_rows.lock().clone();
        got.sort_by_key(|r| r.seq);
        want.sort_by_key(|r| r.seq);
        assert_eq!(got, want, "the healthy neighbour must be unaffected");
    }

    #[test]
    fn eviction_keeps_the_shared_store_bounded() {
        let mut rt = ServeRuntime::new(ServeConfig {
            expire_every: 128,
            ..ServeConfig::new()
        })
        .unwrap();
        let mut cfg = EngineConfig::new(query(50, 10), 1).unwrap();
        cfg.heartbeat_every = 64;
        let id = rt.register(cfg, Sink::null(), None).unwrap();
        for i in 0..20_000u64 {
            let side = if i % 8 == 0 { Side::Base } else { Side::Probe };
            rt.push(Event::data(
                i,
                side,
                Tuple::new(Timestamp::from_micros(i as i64), i % 3, 1.0),
            ))
            .unwrap();
        }
        let snap = rt.snapshot();
        assert!(snap.evicted > 0, "central eviction must have fired");
        assert!(
            snap.retained < 5_000,
            "retention must track the window, not the stream: {} tuples live",
            snap.retained
        );
        rt.cancel(id).unwrap();
    }
}
