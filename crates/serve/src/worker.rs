//! One registered query's worker threads.
//!
//! A [`QueryWorker`] is the serving-runtime analogue of an engine joiner:
//! it receives **base** tuples for its hash slice of the key space over a
//! bounded `ingest -> query` channel and answers each one with a
//! seq-bounded window scan of the *shared* probe index (DESIGN.md §13).
//! Probe tuples never travel through these channels — the ingest thread
//! inserts each probe exactly once into the shared single-writer index,
//! and every base message carries the writer's insert count at dispatch
//! time as its visibility `bound`. Filtering the scan to `seq < bound`
//! recovers exactly the probe prefix a solo engine run would have indexed
//! when that base arrived, which is what makes N concurrently served
//! queries bit-identical to N solo runs.

use std::sync::Arc;
use std::time::Instant;

use crossbeam_channel::Receiver;

use oij_agg::FullWindowAgg;
use oij_common::{FeatureRow, Timestamp, Tuple};
use oij_core::config::EngineConfig;
use oij_core::faults::{FaultAction, WorkerFaults};
use oij_core::instrument::{JoinerInstruments, JoinerReport};
use oij_core::sink::Sink;
use oij_index::{BackendReader, OijIndexReader};

use crate::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// One base tuple dispatched to a query worker.
///
/// `bound` is the shared writer's probe-insert count read on the ingest
/// thread immediately before dispatch; the channel send publishes every
/// insert below it (happens-before), so the worker's filtered scan sees
/// exactly that prefix — never a torn one.
#[derive(Debug, Clone)]
pub(crate) struct BaseMsg {
    /// The base tuple itself.
    pub tuple: Tuple,
    /// Global ingest sequence number (row identity, as in solo runs).
    pub seq: u64,
    /// Arrival instant (latency accounting).
    pub arrival: Instant,
    /// The query's pre-observation watermark stamp for this event.
    pub watermark: Timestamp,
    /// Shared-index visibility bound: number of probes inserted before
    /// this event was dispatched.
    pub bound: u64,
}

/// Messages on the `ingest -> query` edge (`lint.toml [protocol]`:
/// `(data | batch | heartbeat)* finish`).
pub(crate) enum Msg {
    /// One base tuple.
    Data(Box<BaseMsg>),
    /// A coalesced run of base tuples (per-query `batch_size > 1`).
    Batch(Vec<BaseMsg>),
    /// Watermark heartbeat (keeps idle workers' acknowledgements moving).
    Heartbeat(Timestamp),
    /// Terminal: no more input for this query.
    Flush,
}

/// The state owned by one query worker thread.
pub(crate) struct QueryWorker {
    cfg: EngineConfig,
    sink: Sink,
    inst: JoinerInstruments,
    /// Cloned reader over the runtime's shared probe index.
    reader: BackendReader,
    /// Monotone acknowledged watermark (µs) published to the central
    /// evictor: the runtime may only evict below the *minimum* of these
    /// across all workers of all queries, minus the window extent, so a
    /// backlogged worker's pending scans keep their probes.
    ack: Arc<AtomicI64>,
    results: u64,
}

impl QueryWorker {
    pub(crate) fn new(
        cfg: &EngineConfig,
        sink: Sink,
        origin: Instant,
        reader: BackendReader,
        ack: Arc<AtomicI64>,
    ) -> Self {
        QueryWorker {
            inst: JoinerInstruments::with_edge(&cfg.instrument, origin, "ingest-query"),
            cfg: cfg.clone(),
            sink,
            reader,
            ack,
            results: 0,
        }
    }

    /// The worker loop: runs until the terminal `Flush` (or a fault-plan
    /// exit), then reports. Panics unwind into the supervisor
    /// (`run_supervised`), which records them in the query's failure
    /// cell — one query's panic never reaches its neighbours.
    pub(crate) fn run(
        mut self,
        rx: Receiver<Msg>,
        faults: Option<WorkerFaults>,
        kill: Arc<AtomicBool>,
    ) -> JoinerReport {
        let timeline_on = self.inst.timeline.is_some();
        let mut ordinal = 0u64;
        for msg in rx {
            match msg {
                Msg::Flush => {
                    self.inst.proto.finish();
                    break;
                }
                Msg::Heartbeat(wm) => {
                    self.inst.proto.heartbeat(wm);
                    self.acknowledge(wm);
                }
                Msg::Data(data) => {
                    self.inst.proto.data(data.watermark);
                    if let Some(f) = &faults {
                        let action = f.before_message(ordinal, &kill);
                        ordinal += 1;
                        if action == FaultAction::Exit {
                            return self.report();
                        }
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    self.handle(*data);
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                }
                Msg::Batch(batch) => {
                    self.inst.record_batch(batch.len());
                    self.inst.proto.batch(batch.len());
                    for m in &batch {
                        self.inst.proto.data(m.watermark);
                    }
                    let busy_start = timeline_on.then(Instant::now);
                    for m in batch {
                        if let Some(f) = &faults {
                            // Fault ordinals address individual base
                            // messages, so injection points fire at the
                            // same message on batched and unbatched runs.
                            let action = f.before_message(ordinal, &kill);
                            ordinal += 1;
                            if action == FaultAction::Exit {
                                return self.report();
                            }
                        }
                        self.handle(m);
                    }
                    if let Some(s) = busy_start {
                        self.inst.record_busy(s);
                    }
                }
            }
        }
        self.report()
    }

    fn report(self) -> JoinerReport {
        JoinerReport {
            instruments: self.inst,
            results: self.results,
        }
    }

    /// Publishes watermark progress to the central evictor.
    fn acknowledge(&self, wm: Timestamp) {
        // ORDERING: Release — the evictor's Acquire load must see this
        // worker's completed scans before trusting the acknowledgement;
        // fetch_max keeps the counter monotone under reordered stamps.
        self.ack.fetch_max(wm.as_micros(), Ordering::Release);
    }

    /// Answers one base tuple: a window scan of the shared index in
    /// `(ts, seq)` order, filtered to the probes visible at dispatch.
    /// The scan order and the `f64` accumulation order are therefore
    /// identical to a solo engine run's, bit for bit.
    fn handle(&mut self, msg: BaseMsg) {
        self.inst.processed += 1;
        if msg.tuple.ts < msg.watermark {
            self.inst.late_violations += 1;
        }
        let window = self.cfg.query.window.window_of(msg.tuple.ts);
        let mut agg = FullWindowAgg::new(self.cfg.query.agg);
        let bound = msg.bound;
        let visited = self.reader.scan_window_seq(msg.tuple.key, window, |t, s| {
            if s < bound {
                agg.add(t.value);
            }
        }) as u64;
        let matched = agg.count();
        self.inst.record_effectiveness(matched, visited);
        self.sink.emit(FeatureRow::new(
            msg.tuple.ts,
            msg.tuple.key,
            msg.seq,
            agg.finish(),
            matched,
        ));
        self.results += 1;
        self.inst.record_latency(msg.arrival);
        self.acknowledge(msg.watermark);
    }
}
