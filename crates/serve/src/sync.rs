//! Facade over the synchronization primitives the serving runtime uses.
//!
//! Mirrors `oij-core`'s `sync` module (see DESIGN.md §8): `cargo xtask
//! lint` rule R2 enforces that every module in this crate imports
//! atomics and locks from here, never `std::sync` directly, so the
//! import-surface audit stays complete. Unlike the engine crates,
//! `oij-serve` is not in the loom model-checking set (`lint.toml
//! [loom].crates`): its cross-thread protocol is one bounded channel per
//! worker plus monotone acknowledgement counters, both already covered
//! by the engine-side models, so there is no `--cfg loom` arm here. The
//! locks come from `oij_common::lockdep` and participate in the runtime
//! lock-order witness under `RUSTFLAGS="--cfg lockdep"` (rule R6).

pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
}

pub(crate) use oij_common::lockdep::Mutex;
