//! Class-carrying lock wrappers with a runtime lock-order witness.
//!
//! The static half of the workspace's deadlock-freedom story is `cargo
//! xtask lint` rule R6: every acquisition site is tagged with a declared
//! lock class and lexical nesting must respect the `[lockorder]` partial
//! order in `lint.toml`. This module is the dynamic half — a miniature
//! lockdep. [`Mutex`] and [`RwLock`] carry their class name; every
//! acquisition pushes onto a thread-local held stack, and every *nested*
//! acquisition records a `held_class -> acquired_class` edge in a global
//! observed-order graph. Two protocol violations panic on the spot:
//!
//! - **cycle**: an edge whose addition would make the observed graph
//!   cyclic — two threads that ever nest `A -> B` and `B -> A` can
//!   deadlock, whether or not they did this run;
//! - **re-entrancy**: acquiring a class already held by this thread
//!   (std locks are not re-entrant), reported with both site locations.
//!
//! Instrumentation is compiled under `--cfg lockdep` (and in this
//! crate's own unit tests); otherwise the wrappers are thin non-poisoning
//! shims over `std::sync` and the witness costs nothing. Under
//! `OIJ_LOCKDEP_LOG=<path>` every first-observed class and edge is
//! appended to `<path>`; `cargo xtask lockdep-check <path>` then verifies
//! observed ⊆ declared against `lint.toml`.
//!
//! Engines never name this module directly — their `sync.rs` facades
//! re-export it, so the splice point is the same one loom uses.

use std::sync::PoisonError;

/// A class-carrying, non-poisoning [`std::sync::Mutex`].
///
/// `class` must be one of the lock classes declared in `lint.toml
/// [lockorder]` — rule R6 checks the acquisition-site tags, the witness
/// checks the runtime graph, and `cargo xtask lockdep-check` ties the
/// two together.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    class: &'static str,
    inner: std::sync::Mutex<T>,
}

/// A class-carrying, non-poisoning [`std::sync::RwLock`].
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    class: &'static str,
    inner: std::sync::RwLock<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex of lock class `class`.
    pub fn new(class: &'static str, value: T) -> Self {
        Mutex {
            class,
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recording the acquisition in the witness.
    ///
    /// Non-poisoning: a panic while holding the guard does not wedge
    /// later acquisitions (the supervisors already translate worker
    /// panics into `WorkerFailure` values).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = witness::acquire(self.class);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Acquires the mutex if it is free; `None` if it would block.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // A try-acquisition that succeeded holds the lock like any other:
        // it participates in ordering (and can complete a deadlock cycle
        // as the loser's partner), so it is recorded the same way.
        Some(MutexGuard {
            inner,
            _token: witness::acquire(self.class),
        })
    }
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock of lock class `class`.
    pub fn new(class: &'static str, value: T) -> Self {
        RwLock {
            class,
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recording the acquisition.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = witness::acquire(self.class);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }

    /// Acquires the exclusive write guard, recording the acquisition.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = witness::acquire(self.class);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _token: token,
        }
    }
}

macro_rules! guard {
    ($(#[$doc:meta])* $name:ident, $std:ident, $($mut_:tt)?) => {
        $(#[$doc])*
        #[must_use = "releasing the guard unlocks immediately"]
        pub struct $name<'a, T: ?Sized> {
            inner: std::sync::$std<'a, T>,
            _token: witness::HeldToken,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        $(
            impl<T: ?Sized> std::ops::DerefMut for $name<'_, T> {
                fn deref_mut(&mut self) -> &$mut_ T {
                    &mut self.inner
                }
            }
        )?
    };
}

guard!(
    /// Guard returned by [`Mutex::lock`]; releases on drop.
    MutexGuard, MutexGuard, mut
);
guard!(
    /// Shared guard returned by [`RwLock::read`]; releases on drop.
    RwLockReadGuard, RwLockReadGuard,
);
guard!(
    /// Exclusive guard returned by [`RwLock::write`]; releases on drop.
    RwLockWriteGuard, RwLockWriteGuard, mut
);

#[cfg(any(lockdep, test))]
mod witness {
    //! The active witness: thread-local held stack + global order graph.

    use std::cell::RefCell;
    use std::io::Write as _;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// One lock currently held by this thread.
    struct HeldLock {
        class: &'static str,
        site: &'static Location<'static>,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    }

    /// Pops its acquisition off the thread-local held stack on drop.
    pub(crate) struct HeldToken {
        id: u64,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|h| h.borrow_mut().retain(|l| l.id != self.id));
        }
    }

    /// One first-observed nesting, kept for the graph and the log.
    struct ObservedEdge {
        from: &'static str,
        to: &'static str,
    }

    /// The global observed-order graph. Guarded by a plain std mutex —
    /// the witness must not recurse into itself.
    #[derive(Default)]
    struct Graph {
        classes: Vec<(&'static str, String)>,
        edges: Vec<ObservedEdge>,
    }

    impl Graph {
        fn reachable(&self, from: &str, to: &str) -> bool {
            let mut stack = vec![from];
            let mut seen = vec![from];
            while let Some(cur) = stack.pop() {
                for e in &self.edges {
                    if e.from == cur && !seen.contains(&e.to) {
                        if e.to == to {
                            return true;
                        }
                        seen.push(e.to);
                        stack.push(e.to);
                    }
                }
            }
            false
        }
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(Mutex::default)
    }

    /// Classes with this prefix (the witness's own self-tests) are
    /// tracked for cycle/re-entrancy detection but never logged, so a
    /// workspace-wide `OIJ_LOCKDEP_LOG` capture records only the
    /// production lock graph and `cargo xtask lockdep-check` does not
    /// demand the synthetic test classes be declared in lint.toml.
    pub(crate) const SELFTEST_PREFIX: &str = "__selftest_";

    /// Appends one log line if `OIJ_LOCKDEP_LOG` is set. Failures are
    /// ignored — the witness must never take the process down over I/O.
    fn log_line(line: &str) {
        let Ok(path) = std::env::var("OIJ_LOCKDEP_LOG") else {
            return;
        };
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Records an acquisition of `class` at the caller's location:
    /// re-entrancy and would-be-cyclic nestings panic; new classes and
    /// edges go to the observed log.
    #[track_caller]
    pub(crate) fn acquire(class: &'static str) -> HeldToken {
        let site = Location::caller();
        static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        HELD.with(|h| {
            let held = h.borrow();
            for l in held.iter() {
                if l.class == class {
                    panic!(
                        "lockdep: re-entrant acquisition of lock class `{class}`: first \
                         acquired at {}, re-acquired at {site}",
                        l.site
                    );
                }
            }
            let logged = !class.starts_with(SELFTEST_PREFIX);
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            if !g.classes.iter().any(|(c, _)| *c == class) {
                g.classes.push((class, site.to_string()));
                if logged {
                    log_line(&format!("class {class} {site}"));
                }
            }
            for l in held.iter() {
                if g.edges.iter().any(|e| e.from == l.class && e.to == class) {
                    continue;
                }
                if g.reachable(class, l.class) {
                    panic!(
                        "lockdep: lock-order cycle: acquiring `{class}` at {site} while \
                         holding `{held}` (acquired at {held_site}), but `{class}` already \
                         precedes `{held}` in the observed order",
                        held = l.class,
                        held_site = l.site,
                    );
                }
                g.edges.push(ObservedEdge {
                    from: l.class,
                    to: class,
                });
                if logged {
                    log_line(&format!("edge {} {class} {} {site}", l.class, l.site));
                }
            }
        });

        HELD.with(|h| {
            h.borrow_mut().push(HeldLock { class, site, id });
        });
        HeldToken { id }
    }
}

#[cfg(not(any(lockdep, test)))]
mod witness {
    //! The inert witness: zero-sized tokens, no tracking.

    pub(crate) struct HeldToken;

    #[inline]
    pub(crate) fn acquire(_class: &'static str) -> HeldToken {
        HeldToken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Runs `f` on a fresh thread and returns its panic message, if any.
    fn panic_message(f: impl FnOnce() + Send + 'static) -> Option<String> {
        let err = thread::Builder::new().spawn(f).unwrap().join().err()?;
        Some(match err.downcast::<String>() {
            Ok(s) => *s,
            Err(other) => other.downcast::<&'static str>().unwrap().to_string(),
        })
    }

    #[test]
    fn consistent_nesting_is_silent() {
        let a = Arc::new(Mutex::new("__selftest_nest_a", 1u64));
        let b = Arc::new(Mutex::new("__selftest_nest_b", 2u64));
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
    }

    #[test]
    fn two_threads_nesting_opposite_orders_trip_the_cycle_panic() {
        // Thread 1 observes a -> b; thread 2 then nests b -> a, which
        // closes a cycle even though the threads never raced.
        let a = Arc::new(Mutex::new("__selftest_cycle_a", ()));
        let b = Arc::new(Mutex::new("__selftest_cycle_b", ()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        })
        .join()
        .unwrap();
        let msg = panic_message(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .expect("reversed nesting must panic");
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(
            msg.contains("__selftest_cycle_a") && msg.contains("__selftest_cycle_b"),
            "{msg}"
        );
    }

    #[test]
    fn reentrant_same_class_acquisition_reports_both_sites() {
        let mu = Arc::new(Mutex::new("__selftest_reent", ()));
        let msg = panic_message(move || {
            let _g1 = mu.lock(); // first site
            let _g2 = mu.lock(); // second site
        })
        .expect("re-entrant lock must panic");
        assert!(msg.contains("re-entrant"), "{msg}");
        assert!(msg.contains("__selftest_reent"), "{msg}");
        // Both the first and the second acquisition sites are named, as
        // file:line:col locations in this file.
        let sites = msg.matches("lockdep.rs").count();
        assert!(sites >= 2, "expected both sites in: {msg}");
    }

    #[test]
    fn rwlock_read_then_write_of_another_class_is_an_edge_not_a_panic() {
        let store = Arc::new(RwLock::new("__selftest_rw_store", 7u64));
        let side = Arc::new(Mutex::new("__selftest_rw_side", 0u64));
        let r = store.read();
        *side.lock() = *r;
        drop(r);
        assert_eq!(*side.lock(), 7);
    }

    #[test]
    fn released_guards_do_not_count_as_held() {
        let a = Arc::new(Mutex::new("__selftest_rel_a", ()));
        let b = Arc::new(Mutex::new("__selftest_rel_b", ()));
        // a -> b once...
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // ...then b alone, then a alone: no nesting, no new edges, and in
        // particular no b -> a edge to close a cycle.
        let _gb = b.lock();
        drop(_gb);
        let _ga = a.lock();
    }

    #[test]
    fn try_lock_returns_none_when_contended() {
        let mu = Arc::new(Mutex::new("__selftest_try", 5u64));
        let g = mu.lock();
        let mu2 = Arc::clone(&mu);
        let got = thread::spawn(move || mu2.try_lock().map(|g| *g))
            .join()
            .unwrap();
        assert_eq!(got, None);
        drop(g);
        assert_eq!(mu.try_lock().map(|g| *g), Some(5));
    }
}
