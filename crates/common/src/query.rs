//! OIJ query definitions.
//!
//! An [`OijQuery`] is the engine-independent description of one online
//! interval join: the relative window, the lateness bound, the aggregation
//! to apply to each window, and the emission semantics. It corresponds to
//! the OpenMLDB SQL in Section II-A of the paper:
//!
//! ```sql
//! SELECT sum(col2) OVER w1 FROM S
//! WINDOW w1 AS (UNION R PARTITION BY key ORDER BY timestamp
//!               ROWS_RANGE BETWEEN 1s PRECEDING AND 1s FOLLOWING);
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::time::Duration;
use crate::window::WindowSpec;

/// The aggregation function applied over each base tuple's window.
///
/// `Sum`, `Count` and `Avg` are **invertible** (they admit a subtraction
/// operator and therefore the Subtract-on-Evict incremental path of §V-C);
/// `Min` and `Max` are non-invertible and are served by the two-stack
/// aggregator extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggSpec {
    /// Sum of the probe tuples' `value` column.
    Sum,
    /// Number of probe tuples in the window.
    Count,
    /// Arithmetic mean of the probe tuples' `value` column.
    Avg,
    /// Minimum `value` in the window (non-invertible).
    Min,
    /// Maximum `value` in the window (non-invertible).
    Max,
}

impl AggSpec {
    /// Whether the aggregate admits an inverse (`⊖`) and can use
    /// Subtract-on-Evict incremental maintenance.
    #[inline]
    pub const fn is_invertible(self) -> bool {
        matches!(self, AggSpec::Sum | AggSpec::Count | AggSpec::Avg)
    }

    /// SQL function name, as accepted by the SQL front-end.
    #[inline]
    pub const fn sql_name(self) -> &'static str {
        match self {
            AggSpec::Sum => "sum",
            AggSpec::Count => "count",
            AggSpec::Avg => "avg",
            AggSpec::Min => "min",
            AggSpec::Max => "max",
        }
    }

    /// Parses a SQL function name (case-insensitive).
    pub fn from_sql_name(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "sum" => Ok(AggSpec::Sum),
            "count" => Ok(AggSpec::Count),
            "avg" => Ok(AggSpec::Avg),
            "min" => Ok(AggSpec::Min),
            "max" => Ok(AggSpec::Max),
            other => Err(Error::InvalidConfig(format!(
                "unsupported aggregation function: {other}"
            ))),
        }
    }
}

/// When a base tuple's aggregate is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EmitMode {
    /// Join the base tuple against the probe buffer **at arrival** and emit
    /// immediately. This is how Flink's interval join and the paper's
    /// engines behave: lateness governs retention only, so a probe tuple
    /// arriving after a matching base tuple is missed. Lowest latency.
    #[default]
    Eager,
    /// Hold each base tuple until the watermark passes `ts + FOL`, then
    /// join and emit. Exact under any disorder within the lateness bound,
    /// at the cost of at least `FOL + lateness` of added latency. Used by
    /// correctness tests against the brute-force oracle.
    Watermark,
}

/// A complete online interval join query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OijQuery {
    /// Relative window and lateness.
    pub window: WindowSpec,
    /// Aggregation applied per window.
    pub agg: AggSpec,
    /// Emission semantics.
    pub emit: EmitMode,
}

impl OijQuery {
    /// Starts building a query. At minimum the window offsets must be set.
    pub fn builder() -> OijQueryBuilder {
        OijQueryBuilder::default()
    }

    /// Convenience constructor for the common "sum over the last `pre`"
    /// query shape.
    pub fn sum_over_preceding(pre: Duration, lateness: Duration) -> Result<Self> {
        Ok(OijQuery {
            window: WindowSpec::preceding_only(pre, lateness)?,
            agg: AggSpec::Sum,
            emit: EmitMode::Eager,
        })
    }
}

/// Builder for [`OijQuery`].
///
/// ```
/// use oij_common::{OijQuery, AggSpec, EmitMode, Duration};
///
/// let q = OijQuery::builder()
///     .preceding(Duration::from_secs(1))
///     .following(Duration::from_secs(1))
///     .lateness(Duration::from_millis(100))
///     .agg(AggSpec::Sum)
///     .emit(EmitMode::Eager)
///     .build()
///     .unwrap();
/// assert_eq!(q.window.length(), Duration::from_secs(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OijQueryBuilder {
    preceding: Duration,
    following: Duration,
    lateness: Duration,
    agg: Option<AggSpec>,
    emit: EmitMode,
}

impl OijQueryBuilder {
    /// Sets the preceding offset `PRE`.
    pub fn preceding(mut self, d: Duration) -> Self {
        self.preceding = d;
        self
    }

    /// Sets the following offset `FOL`.
    pub fn following(mut self, d: Duration) -> Self {
        self.following = d;
        self
    }

    /// Sets the lateness bound `l`.
    pub fn lateness(mut self, d: Duration) -> Self {
        self.lateness = d;
        self
    }

    /// Sets the aggregation function (defaults to `Sum` if unset).
    pub fn agg(mut self, agg: AggSpec) -> Self {
        self.agg = Some(agg);
        self
    }

    /// Sets the emission mode (defaults to `Eager`).
    pub fn emit(mut self, emit: EmitMode) -> Self {
        self.emit = emit;
        self
    }

    /// Validates and builds the query.
    pub fn build(self) -> Result<OijQuery> {
        Ok(OijQuery {
            window: WindowSpec::new(self.preceding, self.following, self.lateness)?,
            agg: self.agg.unwrap_or(AggSpec::Sum),
            emit: self.emit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invertibility_classification() {
        assert!(AggSpec::Sum.is_invertible());
        assert!(AggSpec::Count.is_invertible());
        assert!(AggSpec::Avg.is_invertible());
        assert!(!AggSpec::Min.is_invertible());
        assert!(!AggSpec::Max.is_invertible());
    }

    #[test]
    fn sql_name_roundtrip() {
        for agg in [
            AggSpec::Sum,
            AggSpec::Count,
            AggSpec::Avg,
            AggSpec::Min,
            AggSpec::Max,
        ] {
            assert_eq!(AggSpec::from_sql_name(agg.sql_name()).unwrap(), agg);
        }
        assert_eq!(AggSpec::from_sql_name("SUM").unwrap(), AggSpec::Sum);
        assert!(AggSpec::from_sql_name("median").is_err());
    }

    #[test]
    fn builder_defaults() {
        let q = OijQuery::builder()
            .preceding(Duration::from_micros(10))
            .build()
            .unwrap();
        assert_eq!(q.agg, AggSpec::Sum);
        assert_eq!(q.emit, EmitMode::Eager);
        assert_eq!(q.window.following, Duration::ZERO);
    }

    #[test]
    fn builder_rejects_negative() {
        assert!(OijQuery::builder()
            .preceding(Duration::from_micros(-5))
            .build()
            .is_err());
    }

    #[test]
    fn paper_sql_query_shape() {
        // BETWEEN 1s PRECEDING AND 1s FOLLOWING
        let q = OijQuery::builder()
            .preceding(Duration::from_secs(1))
            .following(Duration::from_secs(1))
            .agg(AggSpec::Sum)
            .build()
            .unwrap();
        assert_eq!(q.window.length(), Duration::from_secs(2));
    }
}
