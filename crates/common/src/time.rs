//! Event-time primitives.
//!
//! All engines operate on **event time** expressed in microseconds. The
//! paper's workloads span window lengths from 100 µs (Table V) to 150 s
//! (Workload B), so microsecond resolution in an `i64` covers every
//! configuration with ~292 000 years of head-room.

use serde::{Deserialize, Serialize};

/// A point in event time, in microseconds since an arbitrary epoch.
///
/// `Timestamp` is a transparent newtype over `i64`: it is `Copy`, totally
/// ordered, and supports the arithmetic needed for window computation
/// (`ts - PRE`, `ts + FOL`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

/// A span of event time, in microseconds.
///
/// Used for window offsets (`PRE`, `FOL`), lateness `l`, and window lengths.
/// Durations may be zero (e.g. `FOL = 0` for a purely preceding window) but
/// engine configuration rejects negative spans.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub i64);

impl Timestamp {
    /// The smallest representable timestamp. Used as the initial watermark.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Constructs a timestamp from raw microseconds.
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        Timestamp(us)
    }

    /// Constructs a timestamp from milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Constructs a timestamp from seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Raw microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Saturating addition of a duration: `Timestamp::MAX` on overflow.
    #[inline]
    pub const fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration: `Timestamp::MIN` on underflow.
    #[inline]
    pub const fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Signed distance `self - other` as a [`Duration`] (saturating).
    #[inline]
    pub const fn delta(self, other: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from raw microseconds.
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        Duration(us)
    }

    /// Constructs a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms * 1_000)
    }

    /// Constructs a duration from seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Whether this duration is negative (invalid in configurations).
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating sum of two durations.
    #[inline]
    pub const fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }
}

impl core::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl core::ops::Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0)
    }
}

impl core::ops::Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl core::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl core::fmt::Display for Duration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 != 0 && self.0 % 1_000_000 == 0 {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 != 0 && self.0 % 1_000 == 0 {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Timestamp::from_secs(2), Timestamp::from_micros(2_000_000));
        assert_eq!(Timestamp::from_millis(3), Timestamp::from_micros(3_000));
        assert_eq!(Duration::from_secs(1), Duration::from_micros(1_000_000));
        assert_eq!(Duration::from_millis(5), Duration::from_micros(5_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp::from_micros(1_000);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_micros(1)),
            Timestamp::MAX
        );
        assert_eq!(
            Timestamp::MIN.saturating_sub(Duration::from_micros(1)),
            Timestamp::MIN
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::from_secs(150).to_string(), "150s");
        assert_eq!(Duration::from_millis(20).to_string(), "20ms");
        assert_eq!(Duration::from_micros(100).to_string(), "100us");
        assert_eq!(Duration::ZERO.to_string(), "0us");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            Timestamp::from_micros(5),
            Timestamp::MIN,
            Timestamp::from_micros(-3),
            Timestamp::MAX,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Timestamp::MIN,
                Timestamp::from_micros(-3),
                Timestamp::from_micros(5),
                Timestamp::MAX
            ]
        );
    }
}
