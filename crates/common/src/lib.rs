//! # oij-common — shared model for the online interval join (OIJ)
//!
//! This crate defines the vocabulary shared by every OIJ engine in the
//! workspace: tuples, streams, relative time windows, watermarks, queries
//! and results. It deliberately contains **no** engine logic — only the
//! data model from Section II of the paper (*"Scalable Online Interval Join
//! on Modern Multicore Processors in OpenMLDB"*, ICDE 2023).
//!
//! ## The model in one paragraph
//!
//! A [`Tuple`] is `{timestamp, key, value, payload}`. Two unbounded streams
//! take part in a join: the **base** stream `S` and the **probe** stream `R`
//! (see [`Side`]). For every base tuple `s`, the OIJ aggregates all probe
//! tuples with the same key whose timestamps fall in the *relative* window
//! `[s.ts - PRE, s.ts + FOL]` (see [`WindowSpec`]). Streams may arrive out
//! of order, bounded by a *lateness* `l`; a [`Watermark`] tracks progress
//! and drives tuple expiration.

#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod lockdep;
pub mod protowit;
pub mod query;
pub mod result;
pub mod time;
pub mod tuple;
pub mod watermark;
pub mod window;

pub use error::{Error, Result};
pub use event::{Event, EventKind};
pub use query::{AggSpec, EmitMode, OijQuery, OijQueryBuilder};
pub use result::FeatureRow;
pub use time::{Duration, Timestamp};
pub use tuple::{Key, Side, Tuple};
pub use watermark::{Watermark, WatermarkTracker};
pub use window::{Window, WindowSpec};
