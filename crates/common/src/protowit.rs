//! Runtime message-protocol witness: per-channel trace checks.
//!
//! The static half of the workspace's temporal-protocol story is `cargo
//! xtask lint` rules R8/R9: send sites are tagged with declared
//! `lint.toml [protocol]` states and stamp pairs are lexically ordered.
//! This module is the dynamic half — the analogue of [`crate::lockdep`]
//! for message grammars. A [`ProtoChannel`] shadows one protocol edge on
//! its receive (or send) side and checks every observation against the
//! temporal contract; three violations panic on the spot, each reporting
//! the sites involved:
//!
//! - **heartbeat regression**: a `Heartbeat` timestamp below an earlier
//!   one, or below the watermark of data already seen — progress claims
//!   must be monotone, and a heartbeat must not un-declare data;
//! - **send after finish**: any observation after the edge's terminal
//!   `Finish` — the declared automaton has no outgoing transitions there
//!   (double-`Finish` reports both finish sites);
//! - **unmarked delivery**: a [`DeliveryGuard`] dropped without
//!   [`DeliveryGuard::marked`] — a row left the durable sink without the
//!   exactly-once mark that makes its delivery recoverable.
//!
//! Instrumentation is compiled under `--cfg protowit` (and in this
//! crate's own unit tests); otherwise every type here is an inert
//! zero-sized shim. Under `OIJ_PROTO_LOG=<path>` every first-observed
//! channel, per-symbol send, and finish is appended to `<path>`;
//! `cargo xtask proto-check <path>` then verifies observed ⊆ declared
//! against `lint.toml [protocol]`.
//!
//! Engines never name this module directly — `crates/core`'s
//! `instrument.rs` probes wrap it, so the splice point is the same one
//! the latency/backpressure instrumentation uses.

pub use imp::{begin_delivery, DeliveryGuard, ProtoChannel};

#[cfg(any(protowit, test))]
mod imp {
    //! The active witness.

    use std::io::Write as _;
    use std::panic::Location;
    use std::sync::{Mutex, PoisonError};

    use crate::Timestamp;

    /// Edges with this prefix (the witness's own self-tests) are checked
    /// but never logged, so a workspace-wide `OIJ_PROTO_LOG` capture
    /// records only the production protocol and `cargo xtask proto-check`
    /// does not demand the synthetic test edges be declared in lint.toml.
    const SELFTEST_PREFIX: &str = "__selftest_";

    /// Appends one log line if `OIJ_PROTO_LOG` is set. Failures are
    /// ignored — the witness must never take the process down over I/O.
    fn log_line(line: &str) {
        let Ok(path) = std::env::var("OIJ_PROTO_LOG") else {
            return;
        };
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Per-channel trace state, behind a plain std mutex — the witness
    /// must not recurse into the class-carrying wrappers it audits.
    #[derive(Default)]
    struct ChanState {
        last_heartbeat: Option<Timestamp>,
        max_data: Option<Timestamp>,
        finished: Option<&'static Location<'static>>,
        /// Symbols already logged for this channel (keep-first; the
        /// checker dedups across channels and binaries anyway).
        logged_syms: Vec<&'static str>,
    }

    /// The send-trace shadow of one protocol edge. One instance per
    /// observing endpoint (each joiner's receive loop, the collector);
    /// the temporal contract holds per stream, so each endpoint checks
    /// its own.
    #[derive(Debug)]
    pub struct ProtoChannel {
        edge: &'static str,
        state: Mutex<ChanState>,
    }

    impl std::fmt::Debug for ChanState {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ChanState").finish_non_exhaustive()
        }
    }

    impl ProtoChannel {
        /// Opens the shadow of protocol edge `edge` (a `lint.toml
        /// [protocol]` alias) at the caller's location.
        #[track_caller]
        pub fn new(edge: &'static str) -> ProtoChannel {
            if !edge.starts_with(SELFTEST_PREFIX) {
                log_line(&format!("channel {edge} {}", Location::caller()));
            }
            ProtoChannel {
                edge,
                state: Mutex::new(ChanState::default()),
            }
        }

        fn observe(
            &self,
            sym: &'static str,
            site: &'static Location<'static>,
            check: impl FnOnce(&mut ChanState, &'static str),
        ) {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(closed) = st.finished {
                panic!(
                    "protowit: `{sym}` on edge `{}` after finish (closed at {closed}, \
                     observed at {site})",
                    self.edge
                );
            }
            check(&mut st, self.edge);
            if !st.logged_syms.contains(&sym) && !self.edge.starts_with(SELFTEST_PREFIX) {
                st.logged_syms.push(sym);
                if sym == "finish" {
                    log_line(&format!("finish {} {site}", self.edge));
                } else {
                    log_line(&format!("send {} {sym} {site}", self.edge));
                }
            }
        }

        /// Observes one `Data` message carrying watermark `stamp`.
        #[track_caller]
        pub fn data(&self, stamp: Timestamp) {
            self.observe("data", Location::caller(), |st, _| {
                st.max_data = Some(st.max_data.map_or(stamp, |m| m.max(stamp)));
            });
        }

        /// Observes one `Batch` of `len` messages (the per-message
        /// watermarks go through [`data`](Self::data)).
        #[track_caller]
        pub fn batch(&self, len: usize) {
            let _ = len;
            self.observe("batch", Location::caller(), |_, _| {});
        }

        /// Observes one `Heartbeat` carrying timestamp `ts`. Panics on a
        /// regression: `ts` below an earlier heartbeat, or below the
        /// watermark of data already observed.
        #[track_caller]
        pub fn heartbeat(&self, ts: Timestamp) {
            self.observe("heartbeat", Location::caller(), |st, edge| {
                if let Some(prev) = st.last_heartbeat {
                    if ts < prev {
                        panic!(
                            "protowit: heartbeat regression on edge `{edge}`: {} after {} \
                             — progress claims must be monotone",
                            ts.as_micros(),
                            prev.as_micros()
                        );
                    }
                }
                if let Some(max) = st.max_data {
                    if ts < max {
                        panic!(
                            "protowit: heartbeat {} on edge `{edge}` below the watermark \
                             {} of data already observed — a heartbeat must not un-declare \
                             data",
                            ts.as_micros(),
                            max.as_micros()
                        );
                    }
                }
                st.last_heartbeat = Some(ts);
            });
        }

        /// Observes the edge's terminal `Finish`. A second finish panics
        /// reporting both sites; any later observation panics too.
        #[track_caller]
        pub fn finish(&self) {
            let site = Location::caller();
            self.observe("finish", site, |st, _| {
                st.finished = Some(site);
            });
        }
    }

    /// RAII armed between a durable sink's delivery and its
    /// exactly-once mark; see [`begin_delivery`].
    #[must_use = "dropping the guard unmarked is the violation it exists to catch"]
    #[derive(Debug)]
    pub struct DeliveryGuard {
        seq: u64,
        site: &'static Location<'static>,
        defused: bool,
    }

    /// Arms a delivery guard for the row identified by `seq`. Call
    /// before handing the row to the user sink; call
    /// [`DeliveryGuard::marked`] only after the emitted-mark persisted.
    /// Dropping the guard unmarked (outside an unwind already in
    /// progress) panics: the row was delivered but a crash now would
    /// replay it, breaking exactly-once.
    #[track_caller]
    pub fn begin_delivery(seq: u64) -> DeliveryGuard {
        DeliveryGuard {
            seq,
            site: Location::caller(),
            defused: false,
        }
    }

    impl DeliveryGuard {
        /// Defuses the guard: the delivery was marked emitted.
        pub fn marked(mut self) {
            self.defused = true;
        }
    }

    impl Drop for DeliveryGuard {
        fn drop(&mut self) {
            if !self.defused && !std::thread::panicking() {
                panic!(
                    "protowit: delivery of row seq {} (begun at {}) was never marked \
                     emitted — delivered ⇒ logged is the exactly-once contract",
                    self.seq, self.site
                );
            }
        }
    }
}

#[cfg(not(any(protowit, test)))]
mod imp {
    //! The inert witness: zero-sized shims, no tracking, no cost.

    use crate::Timestamp;

    /// Inert shadow of a protocol edge (`--cfg protowit` disabled).
    #[derive(Debug)]
    pub struct ProtoChannel;

    impl ProtoChannel {
        /// Opens an inert shadow.
        #[inline]
        pub fn new(_edge: &'static str) -> ProtoChannel {
            ProtoChannel
        }
        /// No-op.
        #[inline]
        pub fn data(&self, _stamp: Timestamp) {}
        /// No-op.
        #[inline]
        pub fn batch(&self, _len: usize) {}
        /// No-op.
        #[inline]
        pub fn heartbeat(&self, _ts: Timestamp) {}
        /// No-op.
        #[inline]
        pub fn finish(&self) {}
    }

    /// Inert delivery guard (`--cfg protowit` disabled).
    #[derive(Debug)]
    pub struct DeliveryGuard;

    /// Arms nothing.
    #[inline]
    pub fn begin_delivery(_seq: u64) -> DeliveryGuard {
        DeliveryGuard
    }

    impl DeliveryGuard {
        /// No-op.
        #[inline]
        pub fn marked(self) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;
    use std::thread;

    fn ts(us: i64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    /// Runs `f` on a fresh thread and returns its panic message, if any.
    fn panic_message(f: impl FnOnce() + Send + 'static) -> Option<String> {
        let err = thread::Builder::new().spawn(f).unwrap().join().err()?;
        Some(match err.downcast::<String>() {
            Ok(s) => *s,
            Err(other) => other.downcast::<&'static str>().unwrap().to_string(),
        })
    }

    #[test]
    fn well_formed_stream_is_silent() {
        let ch = ProtoChannel::new("__selftest_ok");
        ch.data(ts(5));
        ch.batch(3);
        ch.data(ts(9));
        ch.heartbeat(ts(9));
        ch.heartbeat(ts(12));
        ch.finish();
    }

    #[test]
    fn heartbeat_regression_panics() {
        let msg = panic_message(|| {
            let ch = ProtoChannel::new("__selftest_hb_regress");
            ch.heartbeat(ts(10));
            ch.heartbeat(ts(7));
        })
        .expect("regressing heartbeat must panic");
        assert!(msg.contains("heartbeat regression"), "{msg}");
        assert!(msg.contains('7') && msg.contains("10"), "{msg}");
    }

    #[test]
    fn heartbeat_below_observed_data_panics() {
        let msg = panic_message(|| {
            let ch = ProtoChannel::new("__selftest_hb_data");
            ch.data(ts(20));
            ch.heartbeat(ts(15));
        })
        .expect("heartbeat below data watermark must panic");
        assert!(msg.contains("un-declare"), "{msg}");
    }

    #[test]
    fn double_finish_reports_both_sites() {
        let msg = panic_message(|| {
            let ch = ProtoChannel::new("__selftest_double_finish");
            ch.finish(); // first site
            ch.finish(); // second site
        })
        .expect("double finish must panic");
        assert!(msg.contains("after finish"), "{msg}");
        // Both the first and the second finish sites are named, as
        // file:line:col locations in this file.
        let sites = msg.matches("protowit.rs").count();
        assert!(sites >= 2, "expected both sites in: {msg}");
    }

    #[test]
    fn send_after_finish_panics() {
        let msg = panic_message(|| {
            let ch = ProtoChannel::new("__selftest_post_finish");
            ch.data(ts(1));
            ch.finish();
            ch.data(ts(2));
        })
        .expect("send after finish must panic");
        assert!(
            msg.contains("`data`") && msg.contains("after finish"),
            "{msg}"
        );
    }

    #[test]
    fn unmarked_delivery_panics_on_drop() {
        let msg = panic_message(|| {
            let guard = begin_delivery(41);
            drop(guard);
        })
        .expect("unmarked delivery must panic");
        assert!(msg.contains("never marked emitted"), "{msg}");
        assert!(msg.contains("41"), "{msg}");
    }

    #[test]
    fn marked_delivery_is_silent_and_unwind_does_not_double_panic() {
        let guard = begin_delivery(1);
        guard.marked();
        // During an unwind the guard stays quiet — the original panic is
        // the report.
        let msg = panic_message(|| {
            let _guard = begin_delivery(2);
            panic!("original failure");
        })
        .unwrap();
        assert_eq!(msg, "original failure");
    }
}
