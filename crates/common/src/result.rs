//! Join outputs: one feature row per base tuple.

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;
use crate::tuple::Key;

/// The aggregated output produced for one base tuple — a "feature row" in
/// OpenMLDB terms. The cardinality of an OIJ's output equals the
/// cardinality of the base stream `S` (paper Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureRow {
    /// The base tuple's event timestamp.
    pub ts: Timestamp,
    /// The base tuple's key.
    pub key: Key,
    /// Arrival sequence number of the base tuple (ties output to input for
    /// exact result comparison in tests).
    pub seq: u64,
    /// The window aggregate. `None` when the window matched no probe tuple
    /// and the aggregate has no identity-valued answer (min/max/avg);
    /// sum/count report `Some(0.0)` on empty windows.
    pub agg: Option<f64>,
    /// How many probe tuples matched the window (used for effectiveness
    /// accounting and in tests).
    pub matched: u64,
    /// Marks a lateness side-output row: the tuple violated the lateness
    /// contract and was routed to the sink under
    /// `LatePolicy::SideOutput` instead of joining the regular output.
    /// Always `false` for regular feature rows.
    #[serde(default)]
    pub late: bool,
}

impl FeatureRow {
    /// Creates a feature row.
    pub fn new(ts: Timestamp, key: Key, seq: u64, agg: Option<f64>, matched: u64) -> Self {
        FeatureRow {
            ts,
            key,
            seq,
            agg,
            matched,
            late: false,
        }
    }

    /// Creates a lateness side-output marker for a tuple that arrived
    /// below the watermark (no aggregate — the row records the violation,
    /// not a join result).
    pub fn late_marker(ts: Timestamp, key: Key, seq: u64) -> Self {
        FeatureRow {
            ts,
            key,
            seq,
            agg: None,
            matched: 0,
            late: true,
        }
    }

    /// Compares two rows for aggregate equality within a floating-point
    /// tolerance, used by tests that compare engines against the oracle.
    pub fn agg_approx_eq(&self, other: &FeatureRow, eps: f64) -> bool {
        match (self.agg, other.agg) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= eps * scale
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_fp_noise() {
        let a = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1.0), 3);
        let b = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1.0 + 1e-12), 3);
        assert!(a.agg_approx_eq(&b, 1e-9));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        let a = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1e12), 3);
        let b = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1e12 + 1.0), 3);
        assert!(a.agg_approx_eq(&b, 1e-9));
    }

    #[test]
    fn late_marker_is_distinguishable() {
        let m = FeatureRow::late_marker(Timestamp::from_micros(5), 9, 42);
        assert!(m.late);
        assert_eq!(m.agg, None);
        assert_eq!(m.matched, 0);
        assert!(!FeatureRow::new(Timestamp::from_micros(5), 9, 42, None, 0).late);
    }

    #[test]
    fn approx_eq_distinguishes_none() {
        let a = FeatureRow::new(Timestamp::from_micros(1), 2, 0, None, 0);
        let b = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(0.0), 0);
        assert!(!a.agg_approx_eq(&b, 1e-9));
        assert!(a.agg_approx_eq(&a.clone(), 1e-9));
    }
}
