//! Join outputs: one feature row per base tuple.

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;
use crate::tuple::Key;

/// The aggregated output produced for one base tuple — a "feature row" in
/// OpenMLDB terms. The cardinality of an OIJ's output equals the
/// cardinality of the base stream `S` (paper Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureRow {
    /// The base tuple's event timestamp.
    pub ts: Timestamp,
    /// The base tuple's key.
    pub key: Key,
    /// Arrival sequence number of the base tuple (ties output to input for
    /// exact result comparison in tests).
    pub seq: u64,
    /// The window aggregate. `None` when the window matched no probe tuple
    /// and the aggregate has no identity-valued answer (min/max/avg);
    /// sum/count report `Some(0.0)` on empty windows.
    pub agg: Option<f64>,
    /// How many probe tuples matched the window (used for effectiveness
    /// accounting and in tests).
    pub matched: u64,
}

impl FeatureRow {
    /// Creates a feature row.
    pub fn new(ts: Timestamp, key: Key, seq: u64, agg: Option<f64>, matched: u64) -> Self {
        FeatureRow {
            ts,
            key,
            seq,
            agg,
            matched,
        }
    }

    /// Compares two rows for aggregate equality within a floating-point
    /// tolerance, used by tests that compare engines against the oracle.
    pub fn agg_approx_eq(&self, other: &FeatureRow, eps: f64) -> bool {
        match (self.agg, other.agg) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= eps * scale
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_fp_noise() {
        let a = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1.0), 3);
        let b = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1.0 + 1e-12), 3);
        assert!(a.agg_approx_eq(&b, 1e-9));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        let a = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1e12), 3);
        let b = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(1e12 + 1.0), 3);
        assert!(a.agg_approx_eq(&b, 1e-9));
    }

    #[test]
    fn approx_eq_distinguishes_none() {
        let a = FeatureRow::new(Timestamp::from_micros(1), 2, 0, None, 0);
        let b = FeatureRow::new(Timestamp::from_micros(1), 2, 0, Some(0.0), 0);
        assert!(!a.agg_approx_eq(&b, 1e-9));
        assert!(a.agg_approx_eq(&a.clone(), 1e-9));
    }
}
