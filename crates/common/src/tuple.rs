//! Stream tuples and stream identity.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// A join key. Keys are pre-hashed 64-bit identities; the workload layer maps
/// application keys (user ids, card numbers, …) onto this space.
pub type Key = u64;

/// Which of the two joined streams a tuple belongs to.
///
/// The paper calls `S` the **base** stream (each of its tuples produces one
/// output feature row) and `R` the **probe** stream (its tuples populate the
/// relative windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The base stream `S`: drives window creation, one output per tuple.
    Base,
    /// The probe stream `R`: provides the data aggregated inside windows.
    Probe,
}

impl Side {
    /// The opposite stream: the one a tuple of this side joins against.
    #[inline]
    pub const fn opposite(self) -> Side {
        match self {
            Side::Base => Side::Probe,
            Side::Probe => Side::Base,
        }
    }

    /// Short label used in logs and benchmark output (`"S"` / `"R"`).
    #[inline]
    pub const fn label(self) -> &'static str {
        match self {
            Side::Base => "S",
            Side::Probe => "R",
        }
    }
}

/// An input tuple `x = {t, k, p}` (paper Table I), with the payload split
/// into an aggregatable numeric `value` and an opaque byte `payload`.
///
/// The numeric `value` is what window aggregations (sum/avg/min/…) consume;
/// the `payload` models the rest of the row that a real feature platform
/// carries along and is never inspected by the engines (it only contributes
/// realistic memory traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Event-time timestamp `t`.
    pub ts: Timestamp,
    /// Join key `k`.
    pub key: Key,
    /// The numeric column that aggregations read (e.g. `col2` in the paper's
    /// example SQL).
    pub value: f64,
    /// Opaque payload bytes carried through the pipeline.
    #[serde(skip)]
    pub payload: Bytes,
}

impl Tuple {
    /// Creates a tuple with an empty payload.
    #[inline]
    pub fn new(ts: Timestamp, key: Key, value: f64) -> Self {
        Tuple {
            ts,
            key,
            value,
            payload: Bytes::new(),
        }
    }

    /// Creates a tuple carrying payload bytes.
    #[inline]
    pub fn with_payload(ts: Timestamp, key: Key, value: f64, payload: Bytes) -> Self {
        Tuple {
            ts,
            key,
            value,
            payload,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the cache simulator
    /// to lay tuples out in its modelled address space.
    #[inline]
    pub fn footprint(&self) -> usize {
        core::mem::size_of::<Tuple>() + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_side_is_involutive() {
        assert_eq!(Side::Base.opposite(), Side::Probe);
        assert_eq!(Side::Probe.opposite(), Side::Base);
        assert_eq!(Side::Base.opposite().opposite(), Side::Base);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(Side::Base.label(), "S");
        assert_eq!(Side::Probe.label(), "R");
    }

    #[test]
    fn footprint_counts_payload() {
        let bare = Tuple::new(Timestamp::from_micros(1), 7, 1.0);
        let fat = Tuple::with_payload(
            Timestamp::from_micros(1),
            7,
            1.0,
            Bytes::from(vec![0u8; 64]),
        );
        assert_eq!(fat.footprint() - bare.footprint(), 64);
    }
}
