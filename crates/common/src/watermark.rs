//! Watermarks: event-time progress under bounded disorder.
//!
//! A watermark at time `w` asserts that no tuple with timestamp `< w` will
//! arrive any more. With lateness bound `l`, the watermark trails the
//! largest observed timestamp by `l`: `w = max_ts - l`. Engines use it to
//! expire buffered tuples (retention windows are computed from
//! [`crate::WindowSpec`]) and — in watermark emission mode — to decide when
//! a base tuple's aggregate is final.

use core::sync::atomic::{AtomicI64, Ordering};

use serde::{Deserialize, Serialize};

use crate::time::{Duration, Timestamp};

/// An immutable watermark value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Watermark(pub Timestamp);

impl Watermark {
    /// The initial watermark: no progress asserted yet.
    pub const INITIAL: Watermark = Watermark(Timestamp::MIN);

    /// The asserted event-time lower bound for future arrivals.
    #[inline]
    pub fn time(self) -> Timestamp {
        self.0
    }
}

/// Thread-safe watermark tracker shared between sources, joiners and the
/// expiration path.
///
/// Sources feed observed timestamps through [`observe`](Self::observe); the
/// tracker maintains `max_ts` monotonically and derives the watermark as
/// `max_ts - lateness`. Reads are single atomic loads, so joiners can
/// consult the watermark on every tuple without contention.
#[derive(Debug)]
pub struct WatermarkTracker {
    max_ts: AtomicI64,
    lateness: Duration,
}

impl WatermarkTracker {
    /// Creates a tracker for streams with the given lateness bound.
    pub fn new(lateness: Duration) -> Self {
        WatermarkTracker {
            max_ts: AtomicI64::new(i64::MIN),
            lateness,
        }
    }

    /// Records an observed tuple timestamp, advancing `max_ts` if needed.
    /// Returns `true` if this observation advanced the maximum.
    #[inline]
    pub fn observe(&self, ts: Timestamp) -> bool {
        // fetch_max is a single RMW; monotonic by construction.
        self.max_ts.fetch_max(ts.0, Ordering::AcqRel) < ts.0
    }

    /// The largest timestamp observed so far, or `Timestamp::MIN` if none.
    #[inline]
    pub fn max_seen(&self) -> Timestamp {
        Timestamp(self.max_ts.load(Ordering::Acquire))
    }

    /// Current watermark: `max_seen - lateness` (saturating), or
    /// [`Watermark::INITIAL`] before any observation.
    #[inline]
    pub fn current(&self) -> Watermark {
        let max = self.max_ts.load(Ordering::Acquire);
        if max == i64::MIN {
            Watermark::INITIAL
        } else {
            Watermark(Timestamp(max).saturating_sub(self.lateness))
        }
    }

    /// The configured lateness bound.
    #[inline]
    pub fn lateness(&self) -> Duration {
        self.lateness
    }

    /// Whether a tuple with timestamp `ts` is *late beyond the bound*: it
    /// arrived after the watermark already passed it. Such tuples violate
    /// the disorder contract; engines count them but still process them
    /// best-effort.
    #[inline]
    pub fn is_violating(&self, ts: Timestamp) -> bool {
        ts < self.current().time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_watermark_is_min() {
        let t = WatermarkTracker::new(Duration::from_micros(10));
        assert_eq!(t.current(), Watermark::INITIAL);
        assert_eq!(t.max_seen(), Timestamp::MIN);
    }

    #[test]
    fn watermark_trails_max_by_lateness() {
        let t = WatermarkTracker::new(Duration::from_micros(10));
        assert!(t.observe(Timestamp::from_micros(100)));
        assert_eq!(t.current().time(), Timestamp::from_micros(90));
    }

    #[test]
    fn observation_is_monotone() {
        let t = WatermarkTracker::new(Duration::ZERO);
        assert!(t.observe(Timestamp::from_micros(50)));
        assert!(!t.observe(Timestamp::from_micros(40))); // regression ignored
        assert_eq!(t.max_seen(), Timestamp::from_micros(50));
        assert!(t.observe(Timestamp::from_micros(60)));
        assert_eq!(t.max_seen(), Timestamp::from_micros(60));
    }

    #[test]
    fn violation_detection() {
        let t = WatermarkTracker::new(Duration::from_micros(5));
        t.observe(Timestamp::from_micros(100));
        // watermark = 95
        assert!(t.is_violating(Timestamp::from_micros(94)));
        assert!(!t.is_violating(Timestamp::from_micros(95)));
        assert!(!t.is_violating(Timestamp::from_micros(200)));
    }

    #[test]
    fn concurrent_observations_keep_max() {
        use std::sync::Arc;
        let t = Arc::new(WatermarkTracker::new(Duration::ZERO));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..1000 {
                        t.observe(Timestamp::from_micros(i * 1000 + j));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.max_seen(), Timestamp::from_micros(3999));
    }
}
