//! Stream events: what sources deliver to engines.
//!
//! An [`Event`] wraps a [`Tuple`] with its stream [`Side`] and the
//! *arrival* metadata engines need for latency accounting and watermark
//! maintenance. Arrival order is captured by a dense sequence number so
//! workloads are exactly replayable; wall-clock arrival instants are
//! assigned by the runtime when measuring latency.

use serde::{Deserialize, Serialize};

use crate::tuple::{Side, Tuple};

/// What an event carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A data tuple on one of the two streams.
    Data {
        /// The stream the tuple belongs to.
        side: Side,
        /// The tuple itself.
        tuple: Tuple,
    },
    /// End of input: sources emit this once; engines flush pending state.
    Flush,
}

/// One element of the merged, arrival-ordered input feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Dense arrival sequence number (0, 1, 2, …) across both streams.
    /// Defines the replayable arrival order, which may differ from event-time
    /// order when the stream is disordered.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates a data event.
    #[inline]
    pub fn data(seq: u64, side: Side, tuple: Tuple) -> Self {
        Event {
            seq,
            kind: EventKind::Data { side, tuple },
        }
    }

    /// Creates the flush sentinel.
    #[inline]
    pub fn flush(seq: u64) -> Self {
        Event {
            seq,
            kind: EventKind::Flush,
        }
    }

    /// Returns the contained tuple and side, if this is a data event.
    #[inline]
    pub fn as_data(&self) -> Option<(Side, &Tuple)> {
        match &self.kind {
            EventKind::Data { side, tuple } => Some((*side, tuple)),
            EventKind::Flush => None,
        }
    }

    /// Whether this is the flush sentinel.
    #[inline]
    pub fn is_flush(&self) -> bool {
        matches!(self.kind, EventKind::Flush)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    #[test]
    fn data_event_accessors() {
        let t = Tuple::new(Timestamp::from_micros(1), 2, 3.0);
        let e = Event::data(7, Side::Probe, t.clone());
        assert_eq!(e.seq, 7);
        let (side, tuple) = e.as_data().unwrap();
        assert_eq!(side, Side::Probe);
        assert_eq!(tuple, &t);
        assert!(!e.is_flush());
    }

    #[test]
    fn flush_event() {
        let e = Event::flush(100);
        assert!(e.is_flush());
        assert!(e.as_data().is_none());
    }
}
