//! Error types shared across the workspace.

use core::fmt;
use std::time::Duration as StdDuration;

/// Workspace-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors surfaced by the OIJ engines and front-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration value is out of range or inconsistent
    /// (negative offsets, zero joiners, …).
    InvalidConfig(String),
    /// SQL text could not be parsed into an OIJ plan.
    SqlParse {
        /// Byte offset in the input where parsing failed.
        offset: usize,
        /// Human-readable explanation.
        message: String,
    },
    /// The engine was asked to do something in the wrong lifecycle state
    /// (e.g. pushing tuples after flush).
    InvalidState(String),
    /// A worker thread terminated abnormally. The supervisor captures the
    /// panic payload (or disconnect evidence) together with the worker's
    /// identity, so the failure is attributable instead of a guess.
    WorkerFailed {
        /// Which engine the worker belonged to (e.g. `"scale-oij"`;
        /// auxiliary threads report as `"scale-oij-scheduler"` /
        /// `"splitjoin-collector"`).
        engine: &'static str,
        /// The worker's index within the engine.
        worker: usize,
        /// The captured panic payload or disconnect description.
        cause: String,
    },
    /// The durability subsystem failed: the WAL or a checkpoint could
    /// not be written, read or repaired. Carries the underlying I/O
    /// context.
    Durability(String),
    /// The serving runtime refused to register a query: the admission
    /// budget (concurrent queries, joiner threads, memory) is exhausted.
    /// Carries the reason so the caller can tell which limit bit and
    /// retry after capacity frees up.
    Admission(String),
    /// A worker stopped draining its input channel: a routed send exceeded
    /// the configured deadline without the worker having recorded a panic.
    /// Distinguishes a wedged-but-alive worker from a dead one.
    WorkerStalled {
        /// Which engine the worker belongs to.
        engine: &'static str,
        /// The worker's index within the engine.
        worker: usize,
        /// How long the send waited before giving up.
        waited: StdDuration,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::SqlParse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::Admission(reason) => write!(f, "admission rejected: {reason}"),
            Error::Durability(msg) => write!(f, "durability: {msg}"),
            Error::WorkerFailed {
                engine,
                worker,
                cause,
            } => {
                write!(f, "worker failed: {engine} worker {worker}: {cause}")
            }
            Error::WorkerStalled {
                engine,
                worker,
                waited,
            } => {
                write!(
                    f,
                    "worker stalled: {engine} worker {worker} did not accept input \
                     within {waited:?} (send deadline exceeded)"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidConfig("joiners must be > 0".into());
        assert!(e.to_string().contains("joiners must be > 0"));

        let e = Error::SqlParse {
            offset: 12,
            message: "expected PRECEDING".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains("PRECEDING"));
    }

    #[test]
    fn worker_failures_carry_identity_and_payload() {
        let e = Error::WorkerFailed {
            engine: "scale-oij",
            worker: 3,
            cause: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("scale-oij") && s.contains('3') && s.contains("index out of bounds"));

        let e = Error::WorkerStalled {
            engine: "key-oij",
            worker: 1,
            waited: StdDuration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("key-oij") && s.contains("stalled") && s.contains("250"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::InvalidState("x".into()));
    }
}
