//! Error types shared across the workspace.

use core::fmt;

/// Workspace-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors surfaced by the OIJ engines and front-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration value is out of range or inconsistent
    /// (negative offsets, zero joiners, …).
    InvalidConfig(String),
    /// SQL text could not be parsed into an OIJ plan.
    SqlParse {
        /// Byte offset in the input where parsing failed.
        offset: usize,
        /// Human-readable explanation.
        message: String,
    },
    /// The engine was asked to do something in the wrong lifecycle state
    /// (e.g. pushing tuples after flush).
    InvalidState(String),
    /// A worker thread terminated abnormally.
    WorkerPanic(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::SqlParse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidConfig("joiners must be > 0".into());
        assert!(e.to_string().contains("joiners must be > 0"));

        let e = Error::SqlParse {
            offset: 12,
            message: "expected PRECEDING".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains("PRECEDING"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::InvalidState("x".into()));
    }
}
