//! Relative time windows.
//!
//! The OIJ window is **relative**: every base tuple `s` spans its own window
//! `[s.ts - PRE, s.ts + FOL]` (Definition 2 of the paper). This module
//! provides the immutable window *specification* ([`WindowSpec`]) and the
//! concrete per-tuple *instance* ([`Window`]).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::time::{Duration, Timestamp};

/// The relative window specification `(PRE, FOL)` plus the lateness bound.
///
/// `PRE` is the preceding offset, `FOL` the following offset, both relative
/// to the base tuple's timestamp; `lateness` is the maximum disorder `l` the
/// engine must tolerate while keeping results exact.
///
/// ```
/// use oij_common::{WindowSpec, Duration, Timestamp};
///
/// // "BETWEEN 1s PRECEDING AND CURRENT ROW" with 100 ms lateness
/// let spec = WindowSpec::new(Duration::from_secs(1), Duration::ZERO, Duration::from_millis(100))
///     .unwrap();
/// let w = spec.window_of(Timestamp::from_secs(10));
/// assert_eq!(w.start, Timestamp::from_secs(9));
/// assert_eq!(w.end, Timestamp::from_secs(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Preceding offset `PRE` (how far the window reaches into the past).
    pub preceding: Duration,
    /// Following offset `FOL` (how far the window reaches into the future).
    pub following: Duration,
    /// Lateness `l`: the maximum admissible event-time disorder.
    pub lateness: Duration,
}

impl WindowSpec {
    /// Creates a validated window spec. All three durations must be
    /// non-negative and the window must be non-empty (`PRE + FOL ≥ 0` holds
    /// trivially then; a zero-length window — `PRE = FOL = 0` — is allowed
    /// and matches probe tuples with exactly the base timestamp).
    pub fn new(preceding: Duration, following: Duration, lateness: Duration) -> Result<Self> {
        if preceding.is_negative() {
            return Err(Error::InvalidConfig(format!(
                "preceding offset must be non-negative, got {preceding}"
            )));
        }
        if following.is_negative() {
            return Err(Error::InvalidConfig(format!(
                "following offset must be non-negative, got {following}"
            )));
        }
        if lateness.is_negative() {
            return Err(Error::InvalidConfig(format!(
                "lateness must be non-negative, got {lateness}"
            )));
        }
        Ok(WindowSpec {
            preceding,
            following,
            lateness,
        })
    }

    /// A purely preceding window (`FOL = 0`), the most common shape in
    /// feature engineering ("the last 10 minutes of user behaviour").
    pub fn preceding_only(preceding: Duration, lateness: Duration) -> Result<Self> {
        Self::new(preceding, Duration::ZERO, lateness)
    }

    /// Window length `|w| = PRE + FOL`.
    #[inline]
    pub fn length(&self) -> Duration {
        self.preceding.saturating_add(self.following)
    }

    /// The concrete window instance of a base tuple with timestamp `ts`.
    #[inline]
    pub fn window_of(&self, ts: Timestamp) -> Window {
        Window {
            start: ts.saturating_sub(self.preceding),
            end: ts.saturating_add(self.following),
        }
    }

    /// How long a **probe** tuple must be retained past the watermark.
    ///
    /// A probe tuple with timestamp `t` can still match a base tuple with
    /// timestamp up to `t + PRE` (its window reaches back `PRE`), and that
    /// base tuple may itself arrive up to `lateness` late. The tuple is
    /// therefore expirable once `watermark > t + PRE + l`.
    #[inline]
    pub fn probe_retention(&self) -> Duration {
        self.preceding.saturating_add(self.lateness)
    }

    /// How long a **base** tuple must be retained past the watermark
    /// (relevant in watermark emission mode and for symmetric buffering):
    /// its window reaches `FOL` into the future and probe tuples may be
    /// `lateness` late.
    #[inline]
    pub fn base_retention(&self) -> Duration {
        self.following.saturating_add(self.lateness)
    }
}

/// A concrete window instance `w_i = (t_i^s, t_i^e)` (paper Definition 1),
/// **inclusive on both ends** to match Definition 2
/// (`w_i.start ≤ R_j.timestamp ≤ w_i.end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Start timestamp `t^s` (inclusive).
    pub start: Timestamp,
    /// End timestamp `t^e` (inclusive).
    pub end: Timestamp,
}

impl Window {
    /// Whether a probe timestamp falls inside this window.
    #[inline]
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.start <= ts && ts <= self.end
    }

    /// Window length `|w|`.
    #[inline]
    pub fn length(&self) -> Duration {
        self.end - self.start
    }

    /// Whether two windows overlap (share at least one timestamp).
    #[inline]
    pub fn overlaps(&self, other: &Window) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

impl core::fmt::Display for Window {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pre: i64, fol: i64, l: i64) -> WindowSpec {
        WindowSpec::new(
            Duration::from_micros(pre),
            Duration::from_micros(fol),
            Duration::from_micros(l),
        )
        .unwrap()
    }

    #[test]
    fn rejects_negative_offsets() {
        assert!(
            WindowSpec::new(Duration::from_micros(-1), Duration::ZERO, Duration::ZERO).is_err()
        );
        assert!(
            WindowSpec::new(Duration::ZERO, Duration::from_micros(-1), Duration::ZERO).is_err()
        );
        assert!(
            WindowSpec::new(Duration::ZERO, Duration::ZERO, Duration::from_micros(-1)).is_err()
        );
    }

    #[test]
    fn window_of_is_inclusive_both_ends() {
        let w = spec(2, 1, 0).window_of(Timestamp::from_micros(10));
        assert!(w.contains(Timestamp::from_micros(8)));
        assert!(w.contains(Timestamp::from_micros(11)));
        assert!(!w.contains(Timestamp::from_micros(7)));
        assert!(!w.contains(Timestamp::from_micros(12)));
    }

    #[test]
    fn paper_example_window() {
        // Figure 3a: window (-2s, 0) over base tuples.
        let s = spec(2_000_000, 0, 0);
        let w = s.window_of(Timestamp::from_secs(5));
        assert_eq!(w.start, Timestamp::from_secs(3));
        assert_eq!(w.end, Timestamp::from_secs(5));
        assert_eq!(s.length(), Duration::from_secs(2));
    }

    #[test]
    fn retention_accounts_for_lateness() {
        let s = spec(1_000, 500, 250);
        assert_eq!(s.probe_retention(), Duration::from_micros(1_250));
        assert_eq!(s.base_retention(), Duration::from_micros(750));
    }

    #[test]
    fn zero_length_window_matches_exact_timestamp() {
        let s = spec(0, 0, 0);
        let w = s.window_of(Timestamp::from_micros(42));
        assert!(w.contains(Timestamp::from_micros(42)));
        assert!(!w.contains(Timestamp::from_micros(41)));
        assert!(!w.contains(Timestamp::from_micros(43)));
    }

    #[test]
    fn overlap_detection() {
        let a = Window {
            start: Timestamp::from_micros(0),
            end: Timestamp::from_micros(10),
        };
        let b = Window {
            start: Timestamp::from_micros(10),
            end: Timestamp::from_micros(20),
        };
        let c = Window {
            start: Timestamp::from_micros(11),
            end: Timestamp::from_micros(20),
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn saturating_window_at_extremes() {
        let s = spec(100, 100, 0);
        let w = s.window_of(Timestamp::MIN);
        assert_eq!(w.start, Timestamp::MIN);
        let w = s.window_of(Timestamp::MAX);
        assert_eq!(w.end, Timestamp::MAX);
    }
}
