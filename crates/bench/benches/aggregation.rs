//! Microbenchmarks of the aggregation paths: Subtract-on-Evict vs full
//! recomputation (the mechanism behind the paper's Figure 16) and the
//! two-stack extension for non-invertible operators.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use oij_agg::{FullWindowAgg, RunningAgg, TwoStackAgg};
use oij_common::AggSpec;

/// Slide a window of `width` across `vals`, recomputing from scratch.
fn slide_recompute(vals: &[f64], width: usize) -> f64 {
    let mut out = 0.0;
    for end in 0..vals.len() {
        let lo = end.saturating_sub(width - 1);
        let mut agg = FullWindowAgg::new(AggSpec::Sum);
        for &v in &vals[lo..=end] {
            agg.add(v);
        }
        out = agg.finish().unwrap_or(0.0);
    }
    out
}

/// The same slide with Subtract-on-Evict: O(1) per step.
fn slide_soe(vals: &[f64], width: usize) -> f64 {
    let mut agg = RunningAgg::new(AggSpec::Sum).unwrap();
    let mut out = 0.0;
    for end in 0..vals.len() {
        agg.add(vals[end]);
        if end >= width {
            agg.evict(vals[end - width]);
        }
        out = agg.value().unwrap_or(0.0);
    }
    out
}

fn bench_soe_vs_recompute(c: &mut Criterion) {
    let vals: Vec<f64> = (0..10_000).map(|i| ((i * 31) % 97) as f64).collect();
    let mut group = c.benchmark_group("window_slide_10k_steps");
    for width in [16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("recompute", width), &width, |b, &w| {
            b.iter(|| black_box(slide_recompute(&vals, w)))
        });
        group.bench_with_input(
            BenchmarkId::new("subtract_on_evict", width),
            &width,
            |b, &w| b.iter(|| black_box(slide_soe(&vals, w))),
        );
    }
    group.finish();
}

fn bench_twostack(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_stack_min_slide");
    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("push_evict_query", |b| {
        let mut w = TwoStackAgg::new(AggSpec::Min);
        for i in 0..1024 {
            w.push(i as f64);
        }
        let mut i = 1024f64;
        b.iter(|| {
            i += 1.0;
            w.push(i);
            let _ = w.evict();
            black_box(w.value())
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_soe_vs_recompute, bench_twostack
);
criterion_main!(benches);
