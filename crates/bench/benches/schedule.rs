//! Microbenchmarks of the dynamic scheduler (Algorithm 3): one rebalance
//! pass must be cheap enough to run every few milliseconds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use oij_core::scaleoij::schedule::{rebalance, Schedule};

fn skewed_counts(partitions: usize) -> Vec<f64> {
    (0..partitions).map(|p| 10_000.0 / (p + 1) as f64).collect()
}

fn bench_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm3_rebalance");
    for (partitions, joiners) in [(64usize, 8usize), (64, 16), (256, 16)] {
        let schedule = Schedule::initial(partitions, joiners);
        let counts = skewed_counts(partitions);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("P{partitions}_J{joiners}")),
            &(partitions, joiners),
            |b, &(_, j)| {
                b.iter(|| black_box(rebalance(&schedule, &counts, j, 0.01)));
            },
        );
    }
    group.finish();
}

fn bench_full_convergence(c: &mut Criterion) {
    c.bench_function("algorithm3_converge_P64_J16", |b| {
        let counts = skewed_counts(64);
        b.iter(|| {
            let mut s = Schedule::initial(64, 16);
            let mut steps = 0;
            while let Some(next) = rebalance(&s, &counts, 16, 0.001) {
                s = next;
                steps += 1;
                if steps > 1000 {
                    break;
                }
            }
            black_box((s, steps))
        });
    });
}

fn bench_load_estimation(c: &mut Criterion) {
    c.bench_function("eq3_estimated_loads_P256_J16", |b| {
        let mut s = Schedule::initial(256, 16);
        // Make teams non-trivial.
        for p in 0..64 {
            s.teams[p].push((p + 1) % 16);
        }
        let counts = skewed_counts(256);
        b.iter(|| black_box(s.estimated_loads(&counts, 16)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rebalance, bench_full_convergence, bench_load_estimation
);
criterion_main!(benches);
