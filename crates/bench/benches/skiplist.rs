//! Microbenchmarks of the SWMR time-travel index — the data-structure-level
//! version of the paper's Figure 11 claim: window scans cost O(log n + k)
//! regardless of how much retained (out-of-window) data surrounds them.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use oij_common::{Timestamp, Tuple, Window};
use oij_skiplist::{SwmrSkipList, TimeTravelIndex};

fn index_with(keys: u64, per_key: i64) -> (oij_skiplist::IndexWriter, oij_skiplist::IndexReader) {
    let (mut w, r) = TimeTravelIndex::with_seed(7);
    for ts in 0..per_key {
        for key in 0..keys {
            w.insert(Tuple::new(Timestamp::from_micros(ts), key, ts as f64));
        }
    }
    (w, r)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("timetravel_insert");
    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("in_order", |b| {
        let (mut w, _r) = TimeTravelIndex::with_seed(3);
        let mut ts = 0i64;
        b.iter(|| {
            ts += 1;
            w.insert(Tuple::new(
                Timestamp::from_micros(ts),
                (ts % 64) as u64,
                1.0,
            ));
        });
    });
    group.bench_function("disordered", |b| {
        let (mut w, _r) = TimeTravelIndex::with_seed(3);
        let mut ts = 0i64;
        let mut x = 5u64;
        b.iter(|| {
            ts += 1;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let jitter = (x >> 33) as i64 % 1000;
            w.insert(Tuple::new(
                Timestamp::from_micros(ts - jitter),
                (ts % 64) as u64,
                1.0,
            ));
        });
    });
    group.finish();
}

/// The headline property: scanning a fixed-size window costs the same no
/// matter how much retained data the lateness forces the index to hold.
fn bench_window_scan_vs_retained(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_scan_vs_retained_data");
    for retained in [1_000i64, 10_000, 100_000] {
        let (_w, r) = index_with(4, retained);
        let window = Window {
            start: Timestamp::from_micros(retained - 100),
            end: Timestamp::from_micros(retained),
        };
        group.bench_with_input(BenchmarkId::from_parameter(retained), &retained, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                r.scan_window(black_box(2), black_box(window), |t| sum += t.value);
                black_box(sum)
            });
        });
    }
    group.finish();
}

fn bench_evict(c: &mut Criterion) {
    c.bench_function("timetravel_evict_10pct", |b| {
        b.iter_batched(
            || index_with(8, 5_000).0,
            |mut w| {
                black_box(w.evict_below(Timestamp::from_micros(500)));
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_raw_skiplist_vs_btreemap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordered_map_comparison");
    group.bench_function("swmr_skiplist_insert_get", |b| {
        let (mut w, r) = SwmrSkipList::with_seed::<i64, i64>(11);
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            w.insert(k, k);
            black_box(r.get_cloned(&(k / 2)));
        });
    });
    group.bench_function("btreemap_insert_get", |b| {
        let mut m = std::collections::BTreeMap::<i64, i64>::new();
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            m.insert(k, k);
            black_box(m.get(&(k / 2)).copied());
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_window_scan_vs_retained, bench_evict, bench_raw_skiplist_vs_btreemap
);
criterion_main!(benches);
