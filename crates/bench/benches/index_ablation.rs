//! Index-structure ablation for the §V-A design choice.
//!
//! Replays the engine's exact per-key access pattern — mostly-ascending
//! inserts with bounded disorder, window scans per base tuple, periodic
//! prefix eviction — against three candidate stores:
//!
//! - the SWMR time-travel skip list (what Scale-OIJ uses; also supports
//!   lock-free shared reads, which the alternatives do not),
//! - a `BTreeMap` (ordered, single-threaded),
//! - an unsorted `Vec` with full-scan filtering (what Key-OIJ uses).
//!
//! The skip list's value shows where its concurrency-capable design sits
//! relative to sequential alternatives on pure single-thread cost.

use std::collections::BTreeMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// One synthetic workload step: (timestamp, is_base).
fn pattern(n: usize, disorder: i64) -> Vec<(i64, bool)> {
    let mut x = 9u64;
    (0..n)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let jitter = if disorder > 0 {
                (x >> 33) as i64 % disorder
            } else {
                0
            };
            (i as i64 - jitter, x.is_multiple_of(2))
        })
        .collect()
}

const WINDOW: i64 = 1_000;
const RETENTION: i64 = 10_000;
const EVICT_EVERY: usize = 256;

fn run_skiplist(steps: &[(i64, bool)]) -> f64 {
    use oij_common::{Timestamp, Tuple, Window};
    use oij_skiplist::TimeTravelIndex;
    let (mut w, r) = TimeTravelIndex::with_seed(5);
    let mut out = 0.0;
    for (i, &(ts, is_base)) in steps.iter().enumerate() {
        if is_base {
            let mut sum = 0.0;
            r.scan_window(
                1,
                Window {
                    start: Timestamp::from_micros(ts - WINDOW),
                    end: Timestamp::from_micros(ts),
                },
                |t| sum += t.value,
            );
            out += sum;
        } else {
            w.insert(Tuple::new(Timestamp::from_micros(ts), 1, 1.0));
        }
        if i % EVICT_EVERY == EVICT_EVERY - 1 {
            w.evict_below(Timestamp::from_micros(ts - RETENTION));
        }
    }
    out
}

fn run_btreemap(steps: &[(i64, bool)]) -> f64 {
    let mut map: BTreeMap<(i64, u64), f64> = BTreeMap::new();
    let mut seq = 0u64;
    let mut out = 0.0;
    for (i, &(ts, is_base)) in steps.iter().enumerate() {
        if is_base {
            let sum: f64 = map
                .range((ts - WINDOW, 0)..=(ts, u64::MAX))
                .map(|(_, v)| *v)
                .sum();
            out += sum;
        } else {
            seq += 1;
            map.insert((ts, seq), 1.0);
        }
        if i % EVICT_EVERY == EVICT_EVERY - 1 {
            map = map.split_off(&(ts - RETENTION, 0));
        }
    }
    out
}

fn run_unsorted_vec(steps: &[(i64, bool)]) -> f64 {
    let mut buf: Vec<(i64, f64)> = Vec::new();
    let mut out = 0.0;
    for (i, &(ts, is_base)) in steps.iter().enumerate() {
        if is_base {
            let sum: f64 = buf
                .iter()
                .filter(|(t, _)| *t >= ts - WINDOW && *t <= ts)
                .map(|(_, v)| *v)
                .sum();
            out += sum;
        } else {
            buf.push((ts, 1.0));
        }
        if i % EVICT_EVERY == EVICT_EVERY - 1 {
            buf.retain(|(t, _)| *t >= ts - RETENTION);
        }
    }
    out
}

fn bench_index_ablation(c: &mut Criterion) {
    for disorder in [0i64, 2_000] {
        let steps = pattern(50_000, disorder);
        let mut group = c.benchmark_group(format!("index_ablation_disorder_{disorder}us"));
        group.sample_size(10);
        group.throughput(criterion::Throughput::Elements(steps.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter("swmr_skiplist"),
            &steps,
            |b, s| b.iter(|| black_box(run_skiplist(s))),
        );
        group.bench_with_input(BenchmarkId::from_parameter("btreemap"), &steps, |b, s| {
            b.iter(|| black_box(run_btreemap(s)))
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("unsorted_vec_fullscan"),
            &steps,
            |b, s| b.iter(|| black_box(run_unsorted_vec(s))),
        );
        group.finish();
    }
}

criterion_group!(benches, bench_index_ablation);
criterion_main!(benches);
