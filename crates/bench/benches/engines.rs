//! End-to-end engine microbenchmarks on the Table IV default workload —
//! a criterion-tracked summary of the big harness comparisons, small
//! enough to run in CI.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use oij_bench::run_engine;
use oij_common::Event;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

fn events(tuples: usize) -> Vec<Event> {
    NamedWorkload::table_iv().config(tuples, 1.0).generate()
}

fn bench_engines(c: &mut Criterion) {
    let base = NamedWorkload::table_iv();
    let feed = events(20_000);
    let mut group = c.benchmark_group("engine_20k_tuples_tableiv");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(feed.len() as u64));
    for kind in [
        EngineKind::KeyOij,
        EngineKind::ScaleOij,
        EngineKind::ScaleOijNoInc,
        EngineKind::SplitJoin,
        EngineKind::OpenMldb,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                black_box(
                    run_engine(k, base.query(1.0), 2, Instrumentation::none(), &feed)
                        .expect("engine run"),
                )
            });
        });
    }
    group.finish();
}

fn bench_large_window_ablation(c: &mut Criterion) {
    // The Figure 16 mechanism as a tracked microbench: a 50× window.
    let base = NamedWorkload::table_iv();
    let feed = events(20_000);
    let mut query = base.query(1.0);
    query.window.preceding = oij_common::Duration::from_micros(50_000);
    let mut group = c.benchmark_group("engine_large_window_ablation");
    group.sample_size(10);
    for kind in [EngineKind::ScaleOij, EngineKind::ScaleOijNoInc] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                black_box(
                    run_engine(k, query.clone(), 2, Instrumentation::none(), &feed)
                        .expect("engine run"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_large_window_ablation);
criterion_main!(benches);
