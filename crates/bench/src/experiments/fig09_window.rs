//! Figure 9: window-size effect on Key-OIJ (Table IV default workload).
//!
//! Expected shape (paper §IV-B): throughput drops steeply as the window
//! grows — more in-window tuples to read and aggregate per base tuple,
//! with none of the overlap reused.

use oij_common::Duration;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

/// The window sweep, in µs.
pub const WINDOWS_US: [i64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut fig = Figure::new(
        "fig09_window",
        "Window-size effect on Key-OIJ (paper Fig. 9)",
        "window [µs]",
        "throughput [tuples/s]",
    );
    fig.note("Table IV defaults with varying |w|");

    let events = base.config(ctx.tuples, 1.0).generate();
    let mut tp = Vec::new();
    for w_us in WINDOWS_US {
        let mut query = base.query(1.0);
        query.window.preceding = Duration::from_micros(w_us);
        let stats = run_engine(
            EngineKind::KeyOij,
            query,
            joiners,
            Instrumentation::none(),
            &events,
        )
        .expect("engine run");
        println!("  |w|={:>9}µs: {:>12.0} tuples/s", w_us, stats.throughput);
        tp.push((w_us as f64, stats.throughput));
    }
    fig.push_series("Key-OIJ throughput", tp);
    fig.finish(ctx);
}
