//! Figure 5: Key-OIJ latency CDF on the four workloads (16 joiners).
//!
//! Expected shape (paper §IV-A): A and D mostly below the 20 ms SLA; B and
//! C with long tails.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{latency_cdf_series, run_engine, run_engine_paced, BenchCtx, Figure};

use super::workload_events;

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let mut fig = Figure::new(
        "fig05_latency_cdf",
        "Key-OIJ latency CDF under four real-world cases (paper Fig. 5)",
        "latency [ms]",
        "cumulative fraction",
    );
    fig.note(format!(
        "{joiners} joiner threads; green line in paper = 20 ms SLA"
    ));

    for w in NamedWorkload::all_real() {
        let events = workload_events(&w, ctx.tuples, ctx.scale);
        // Latency is measured at the workload's published arrival rate:
        // probe the engine's capacity, then pace at load_factor × capacity
        // (∞-rate workloads run unpaced).
        let stats = match w.load_factor {
            None => run_engine(
                EngineKind::KeyOij,
                w.query(ctx.scale),
                joiners,
                Instrumentation::latency(),
                &events,
            )
            .expect("engine run"),
            Some(lf) => {
                let capacity = run_engine(
                    EngineKind::KeyOij,
                    w.query(ctx.scale),
                    joiners,
                    Instrumentation::none(),
                    &events,
                )
                .expect("capacity probe")
                .throughput;
                run_engine_paced(
                    EngineKind::KeyOij,
                    w.query(ctx.scale),
                    joiners,
                    Instrumentation::latency(),
                    &events,
                    capacity * lf,
                )
                .expect("paced run")
            }
        };
        let lat = stats.latency.as_ref().expect("latency instrumented");
        println!(
            "  workload {}: p50 {:.3} ms, p99 {:.3} ms, ≤20ms: {:.1}%",
            w.name,
            lat.quantile_ns(0.5) as f64 / 1e6,
            lat.quantile_ns(0.99) as f64 / 1e6,
            lat.cdf_at(20_000_000) * 100.0
        );
        fig.push_series(format!("Workload {}", w.name), latency_cdf_series(&stats));
    }
    fig.finish(ctx);
}
