//! Figure 7: lateness effect on Key-OIJ (Table IV default workload).
//!
//! Expected shape (paper §IV-B): throughput drops rapidly as lateness
//! grows — the unsorted buffers fill with out-of-window tuples that every
//! join must scan — and *effectiveness* (Eq. 1) decays correspondingly.

use oij_common::Duration;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

/// The lateness sweep, in µs (window is 1000 µs).
pub const LATENESS_US: [i64; 5] = [10, 100, 1_000, 10_000, 100_000];

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut fig = Figure::new(
        "fig07_lateness",
        "Lateness effect on Key-OIJ (paper Fig. 7)",
        "lateness [µs]",
        "throughput [tuples/s] / effectiveness",
    );
    fig.note(
        "Table IV defaults: u=100, |w|=1000µs; the query's lateness tolerance l is swept \
         while the dataset's actual disorder stays at the 100µs default — exactly the \
         paper's setup (\"Key-OIJ has to keep more tuples in the buffer IN CASE we miss \
         tuples that arrive too late\")",
    );

    let config = base.config(ctx.tuples, 1.0);
    let events = config.generate();
    let mut tp = Vec::new();
    let mut eff = Vec::new();
    for l in LATENESS_US {
        let lateness = Duration::from_micros(l);
        let mut query = base.query(1.0);
        query.window.lateness = lateness;
        let stats = run_engine(
            EngineKind::KeyOij,
            query,
            joiners,
            Instrumentation {
                effectiveness: true,
                ..Instrumentation::none()
            },
            &events,
        )
        .expect("engine run");
        let e = stats.effectiveness.expect("instrumented");
        println!(
            "  lateness {:>7}µs: {:>12.0} tuples/s, effectiveness {:.4}",
            l, stats.throughput, e
        );
        tp.push((l as f64, stats.throughput));
        eff.push((l as f64, e));
    }
    fig.push_series("Key-OIJ throughput", tp);
    fig.push_series("effectiveness", eff);
    fig.finish(ctx);
}
