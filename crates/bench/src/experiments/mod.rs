//! One module per paper figure/table. Each exposes `run(&BenchCtx)`;
//! the `src/bin/` wrappers and `fig_all` call these.

pub mod abl_schedule;
pub mod fig04_scalability;
pub mod fig05_latency_cdf;
pub mod fig06_breakdown;
pub mod fig07_lateness;
pub mod fig08_keys;
pub mod fig09_window;
pub mod fig11_lateness_scale;
pub mod fig13_dynamic;
pub mod fig14_skew_cpu;
pub mod fig16_incremental;
pub mod fig17_20_workloads;
pub mod fig21_limitations;
pub mod fig22_23_openmldb;

use oij_common::Event;
use oij_workload::NamedWorkload;

/// Generates a named workload's event feed at the context's sizing.
pub fn workload_events(w: &NamedWorkload, tuples: usize, scale: f64) -> Vec<Event> {
    w.config(tuples, scale).generate()
}

/// Prints the Table II row of a workload (spec provenance in every run).
pub fn print_spec(w: &NamedWorkload) {
    let rate = match w.paper.arrival_rate {
        Some(r) => format!("{:.0}K/s", r / 1000.0),
        None => "∞".into(),
    };
    println!(
        "Workload {:<8} [{}]  v={:<8} u={:<6} |w|={:<6}s l={:<6}s  (proxy: w={}µs l={}µs, ~{:.0} matches/window at scale 1.0)",
        w.name,
        w.sector,
        rate,
        w.paper.unique_keys,
        w.paper.window_secs,
        w.paper.lateness_secs,
        w.window_us,
        w.lateness_us,
        w.paper.matches_per_window,
    );
}
