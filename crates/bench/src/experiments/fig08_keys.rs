//! Figure 8: unique-key effect on Key-OIJ (Table IV default workload) —
//! throughput (8a) plus unbalancedness and LLC misses (8b).
//!
//! Expected shapes (paper §IV-B): throughput collapses at few keys
//! (unbalanced static partitions) and dips again at many keys (LLC misses
//! from the enlarged footprint), peaking in between.

use oij_cachesim::CacheConfig;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

/// The key-count sweep.
pub const KEYS: [u64; 5] = [10, 100, 1_000, 10_000, 100_000];

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut fig = Figure::new(
        "fig08_keys",
        "Unique-key effect on Key-OIJ (paper Fig. 8)",
        "unique keys",
        "throughput / unbalancedness / LLC misses per 1k tuples",
    );
    fig.note("Table IV defaults with varying u; LLC = simulated Xeon 6252 cache");

    let mut tp = Vec::new();
    let mut unb = Vec::new();
    let mut llc = Vec::new();
    for u in KEYS {
        let mut config = base.config(ctx.tuples, 1.0);
        config.unique_keys = u;
        let events = config.generate();
        let stats = run_engine(
            EngineKind::KeyOij,
            base.query(1.0),
            joiners,
            Instrumentation {
                cache: Some(CacheConfig::xeon_gold_6252_llc()),
                ..Instrumentation::none()
            },
            &events,
        )
        .expect("engine run");
        let misses_per_1k = stats.cache_misses as f64 / (ctx.tuples as f64 / 1000.0);
        println!(
            "  u={:>7}: {:>12.0} tuples/s, unbalancedness {:.3}, LLC misses/1k tuples {:.1}",
            u, stats.throughput, stats.unbalancedness, misses_per_1k
        );
        tp.push((u as f64, stats.throughput));
        unb.push((u as f64, stats.unbalancedness));
        llc.push((u as f64, misses_per_1k));
    }
    fig.push_series("Key-OIJ throughput", tp);
    fig.push_series("unbalancedness", unb);
    fig.push_series("LLC misses / 1k tuples", llc);
    fig.finish(ctx);
}
