//! Figure 4 (+ Table II): Key-OIJ throughput vs joiner count on the four
//! real-world workload proxies.
//!
//! Expected shapes (paper §IV-A): A does not scale past 5 joiners (only 5
//! keys); B is the slowest (large window); C scales but starts low (large
//! lateness ⇒ wasted scanning); D saturates at its low arrival rate.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

use super::{print_spec, workload_events};

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    println!("— Table II: benchmark workloads —");
    for w in NamedWorkload::all_real() {
        print_spec(&w);
    }

    let mut fig = Figure::new(
        "fig04_scalability",
        "Key-OIJ scalability under four real-world cases (paper Fig. 4)",
        "joiner threads",
        "throughput [tuples/s]",
    );
    fig.note(format!(
        "{} events/run, density scale {}",
        ctx.tuples, ctx.scale
    ));
    fig.note("host has fewer cores than the paper's 48-HT Xeon; shapes, not absolutes");

    for w in NamedWorkload::all_real() {
        let events = workload_events(&w, ctx.tuples, ctx.scale);
        let query = w.query(ctx.scale);
        let mut points = Vec::new();
        for &j in &ctx.threads {
            let stats = run_engine(
                EngineKind::KeyOij,
                query.clone(),
                j,
                Instrumentation::none(),
                &events,
            )
            .expect("engine run");
            println!(
                "  workload {} joiners {:>2}: {:>12.0} tuples/s (unbalancedness {:.3})",
                w.name, j, stats.throughput, stats.unbalancedness
            );
            points.push((j as f64, stats.throughput));
        }
        fig.push_series(format!("Workload {}", w.name), points);
    }
    fig.finish(ctx);
}
