//! Figure 14: per-joiner CPU utilisation under rotating hot keys.
//!
//! 10K unique keys with a rotating hot subset. Expected shape (paper
//! §V-B): Key-OIJ's static partitions swing between idle and saturated as
//! the hot set moves; Scale-OIJ re-replicates the hot partitions and its
//! per-joiner utilisation stays much smoother.

use oij_common::Duration;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::{KeyDist, NamedWorkload};

use crate::{run_engine, BenchCtx, Figure};

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut config = base.config(ctx.tuples.max(200_000), 1.0);
    config.unique_keys = 10_000;
    config.key_dist = KeyDist::RotatingHot {
        hot_keys: 16,
        hot_fraction: 0.9,
        period: Duration::from_millis(20),
    };
    let events = config.generate();

    let mut fig = Figure::new(
        "fig14_skew_cpu",
        "Per-joiner utilisation under rotating hot keys (paper Fig. 14)",
        "wall-clock bucket (50 ms)",
        "mean |utilisation - joiner mean| (smoothness; lower = smoother)",
    );
    fig.note("series = per-joiner utilisation σ over time buckets; table shows the mean σ");

    for kind in [EngineKind::KeyOij, EngineKind::ScaleOij] {
        let stats = run_engine(
            kind,
            base.query(1.0),
            joiners,
            Instrumentation {
                timeline_bucket: Some(std::time::Duration::from_millis(50)),
                ..Instrumentation::none()
            },
            &events,
        )
        .expect("engine run");
        // The paper eyeballs smoothness; quantify it as each joiner's
        // utilisation standard deviation over time, averaged.
        let sigmas: Vec<f64> = stats.timelines.iter().map(|t| t.variation()).collect();
        let mean_sigma = sigmas.iter().sum::<f64>() / sigmas.len().max(1) as f64;
        println!(
            "  {:<10}: mean per-joiner utilisation σ = {:.4} (per joiner: {:?})",
            kind.label(),
            mean_sigma,
            sigmas
                .iter()
                .map(|s| (s * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        // Also save the full timelines for plotting.
        let points: Vec<(f64, f64)> = sigmas
            .iter()
            .enumerate()
            .map(|(j, s)| (j as f64, *s))
            .collect();
        fig.push_series(format!("{} σ/joiner", kind.label()), points);
    }
    fig.finish(ctx);
}
