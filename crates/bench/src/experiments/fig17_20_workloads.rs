//! Figures 17–20: the full engine comparison on Workloads A–D —
//! throughput vs joiner count plus latency CDFs at the maximum thread
//! count, for Key-OIJ, Scale-OIJ, Scale-OIJ w/o incremental and SplitJoin.
//!
//! Expected shapes (paper §V-D):
//! - A (5 keys): Scale-OIJ ≫ Key-OIJ (dynamic schedule); SplitJoin has
//!   decent latency but far lower throughput (broadcast cost).
//! - B (large window): the incremental technique is the difference-maker.
//! - C (large lateness): the time-travel index alone already wins;
//!   incremental adds little.
//! - D (low arrival rate): similar throughput everywhere; Scale-OIJ has
//!   the lowest latency.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{latency_cdf_series, run_engine, run_engine_paced, BenchCtx, Figure};

use super::workload_events;

const ENGINES: [EngineKind; 4] = [
    EngineKind::KeyOij,
    EngineKind::ScaleOij,
    EngineKind::ScaleOijNoInc,
    EngineKind::SplitJoin,
];

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    for (w, fig_no) in NamedWorkload::all_real().iter().zip([17, 18, 19, 20]) {
        one_workload(ctx, w, fig_no);
    }
}

fn one_workload(ctx: &BenchCtx, w: &NamedWorkload, fig_no: u32) {
    let events = workload_events(w, ctx.tuples, ctx.scale);
    let query = w.query(ctx.scale);

    let mut tp_fig = Figure::new(
        &format!("fig{fig_no}a_workload_{}_throughput", w.name),
        &format!(
            "Workload {}: throughput vs joiners (paper Fig. {fig_no})",
            w.name
        ),
        "joiner threads",
        "throughput [tuples/s]",
    );
    for kind in ENGINES {
        let mut points = Vec::new();
        for &j in &ctx.threads {
            let stats = run_engine(kind, query.clone(), j, Instrumentation::none(), &events)
                .expect("engine run");
            println!(
                "  W{} {:<18} joiners {:>2}: {:>12.0} tuples/s",
                w.name,
                kind.label(),
                j,
                stats.throughput
            );
            points.push((j as f64, stats.throughput));
        }
        tp_fig.push_series(kind.label(), points);
    }
    tp_fig.finish(ctx);

    let joiners = *ctx.threads.last().expect("threads non-empty");
    let mut lat_fig = Figure::new(
        &format!("fig{fig_no}b_workload_{}_latency", w.name),
        &format!(
            "Workload {}: latency CDF at {joiners} joiners (paper Fig. {fig_no})",
            w.name
        ),
        "latency [ms]",
        "cumulative fraction",
    );
    for kind in ENGINES {
        // Latency at the workload's published arrival rate (see fig05).
        let stats = match w.load_factor {
            None => run_engine(
                kind,
                query.clone(),
                joiners,
                Instrumentation::latency(),
                &events,
            )
            .expect("engine run"),
            Some(lf) => {
                let capacity = run_engine(
                    kind,
                    query.clone(),
                    joiners,
                    Instrumentation::none(),
                    &events,
                )
                .expect("capacity probe")
                .throughput;
                run_engine_paced(
                    kind,
                    query.clone(),
                    joiners,
                    Instrumentation::latency(),
                    &events,
                    capacity * lf,
                )
                .expect("paced run")
            }
        };
        if let Some(lat) = &stats.latency {
            println!(
                "  W{} {:<18} latency: p50 {:.3} ms, p99 {:.3} ms",
                w.name,
                kind.label(),
                lat.quantile_ns(0.5) as f64 / 1e6,
                lat.quantile_ns(0.99) as f64 / 1e6
            );
        }
        lat_fig.push_series(kind.label(), latency_cdf_series(&stats));
    }
    lat_fig.finish(ctx);
}
