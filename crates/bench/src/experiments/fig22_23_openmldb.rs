//! Figures 22–23: Scale-OIJ vs the OpenMLDB baseline on Workloads A–D.
//!
//! Expected shapes (paper §V-E): the shared-store baseline holds up only
//! on the low-rate Workload D; everywhere else Scale-OIJ wins by large
//! factors (paper: 8× on B, 7× on C) because the baseline's insertions
//! serialise on the store lock and every join re-reads a large window.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{latency_cdf_series, run_engine, run_engine_paced, BenchCtx, Figure};

use super::workload_events;

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let mut tp_fig = Figure::new(
        "fig22_openmldb_throughput",
        "Scale-OIJ vs OpenMLDB baseline: throughput (paper Fig. 22)",
        "workload (A=1 B=2 C=3 D=4)",
        "throughput [tuples/s]",
    );
    let mut lat_fig = Figure::new(
        "fig23_openmldb_latency",
        "Scale-OIJ vs OpenMLDB baseline: p99 latency (paper Fig. 23)",
        "workload (A=1 B=2 C=3 D=4)",
        "p99 latency [ms]",
    );
    tp_fig.note("baseline runs eager with no disorder handling, as in the paper's comparison");

    for kind in [EngineKind::ScaleOij, EngineKind::OpenMldb] {
        let mut tp = Vec::new();
        let mut lat = Vec::new();
        let mut cdf_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for (i, w) in NamedWorkload::all_real().iter().enumerate() {
            let events = workload_events(w, ctx.tuples, ctx.scale);
            // Throughput unpaced; latency paced at the published rate.
            let stats = run_engine(
                kind,
                w.query(ctx.scale),
                joiners,
                Instrumentation::none(),
                &events,
            )
            .expect("engine run");
            let lat_stats = match w.load_factor {
                None => run_engine(
                    kind,
                    w.query(ctx.scale),
                    joiners,
                    Instrumentation::latency(),
                    &events,
                )
                .expect("latency run"),
                Some(lf) => run_engine_paced(
                    kind,
                    w.query(ctx.scale),
                    joiners,
                    Instrumentation::latency(),
                    &events,
                    stats.throughput * lf,
                )
                .expect("paced run"),
            };
            let p99_ms = lat_stats
                .latency
                .as_ref()
                .map(|h| h.quantile_ns(0.99) as f64 / 1e6)
                .unwrap_or(f64::NAN);
            println!(
                "  W{} {:<10}: {:>12.0} tuples/s, p99 {:.3} ms",
                w.name,
                kind.label(),
                stats.throughput,
                p99_ms
            );
            tp.push(((i + 1) as f64, stats.throughput));
            lat.push(((i + 1) as f64, p99_ms));
            cdf_series.push((
                format!("{} W{}", kind.label(), w.name),
                latency_cdf_series(&lat_stats),
            ));
        }
        tp_fig.push_series(kind.label(), tp);
        lat_fig.push_series(kind.label(), lat);
        for (label, points) in cdf_series {
            lat_fig.push_series(label, points);
        }
    }
    tp_fig.finish(ctx);
    lat_fig.finish(ctx);
}
