//! Figure 6: Key-OIJ processing-time breakdown on the four workloads.
//!
//! Expected shape (paper §IV-A): match time dominates on the large-window
//! Workload B; lookup time dominates on the large-lateness Workload C.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

use super::workload_events;

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let mut fig = Figure::new(
        "fig06_breakdown",
        "Key-OIJ time breakdown under four real-world cases (paper Fig. 6)",
        "workload (A=1 B=2 C=3 D=4)",
        "fraction of processing time",
    );
    let instrument = Instrumentation {
        breakdown: true,
        ..Instrumentation::none()
    };

    let mut lookup_pts = Vec::new();
    let mut match_pts = Vec::new();
    let mut other_pts = Vec::new();
    for (i, w) in NamedWorkload::all_real().iter().enumerate() {
        let events = workload_events(w, ctx.tuples, ctx.scale);
        let stats = run_engine(
            EngineKind::KeyOij,
            w.query(ctx.scale),
            joiners,
            instrument.clone(),
            &events,
        )
        .expect("engine run");
        let b = stats.breakdown.expect("breakdown instrumented");
        let (l, m, o) = b.fractions();
        println!("  workload {}: {b}", w.name);
        let x = (i + 1) as f64;
        lookup_pts.push((x, l));
        match_pts.push((x, m));
        other_pts.push((x, o));
    }
    fig.push_series("lookup", lookup_pts);
    fig.push_series("match", match_pts);
    fig.push_series("other", other_pts);
    fig.finish(ctx);
}
