//! Figure 21 (+ Table V): the adversarial synthetic workload where
//! Scale-OIJ's optimisations buy nothing.
//!
//! u = 1000 keys, |w| = 100 µs, l = 10 µs. Expected shape (paper §V-D):
//! Key-OIJ wins — many keys already balance the static partitioning, the
//! tiny window leaves no overlap for incremental reuse, and the tiny
//! lateness voids the time-travel index; SplitJoin degrades with threads
//! as broadcast costs dominate the shrinking per-tuple work.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

use super::{print_spec, workload_events};

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let w = NamedWorkload::table_v();
    println!("— Table V: adversarial synthetic workload —");
    print_spec(&w);

    let events = workload_events(&w, ctx.tuples, 1.0);
    let query = w.query(1.0);

    let mut fig = Figure::new(
        "fig21_limitations",
        "Limitations of Scale-OIJ: Table V workload (paper Fig. 21)",
        "joiner threads",
        "throughput [tuples/s]",
    );
    for kind in [
        EngineKind::KeyOij,
        EngineKind::ScaleOij,
        EngineKind::ScaleOijNoInc,
        EngineKind::SplitJoin,
    ] {
        let mut points = Vec::new();
        for &j in &ctx.threads {
            let stats = run_engine(kind, query.clone(), j, Instrumentation::none(), &events)
                .expect("engine run");
            println!(
                "  {:<18} joiners {:>2}: {:>12.0} tuples/s",
                kind.label(),
                j,
                stats.throughput
            );
            points.push((j as f64, stats.throughput));
        }
        fig.push_series(kind.label(), points);
    }
    fig.finish(ctx);
}
