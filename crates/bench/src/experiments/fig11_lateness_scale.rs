//! Figure 11: lateness sweep, Key-OIJ vs Scale-OIJ.
//!
//! Expected shape (paper §V-A): Key-OIJ degrades with lateness; Scale-OIJ
//! is flat — the time-travel index locates the window boundary directly
//! and never visits the retained out-of-window tuples.

use oij_common::Duration;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

use super::fig07_lateness::LATENESS_US;

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut fig = Figure::new(
        "fig11_lateness_scale",
        "Lateness: Key-OIJ vs Scale-OIJ (paper Fig. 11)",
        "lateness [µs]",
        "throughput [tuples/s]",
    );
    fig.note("Scale-OIJ runs without incremental aggregation to isolate the index effect");
    fig.note("query lateness swept; dataset disorder fixed at the 100µs default (see fig07)");

    let config = base.config(ctx.tuples, 1.0);
    let events = config.generate();
    let mut series: Vec<(EngineKind, Vec<(f64, f64)>)> = vec![
        (EngineKind::KeyOij, Vec::new()),
        (EngineKind::ScaleOijNoInc, Vec::new()),
    ];
    for l in LATENESS_US {
        let lateness = Duration::from_micros(l);
        let mut query = base.query(1.0);
        query.window.lateness = lateness;
        for (kind, points) in &mut series {
            let stats = run_engine(
                *kind,
                query.clone(),
                joiners,
                Instrumentation::none(),
                &events,
            )
            .expect("engine run");
            println!(
                "  lateness {:>7}µs {:<18}: {:>12.0} tuples/s",
                l,
                kind.label(),
                stats.throughput
            );
            points.push((l as f64, stats.throughput));
        }
    }
    for (kind, points) in series {
        fig.push_series(kind.label(), points);
    }
    fig.finish(ctx);
}
