//! Ablation (beyond the paper's figures): how much of Scale-OIJ's win
//! comes from the dynamic schedule alone?
//!
//! Runs Scale-OIJ with the scheduler enabled vs disabled (static
//! partition→joiner binding, everything else identical) across key counts,
//! isolating Algorithm 3 from the time-travel index and incremental
//! aggregation. Complements Figure 13: there Scale-OIJ is compared against
//! Key-OIJ, which differs in *all three* techniques at once.

use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, run_engine_cfg, BenchCtx, Figure};
use oij_core::config::EngineConfig;

/// Runs the ablation.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut tp_fig = Figure::new(
        "abl_schedule_throughput",
        "Ablation: dynamic schedule on/off (Scale-OIJ)",
        "unique keys",
        "throughput [tuples/s]",
    );
    let mut unb_fig = Figure::new(
        "abl_schedule_unbalancedness",
        "Ablation: dynamic schedule on/off — unbalancedness",
        "unique keys",
        "unbalancedness",
    );

    for dynamic in [true, false] {
        let label = if dynamic {
            "dynamic schedule"
        } else {
            "static partitions"
        };
        let mut tp = Vec::new();
        let mut unb = Vec::new();
        for u in [2u64, 5, 20, 100, 1000] {
            let mut config = base.config(ctx.tuples, 1.0);
            config.unique_keys = u;
            let events = config.generate();
            let stats = if dynamic {
                run_engine(
                    EngineKind::ScaleOij,
                    base.query(1.0),
                    joiners,
                    Instrumentation::none(),
                    &events,
                )
            } else {
                let cfg = EngineConfig::new(base.query(1.0), joiners)
                    .expect("valid config")
                    .without_dynamic_schedule();
                run_engine_cfg(EngineKind::ScaleOij, cfg, &events)
            }
            .expect("engine run");
            println!(
                "  u={u:>5} {label:<18}: {:>12.0} tuples/s, unb {:.3}",
                stats.throughput, stats.unbalancedness
            );
            tp.push((u as f64, stats.throughput));
            unb.push((u as f64, stats.unbalancedness));
        }
        tp_fig.push_series(label, tp);
        unb_fig.push_series(label, unb);
    }
    tp_fig.finish(ctx);
    unb_fig.finish(ctx);
}
