//! Figure 16: incremental interval join under growing windows.
//!
//! Expected shape (paper §V-C): without the incremental technique,
//! throughput decays with the window (more data re-read and re-aggregated
//! per base tuple); with Subtract-on-Evict the cost per base tuple is the
//! *delta* between neighbour windows, so throughput stays high.

use oij_common::Duration;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

use super::fig09_window::WINDOWS_US;

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let base = NamedWorkload::table_iv();
    let mut fig = Figure::new(
        "fig16_incremental",
        "Incremental interval join across window sizes (paper Fig. 16)",
        "window [µs]",
        "throughput [tuples/s]",
    );

    let events = base.config(ctx.tuples, 1.0).generate();
    for kind in [EngineKind::ScaleOij, EngineKind::ScaleOijNoInc] {
        let mut points = Vec::new();
        for w_us in WINDOWS_US {
            let mut query = base.query(1.0);
            query.window.preceding = Duration::from_micros(w_us);
            let stats = run_engine(kind, query, joiners, Instrumentation::none(), &events)
                .expect("engine run");
            println!(
                "  |w|={:>9}µs {:<18}: {:>12.0} tuples/s",
                w_us,
                kind.label(),
                stats.throughput
            );
            points.push((w_us as f64, stats.throughput));
        }
        fig.push_series(kind.label(), points);
    }
    fig.finish(ctx);
}
