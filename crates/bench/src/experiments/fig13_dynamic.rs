//! Figure 13: the dynamic balanced schedule.
//!
//! - 13a: scalability with only 5 unique keys — Key-OIJ plateaus at 5
//!   joiners, Scale-OIJ keeps scaling via shared processing.
//! - 13b: key-count sweep, Key-OIJ vs Scale-OIJ throughput.
//! - 13c: unbalancedness across the same sweep (Scale-OIJ stays near 0).
//! - 13d: simulated LLC misses across the sweep (both engines rise with
//!   the footprint; the paper's explanation for the many-key dip).

use oij_cachesim::CacheConfig;
use oij_core::config::Instrumentation;
use oij_core::engine::EngineKind;
use oij_workload::NamedWorkload;

use crate::{run_engine, BenchCtx, Figure};

use super::fig08_keys::KEYS;

/// Runs the experiment.
pub fn run(ctx: &BenchCtx) {
    let base = NamedWorkload::table_iv();
    scalability_with_5_keys(ctx, &base);
    key_sweep(ctx, &base);
}

fn scalability_with_5_keys(ctx: &BenchCtx, base: &NamedWorkload) {
    let mut fig = Figure::new(
        "fig13a_scalability_5keys",
        "Scalability with 5 unique keys (paper Fig. 13a)",
        "joiner threads",
        "throughput [tuples/s]",
    );
    let mut config = base.config(ctx.tuples, 1.0);
    config.unique_keys = 5;
    let events = config.generate();
    for kind in [EngineKind::KeyOij, EngineKind::ScaleOij] {
        let mut points = Vec::new();
        for &j in &ctx.threads {
            let stats = run_engine(kind, base.query(1.0), j, Instrumentation::none(), &events)
                .expect("engine run");
            println!(
                "  u=5 {:<10} joiners {:>2}: {:>12.0} tuples/s (unb {:.3}, idle joiners {})",
                kind.label(),
                j,
                stats.throughput,
                stats.unbalancedness,
                stats.joiner_loads.iter().filter(|&&l| l == 0).count()
            );
            points.push((j as f64, stats.throughput));
        }
        fig.push_series(kind.label(), points);
    }
    fig.finish(ctx);
}

fn key_sweep(ctx: &BenchCtx, base: &NamedWorkload) {
    let joiners = *ctx.threads.last().expect("threads non-empty");
    let mut tp_fig = Figure::new(
        "fig13b_keys_throughput",
        "Key-count sweep: throughput (paper Fig. 13b)",
        "unique keys",
        "throughput [tuples/s]",
    );
    let mut unb_fig = Figure::new(
        "fig13c_keys_unbalancedness",
        "Key-count sweep: unbalancedness (paper Fig. 13c)",
        "unique keys",
        "unbalancedness",
    );
    let mut llc_fig = Figure::new(
        "fig13d_keys_llc",
        "Key-count sweep: simulated LLC misses (paper Fig. 13d)",
        "unique keys",
        "LLC misses per 1k tuples",
    );

    for kind in [EngineKind::KeyOij, EngineKind::ScaleOij] {
        let mut tp = Vec::new();
        let mut unb = Vec::new();
        let mut llc = Vec::new();
        for u in KEYS {
            let mut config = base.config(ctx.tuples, 1.0);
            config.unique_keys = u;
            let events = config.generate();
            let stats = run_engine(
                kind,
                base.query(1.0),
                joiners,
                Instrumentation {
                    cache: Some(CacheConfig::xeon_gold_6252_llc()),
                    ..Instrumentation::none()
                },
                &events,
            )
            .expect("engine run");
            let misses_per_1k = stats.cache_misses as f64 / (ctx.tuples as f64 / 1000.0);
            println!(
                "  u={:>7} {:<10}: {:>12.0} tuples/s, unb {:.3}, LLC/1k {:.1}",
                u,
                kind.label(),
                stats.throughput,
                stats.unbalancedness,
                misses_per_1k
            );
            tp.push((u as f64, stats.throughput));
            unb.push((u as f64, stats.unbalancedness));
            llc.push((u as f64, misses_per_1k));
        }
        tp_fig.push_series(kind.label(), tp);
        unb_fig.push_series(kind.label(), unb);
        llc_fig.push_series(kind.label(), llc);
    }
    tp_fig.finish(ctx);
    unb_fig.finish(ctx);
    llc_fig.finish(ctx);
}
