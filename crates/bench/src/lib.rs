//! # oij-bench — the experiment harness
//!
//! One binary per figure/table of the paper's evaluation (see DESIGN.md
//! §4 for the full index). Each binary prints the series the paper plots
//! and writes machine-readable JSON under `EXPERIMENTS-data/`.
//!
//! Run everything with `cargo run -p oij-bench --release --bin fig_all`,
//! or a single experiment, e.g.:
//!
//! ```text
//! cargo run -p oij-bench --release --bin fig07_lateness
//! ```
//!
//! ## Sizing
//!
//! Absolute numbers depend on the host; the paper ran a 48-HT-core Xeon.
//! The *shapes* (who wins, where the cliffs are) are what these harnesses
//! reproduce. Environment knobs:
//!
//! - `OIJ_BENCH_TUPLES` — events per run (default per experiment).
//! - `OIJ_BENCH_SCALE` — density scale for the Table II workload proxies
//!   (default 0.05: 5% of the paper's matches-per-window so a full sweep
//!   finishes in minutes on a laptop; set 1.0 for paper-density runs).
//! - `OIJ_BENCH_OUT` — output directory (default `EXPERIMENTS-data`).
//! - `OIJ_BENCH_THREADS` — comma-separated joiner counts for sweeps
//!   (default `1,2,4,8,16`).

#![warn(missing_docs)]

pub mod experiments;
pub mod plot;

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

use oij_common::{EmitMode, Event, OijQuery, Result};
use oij_core::config::{EngineConfig, Instrumentation};
use oij_core::engine::{EngineKind, OijEngine, RunStats};
use oij_core::sink::Sink;
use oij_core::{KeyOij, OpenMldbBaseline, ScaleOij, SplitJoin};

/// Experiment context: sizing knobs and the output directory.
#[derive(Debug, Clone)]
pub struct BenchCtx {
    /// Events per run.
    pub tuples: usize,
    /// Density scale for Table II workload proxies.
    pub scale: f64,
    /// Joiner counts to sweep.
    pub threads: Vec<usize>,
    /// Where JSON outputs go.
    pub out_dir: PathBuf,
}

impl BenchCtx {
    /// Reads the environment knobs, with an experiment-specific default
    /// event count.
    pub fn from_env(default_tuples: usize) -> Self {
        let tuples = std::env::var("OIJ_BENCH_TUPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_tuples);
        let scale = std::env::var("OIJ_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.05);
        let threads = std::env::var("OIJ_BENCH_THREADS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
        let out_dir = PathBuf::from(
            std::env::var("OIJ_BENCH_OUT").unwrap_or_else(|_| "EXPERIMENTS-data".into()),
        );
        BenchCtx {
            tuples,
            scale,
            threads,
            out_dir,
        }
    }

    /// Writes a serialisable result under `out_dir/<name>.json`.
    pub fn save<T: Serialize>(&self, name: &str, value: &T) {
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.json"));
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let json = serde_json::to_string_pretty(value).expect("serialisable");
                if let Err(e) = f.write_all(json.as_bytes()) {
                    eprintln!("warning: write {} failed: {e}", path.display());
                } else {
                    println!("\n[saved {}]", path.display());
                }
            }
            Err(e) => eprintln!("warning: create {} failed: {e}", path.display()),
        }
    }
}

/// Spawns an engine by kind and streams `events` through it.
pub fn run_engine(
    kind: EngineKind,
    query: OijQuery,
    joiners: usize,
    instrument: Instrumentation,
    events: &[Event],
) -> Result<RunStats> {
    let mut cfg = EngineConfig::new(query, joiners)?.with_instrument(instrument);
    if kind == EngineKind::ScaleOijNoInc {
        cfg = cfg.without_incremental();
    }
    run_engine_cfg(kind, cfg, events)
}

/// Like [`run_engine`] but with a fully custom config.
pub fn run_engine_cfg(kind: EngineKind, cfg: EngineConfig, events: &[Event]) -> Result<RunStats> {
    let sink = Sink::null();
    match kind {
        EngineKind::KeyOij => drive(KeyOij::spawn(cfg, sink)?, events),
        EngineKind::ScaleOij | EngineKind::ScaleOijNoInc => {
            drive(ScaleOij::spawn(cfg, sink)?, events)
        }
        EngineKind::SplitJoin => drive(SplitJoin::spawn(cfg, sink)?, events),
        EngineKind::OpenMldb => {
            let mut cfg = cfg;
            cfg.query.emit = EmitMode::Eager; // the baseline's only mode
            drive(OpenMldbBaseline::spawn(cfg, sink)?, events)
        }
    }
}

fn drive<E: OijEngine>(mut engine: E, events: &[Event]) -> Result<RunStats> {
    for e in events {
        engine.push(e.clone())?;
    }
    engine.finish()
}

/// Streams `events` at a fixed wall-clock arrival rate (tuples/second).
/// Used for latency experiments: the paper's latency CDFs are measured at
/// each workload's published arrival rate, not at saturation.
pub fn run_engine_paced(
    kind: EngineKind,
    query: OijQuery,
    joiners: usize,
    instrument: Instrumentation,
    events: &[Event],
    rate: f64,
) -> Result<RunStats> {
    let mut cfg = EngineConfig::new(query, joiners)?.with_instrument(instrument);
    if kind == EngineKind::ScaleOijNoInc {
        cfg = cfg.without_incremental();
    }
    let sink = Sink::null();
    match kind {
        EngineKind::KeyOij => drive_paced(KeyOij::spawn(cfg, sink)?, events, rate),
        EngineKind::ScaleOij | EngineKind::ScaleOijNoInc => {
            drive_paced(ScaleOij::spawn(cfg, sink)?, events, rate)
        }
        EngineKind::SplitJoin => drive_paced(SplitJoin::spawn(cfg, sink)?, events, rate),
        EngineKind::OpenMldb => {
            cfg.query.emit = EmitMode::Eager;
            drive_paced(OpenMldbBaseline::spawn(cfg, sink)?, events, rate)
        }
    }
}

fn drive_paced<E: OijEngine>(mut engine: E, events: &[Event], rate: f64) -> Result<RunStats> {
    assert!(rate > 0.0, "pacing rate must be positive");
    let start = std::time::Instant::now();
    for (i, e) in events.iter().enumerate() {
        // Re-sync every 32 tuples; sleeping per tuple would be dominated by
        // timer overhead at realistic rates.
        if i % 32 == 0 {
            let target = std::time::Duration::from_secs_f64(i as f64 / rate);
            let elapsed = start.elapsed();
            if elapsed < target {
                std::thread::sleep(target - elapsed);
            }
        }
        engine.push(e.clone())?;
    }
    engine.finish()
}

/// A labelled x/y series, as plotted in the paper's figures.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A figure's worth of series plus metadata, printed and saved as JSON.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier, e.g. `"fig07_lateness"`.
    pub id: String,
    /// Human title, e.g. `"Lateness Effect (paper Fig. 7)"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (sizing, host caveats).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Adds a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Prints the figure as an aligned text table (x in rows, series in
    /// columns) and saves it through the context.
    pub fn finish(&self, ctx: &BenchCtx) {
        println!("\n=== {} — {} ===", self.id, self.title);
        print!("{:>16}", self.x_label);
        for s in &self.series {
            print!("{:>22}", s.label);
        }
        println!("    [{}]", self.y_label);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            print!("{x:>16.3}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => print!("{y:>22.3}"),
                    None => print!("{:>22}", "-"),
                }
            }
            println!();
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
        ctx.save(&self.id, self);
    }
}

/// Formats a latency histogram as the CDF series the paper plots
/// (x = latency in ms, y = cumulative fraction), downsampled to the
/// non-empty buckets.
pub fn latency_cdf_series(stats: &RunStats) -> Vec<(f64, f64)> {
    stats
        .latency
        .as_ref()
        .map(|h| {
            h.cdf()
                .into_iter()
                .map(|(ns, frac)| (ns as f64 / 1e6, frac))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oij_common::{Duration, Side, Timestamp, Tuple};

    fn tiny_events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::data(
                    i,
                    if i % 2 == 0 { Side::Probe } else { Side::Base },
                    Tuple::new(Timestamp::from_micros(i as i64), i % 4, 1.0),
                )
            })
            .collect()
    }

    #[test]
    fn run_engine_covers_every_kind() {
        let q = OijQuery::sum_over_preceding(Duration::from_micros(10), Duration::ZERO).unwrap();
        let events = tiny_events(200);
        for kind in [
            EngineKind::KeyOij,
            EngineKind::ScaleOij,
            EngineKind::ScaleOijNoInc,
            EngineKind::SplitJoin,
            EngineKind::OpenMldb,
        ] {
            let stats = run_engine(kind, q.clone(), 2, Instrumentation::none(), &events).unwrap();
            assert_eq!(stats.input_tuples, 200, "{kind:?}");
            assert_eq!(stats.results, 100, "{kind:?}");
        }
    }

    #[test]
    fn figure_roundtrips_to_json() {
        let ctx = BenchCtx {
            tuples: 1,
            scale: 1.0,
            threads: vec![1],
            out_dir: std::env::temp_dir().join("oij-bench-test"),
        };
        let mut fig = Figure::new("test_fig", "Test", "x", "y");
        fig.push_series("a", vec![(1.0, 2.0), (2.0, 4.0)]);
        fig.note("hello");
        fig.finish(&ctx);
        let loaded =
            std::fs::read_to_string(ctx.out_dir.join("test_fig.json")).expect("saved file");
        assert!(loaded.contains("\"test_fig\""));
        assert!(loaded.contains("hello"));
    }

    #[test]
    fn paced_run_respects_rate() {
        let q = OijQuery::sum_over_preceding(
            oij_common::Duration::from_micros(10),
            oij_common::Duration::ZERO,
        )
        .unwrap();
        let events = tiny_events(2_000);
        // 40k tuples/s → 2000 tuples take ≥ 50ms.
        let stats = run_engine_paced(
            EngineKind::KeyOij,
            q,
            1,
            Instrumentation::none(),
            &events,
            40_000.0,
        )
        .unwrap();
        assert!(
            stats.elapsed.as_millis() >= 45,
            "paced run finished too fast: {:?}",
            stats.elapsed
        );
        assert!(stats.throughput <= 45_000.0, "{}", stats.throughput);
    }

    #[test]
    fn ctx_env_defaults() {
        let ctx = BenchCtx::from_env(1234);
        assert!(ctx.tuples > 0);
        assert!(!ctx.threads.is_empty());
    }
}
