//! Terminal rendering of saved figures.
//!
//! The harness writes every figure as JSON under `EXPERIMENTS-data/`; this
//! module renders them as ASCII line charts so results can be inspected
//! without leaving the terminal (`cargo run -p oij-bench --bin fig_plot`).

use crate::{Figure, Series};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct PlotOptions {
    /// Chart width in columns (plot area, excluding the y-axis gutter).
    pub width: usize,
    /// Chart height in rows.
    pub height: usize,
    /// Log-scale the x axis (auto-enabled for sweeps spanning ≥ 2 decades).
    pub log_x: Option<bool>,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 72,
            height: 18,
            log_x: None,
        }
    }
}

/// Marker glyphs cycled across series.
const MARKS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders a figure as an ASCII chart with a legend.
pub fn render(fig: &Figure, opts: PlotOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", fig.id, fig.title));

    let points: Vec<&(f64, f64)> = fig.series.iter().flat_map(|s| &s.points).collect();
    if points.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &&(x, y) in &points {
        if x.is_finite() {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
        }
        if y.is_finite() {
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || !y_min.is_finite() {
        out.push_str("  (no finite data)\n");
        return out;
    }
    y_min = y_min.min(0.0).min(y_min); // anchor at zero for magnitudes ≥ 0
    if y_min > 0.0 {
        y_min = 0.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let log_x = opts
        .log_x
        .unwrap_or(x_min > 0.0 && x_max / x_min.max(f64::MIN_POSITIVE) >= 100.0);
    let fx = |x: f64| -> f64 {
        if log_x {
            (x.max(f64::MIN_POSITIVE)).log10()
        } else {
            x
        }
    };
    let (px_min, px_max) = (fx(x_min), fx(x_max));
    let x_span = (px_max - px_min).max(f64::EPSILON);
    let y_span = y_max - y_min;

    let mut grid = vec![vec![' '; opts.width]; opts.height];
    for (si, series) in fig.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        plot_series(&mut grid, series, mark, |x, y| {
            let cx = ((fx(x) - px_min) / x_span * (opts.width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / y_span * (opts.height - 1) as f64).round() as usize;
            (cx.min(opts.width - 1), cy.min(opts.height - 1))
        });
    }

    // Paint top-down with a y-axis gutter.
    for row in (0..opts.height).rev() {
        let label = if row == opts.height - 1 {
            format!("{:>10.3e}", y_max)
        } else if row == 0 {
            format!("{:>10.3e}", y_min)
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(grid[row].iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(opts.width));
    out.push('\n');
    out.push_str(&format!(
        "{:>11}{:<width$}\n",
        "",
        format!(
            "{}{:.4} .. {:.4}  [{}]",
            if log_x { "log " } else { "" },
            x_min,
            x_max,
            fig.x_label
        ),
        width = opts.width
    ));
    for (si, series) in fig.series.iter().enumerate() {
        out.push_str(&format!(
            "{:>12} {} = {}\n",
            "",
            MARKS[si % MARKS.len()],
            series.label
        ));
    }
    out
}

fn plot_series(
    grid: &mut [Vec<char>],
    series: &Series,
    mark: char,
    to_cell: impl Fn(f64, f64) -> (usize, usize),
) {
    for &(x, y) in &series.points {
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let (cx, cy) = to_cell(x, y);
        grid[cy][cx] = mark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut f = Figure::new("t", "Test figure", "x", "y");
        f.push_series("up", vec![(1.0, 1.0), (2.0, 2.0), (4.0, 4.0)]);
        f.push_series("down", vec![(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]);
        f
    }

    #[test]
    fn renders_markers_and_legend() {
        let text = render(&fig(), PlotOptions::default());
        assert!(text.contains("Test figure"));
        assert!(text.contains('*'));
        assert!(text.contains('o'));
        assert!(text.contains("* = up"));
        assert!(text.contains("o = down"));
        assert!(text.contains("[x]"));
    }

    #[test]
    fn empty_figure_is_handled() {
        let f = Figure::new("e", "Empty", "x", "y");
        let text = render(&f, PlotOptions::default());
        assert!(text.contains("no data"));
    }

    #[test]
    fn log_x_auto_enables_for_wide_sweeps() {
        let mut f = Figure::new("l", "Log", "keys", "y");
        f.push_series("s", vec![(10.0, 1.0), (100.0, 2.0), (100_000.0, 3.0)]);
        let text = render(&f, PlotOptions::default());
        assert!(text.contains("log "), "{text}");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut f = Figure::new("c", "Const", "x", "y");
        f.push_series("s", vec![(1.0, 5.0), (2.0, 5.0)]);
        let text = render(&f, PlotOptions::default());
        assert!(text.contains('*'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let mut f = Figure::new("n", "NaN", "x", "y");
        f.push_series("s", vec![(1.0, f64::NAN), (2.0, 3.0)]);
        let text = render(&f, PlotOptions::default());
        assert!(text.contains('*'));
    }
}
