//! Thin wrapper around `oij_bench::experiments::fig08_keys`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(150000);
    oij_bench::experiments::fig08_keys::run(&ctx);
}
