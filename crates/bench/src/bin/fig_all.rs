//! Runs every experiment in DESIGN.md's per-experiment index, writing all
//! figure data to `EXPERIMENTS-data/`. Per-experiment default sizes match
//! the individual binaries; `OIJ_BENCH_TUPLES` overrides all of them.
use oij_bench::{experiments as ex, BenchCtx};

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = |tuples: usize| BenchCtx::from_env(tuples);
    println!(
        "running the full experiment suite (scale = {})",
        ctx(0).scale
    );
    ex::fig04_scalability::run(&ctx(200_000));
    ex::fig05_latency_cdf::run(&ctx(200_000));
    ex::fig06_breakdown::run(&ctx(150_000));
    ex::fig07_lateness::run(&ctx(500_000));
    ex::fig08_keys::run(&ctx(150_000));
    ex::fig09_window::run(&ctx(600_000));
    ex::fig11_lateness_scale::run(&ctx(400_000));
    ex::fig13_dynamic::run(&ctx(150_000));
    ex::fig14_skew_cpu::run(&ctx(300_000));
    ex::fig16_incremental::run(&ctx(400_000));
    ex::fig17_20_workloads::run(&ctx(150_000));
    ex::fig21_limitations::run(&ctx(150_000));
    ex::fig22_23_openmldb::run(&ctx(150_000));
    ex::abl_schedule::run(&ctx(150_000));
    let out = ctx(0).out_dir;
    println!(
        "\nall experiments done in {:.1}s; data in {}",
        t0.elapsed().as_secs_f64(),
        out.display()
    );
}
