//! Bench-regression smoke gate for the batched routing path (DESIGN.md
//! §10, EXPERIMENTS.md §bench-smoke).
//!
//! Measures every engine on one fixed small workload at `batch_size = 1`
//! (the pass-through oracle) and `batch_size = 64`, three trials each,
//! reporting **median throughput** and **p99 latency**. The index
//! backend is a matrix axis: every engine runs on the skip-list
//! reference, and the flagship Scale-OIJ additionally on Jiffy-lite and
//! HINT-lite, so a backend-local regression can't hide behind the
//! default rows:
//!
//! ```text
//! cargo run --release -p oij-bench --bin bench_smoke              # write BENCH_pr9.json
//! cargo run --release -p oij-bench --bin bench_smoke -- --check BENCH_pr9.json
//! ```
//!
//! Without arguments the measurement is written to `BENCH_pr9.json` (or
//! the path given as the sole positional argument) — the committed
//! baseline. With `--check <path>` the workload is re-measured and the
//! process exits nonzero if any engine/backend/batch configuration lost
//! more than [`REGRESSION_TOLERANCE`] of its baseline median throughput
//! — the CI job `bench-smoke` runs exactly this. Pre-PR9 baselines
//! (rows without a `backend` field) parse as skip-list rows.
//!
//! Env knobs: `OIJ_BENCH_TUPLES` (default 120 000) and
//! `OIJ_BENCH_TRIALS` (default 3; the median wants an odd count).

use std::process::ExitCode;

use serde::{Deserialize, Serialize};

use oij_bench::run_engine_cfg;
use oij_core::config::{EngineConfig, IndexBackend, Instrumentation};
use oij_core::engine::EngineKind;
use oij_workload::{KeyDist, SyntheticConfig};

use oij_common::{Duration, OijQuery};

/// Median throughput may drop by at most this fraction before the check
/// fails. Loose enough for shared-runner noise, tight enough to catch a
/// real hot-path regression.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// The batch sizes measured: the pass-through oracle and the default
/// coalescing depth.
const BATCHES: [usize; 2] = [1, 64];

const ENGINES: [EngineKind; 4] = [
    EngineKind::KeyOij,
    EngineKind::ScaleOij,
    EngineKind::SplitJoin,
    EngineKind::OpenMldb,
];

/// The engine × backend rows measured: every engine on the skip-list
/// reference, plus Scale-OIJ on each alternative backend.
fn bench_matrix() -> Vec<(EngineKind, IndexBackend)> {
    let mut rows: Vec<(EngineKind, IndexBackend)> = ENGINES
        .iter()
        .map(|&k| (k, IndexBackend::SkipList))
        .collect();
    rows.push((EngineKind::ScaleOij, IndexBackend::JiffyLite));
    rows.push((EngineKind::ScaleOij, IndexBackend::HintLite));
    rows
}

/// One engine × backend × batch-size measurement (medians over trials).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Measurement {
    /// Engine label (paper legend name).
    engine: String,
    /// Index backend label. `default` (not `default = "fn"`: the
    /// vendored derive only supports the bare form) keeps pre-PR9
    /// baselines parseable; the loader maps the resulting empty string
    /// to the skip-list reference.
    #[serde(default)]
    backend: String,
    /// Coalescing depth this row was measured at.
    batch_size: usize,
    /// Median throughput over the trials, tuples/second.
    throughput: f64,
    /// Every trial's throughput, for eyeballing variance.
    trials: Vec<f64>,
    /// Median p99 arrival→emission latency, milliseconds.
    p99_ms: f64,
}

/// The committed baseline file format.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Workload identity, so a baseline is never compared across shapes.
    workload: String,
    /// Events per trial.
    tuples: usize,
    /// Trials per configuration.
    trials: usize,
    /// Joiners per engine.
    joiners: usize,
    /// All measurements.
    measurements: Vec<Measurement>,
    /// batch=64 over batch=1 median-throughput ratio per engine.
    speedups: Vec<(String, f64)>,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughput"));
    xs[xs.len() / 2]
}

fn measure(tuples: usize, trials: usize, joiners: usize) -> Report {
    // Fixed probe-heavy workload: lots of cheap per-tuple work, so the
    // per-message routing overhead the batched path amortizes dominates.
    let events = SyntheticConfig {
        tuples,
        unique_keys: 64,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.8,
        spacing: Duration::from_micros(1),
        disorder: Duration::ZERO,
        payload_bytes: 0,
        seed: 0x5EED_0004,
    }
    .generate();
    let query = OijQuery::sum_over_preceding(Duration::from_micros(100), Duration::ZERO)
        .expect("static query");

    let mut measurements = Vec::new();
    for (kind, backend) in bench_matrix() {
        for batch in BATCHES {
            let mut tput = Vec::with_capacity(trials);
            let mut p99 = Vec::with_capacity(trials);
            for _ in 0..trials {
                let cfg = EngineConfig::new(query.clone(), joiners)
                    .expect("valid config")
                    .with_instrument(Instrumentation::latency())
                    .with_batch_size(batch)
                    .with_index_backend(backend);
                let stats = run_engine_cfg(kind, cfg, &events).expect("bench run");
                tput.push(stats.throughput);
                p99.push(
                    stats
                        .latency
                        .as_ref()
                        .map(|h| h.quantile_ns(0.99) as f64 / 1e6)
                        .unwrap_or(0.0),
                );
            }
            let m = Measurement {
                engine: kind.label().to_string(),
                backend: backend.label().to_string(),
                batch_size: batch,
                throughput: median(&mut tput.clone()),
                trials: tput,
                p99_ms: median(&mut p99),
            };
            println!(
                "{:>12} {:>10} batch={:<3} {:>12.0} tuples/s   p99 {:>8.3} ms",
                m.engine, m.backend, m.batch_size, m.throughput, m.p99_ms
            );
            measurements.push(m);
        }
    }

    // Speedups stay a per-engine summary on the reference backend.
    let skiplist = IndexBackend::SkipList.label();
    let speedups = ENGINES
        .iter()
        .map(|k| {
            let at = |b: usize| {
                measurements
                    .iter()
                    .find(|m| m.engine == k.label() && m.backend == skiplist && m.batch_size == b)
                    .map(|m| m.throughput)
                    .unwrap_or(f64::NAN)
            };
            (k.label().to_string(), at(64) / at(1))
        })
        .collect::<Vec<_>>();
    for (engine, s) in &speedups {
        println!("{engine:>12} batch=64 speedup over batch=1: {s:.2}x");
    }

    Report {
        workload: "uniform-64keys-0.8probe-100us-window".into(),
        tuples,
        trials,
        joiners,
        measurements,
        speedups,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tuples = env_usize("OIJ_BENCH_TUPLES", 120_000);
    let trials = env_usize("OIJ_BENCH_TRIALS", 3).max(1);
    let joiners = 4;

    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_pr9.json");
        let mut baseline: Report = match std::fs::read_to_string(path) {
            Ok(s) => match serde_json::from_str(&s) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Rows from a pre-backend-axis baseline measured the default
        // (skip-list) backend.
        for m in &mut baseline.measurements {
            if m.backend.is_empty() {
                m.backend = IndexBackend::SkipList.label().to_string();
            }
        }
        // Re-measure at the baseline's own sizing so medians compare
        // like-for-like regardless of the caller's env.
        let current = measure(baseline.tuples, baseline.trials, baseline.joiners);
        if current.workload != baseline.workload {
            eprintln!(
                "error: workload mismatch ({} vs {}); refresh the baseline",
                current.workload, baseline.workload
            );
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for b in &baseline.measurements {
            let Some(c) = current.measurements.iter().find(|m| {
                m.engine == b.engine && m.backend == b.backend && m.batch_size == b.batch_size
            }) else {
                eprintln!(
                    "error: {} on {} batch={} missing from rerun",
                    b.engine, b.backend, b.batch_size
                );
                failed = true;
                continue;
            };
            let floor = b.throughput * (1.0 - REGRESSION_TOLERANCE);
            if c.throughput < floor {
                eprintln!(
                    "REGRESSION: {} on {} batch={} {:.0} tuples/s < {:.0} \
                     (baseline {:.0} − {:.0}% tolerance)",
                    b.engine,
                    b.backend,
                    b.batch_size,
                    c.throughput,
                    floor,
                    b.throughput,
                    REGRESSION_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "bench-smoke: OK — every configuration within {:.0}% of the baseline",
            REGRESSION_TOLERANCE * 100.0
        );
        return ExitCode::SUCCESS;
    }

    let out = args.first().map(String::as_str).unwrap_or("BENCH_pr9.json");
    let report = measure(tuples, trials, joiners);
    let json = serde_json::to_string_pretty(&report).expect("serialisable report");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("error: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("[saved {out}]");
    ExitCode::SUCCESS
}
