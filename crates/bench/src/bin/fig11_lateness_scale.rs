//! Thin wrapper around `oij_bench::experiments::fig11_lateness_scale`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(400000);
    oij_bench::experiments::fig11_lateness_scale::run(&ctx);
}
