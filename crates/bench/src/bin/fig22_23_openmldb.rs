//! Thin wrapper around `oij_bench::experiments::fig22_23_openmldb`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(150000);
    oij_bench::experiments::fig22_23_openmldb::run(&ctx);
}
