//! Thin wrapper around `oij_bench::experiments::fig04_scalability`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(200000);
    oij_bench::experiments::fig04_scalability::run(&ctx);
}
