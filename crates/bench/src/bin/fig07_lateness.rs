//! Thin wrapper around `oij_bench::experiments::fig07_lateness`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(500000);
    oij_bench::experiments::fig07_lateness::run(&ctx);
}
