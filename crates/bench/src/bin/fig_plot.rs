//! Renders saved experiment figures (`EXPERIMENTS-data/*.json`) as ASCII
//! charts. Usage: `fig_plot [figure-id ...]` (default: all saved figures).
use oij_bench::plot::{render, PlotOptions};
use oij_bench::Figure;

fn main() {
    let dir = std::env::var("OIJ_BENCH_OUT").unwrap_or_else(|_| "EXPERIMENTS-data".into());
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let mut entries: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd.filter_map(|e| e.ok()).collect(),
        Err(e) => {
            eprintln!("cannot read {dir}: {e} (run fig_all first)");
            std::process::exit(1);
        }
    };
    entries.sort_by_key(|e| e.file_name());
    let mut shown = 0;
    for entry in entries {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        if !filter.is_empty() && !filter.iter().any(|f| stem.contains(f.as_str())) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        // Figure is Serialize-only; parse the JSON loosely.
        let Ok(fig) = serde_json::from_str::<serde_json::Value>(&text) else {
            continue;
        };
        let fig = Figure {
            id: fig["id"].as_str().unwrap_or(stem).to_string(),
            title: fig["title"].as_str().unwrap_or("").to_string(),
            x_label: fig["x_label"].as_str().unwrap_or("x").to_string(),
            y_label: fig["y_label"].as_str().unwrap_or("y").to_string(),
            series: fig["series"]
                .as_array()
                .map(|arr| {
                    arr.iter()
                        .map(|s| oij_bench::Series {
                            label: s["label"].as_str().unwrap_or("?").to_string(),
                            points: s["points"]
                                .as_array()
                                .map(|ps| {
                                    ps.iter()
                                        .filter_map(|p| Some((p[0].as_f64()?, p[1].as_f64()?)))
                                        .collect()
                                })
                                .unwrap_or_default(),
                        })
                        .collect()
                })
                .unwrap_or_default(),
            notes: vec![],
        };
        println!("{}", render(&fig, PlotOptions::default()));
        shown += 1;
    }
    if shown == 0 {
        eprintln!("no figures matched (dir {dir})");
    }
}
