//! Thin wrapper around `oij_bench::experiments::fig09_window`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(600000);
    oij_bench::experiments::fig09_window::run(&ctx);
}
