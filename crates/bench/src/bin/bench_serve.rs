//! Serving-runtime bench gate (DESIGN.md §13, EXPERIMENTS.md
//! §bench-serve): sustainable multi-query throughput plus tail latency
//! under overload, measured **coordinated-omission-safe**.
//!
//! For each concurrent query count in {1, 4, 16} the harness runs two
//! legs over the same seeded feed:
//!
//! 1. **Closed-loop calibration** — ingest at full speed through a
//!    lossless [`ServeRuntime`] and time the run to completion
//!    (including shutdown drain). The resulting rate is the runtime's
//!    *sustainable throughput* at that query count — the regression-
//!    gated number.
//! 2. **Open-loop overload** — offer the feed at 2× the calibrated rate
//!    from a fixed arrival schedule ([`OpenLoopConfig`]) with load
//!    shedding on. Each event is pushed with its **scheduled** arrival
//!    instant (`push_at`), which is in the past whenever the feeder
//!    fell behind, so per-row latency includes the queueing delay a
//!    closed-loop driver would silently omit. The leg reports p99/p999
//!    latency and the shed count — expected **nonzero** under 2×
//!    overload, proving the backpressure path actually engages.
//!
//! ```text
//! cargo run --release -p oij-bench --bin bench_serve              # write BENCH_pr10.json
//! cargo run --release -p oij-bench --bin bench_serve -- --check BENCH_pr10.json
//! ```
//!
//! With `--check <path>` the sustainable throughputs are re-measured
//! and the process exits nonzero if any query count lost more than
//! [`REGRESSION_TOLERANCE`] of its baseline — the CI job `bench-serve`
//! runs exactly this. Overload-leg numbers are recorded for eyeballing
//! but not gated: tail latency under deliberate 2× overload is
//! unbounded by design.
//!
//! Env knobs: `OIJ_BENCH_TUPLES` (default 60 000) and
//! `OIJ_BENCH_TRIALS` (default 3; the median wants an odd count).

use std::process::ExitCode;
use std::time::{Duration as StdDuration, Instant};

use serde::{Deserialize, Serialize};

use oij_common::{AggSpec, Duration, EmitMode, OijQuery};
use oij_core::config::{EngineConfig, Instrumentation};
use oij_core::sink::Sink;
use oij_serve::{QueryId, ServeConfig, ServeRuntime};
use oij_workload::{KeyDist, OpenLoopConfig, SyntheticConfig};

/// Median sustainable throughput may drop by at most this fraction.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// The concurrency axis: one plan, a handful, and the equivalence
/// suite's sixteen.
const QUERY_COUNTS: [usize; 3] = [1, 4, 16];

/// Overload legs offer this multiple of the calibrated rate.
const OVERLOAD_FACTOR: f64 = 2.0;

/// Per-worker channel capacity in the overload leg — small enough that
/// a backlogged worker visibly sheds instead of absorbing the whole
/// overload into buffering.
const OVERLOAD_CAPACITY: usize = 512;

fn workload(tuples: usize) -> SyntheticConfig {
    SyntheticConfig {
        tuples,
        unique_keys: 16,
        key_dist: KeyDist::Uniform,
        probe_fraction: 0.5,
        spacing: Duration::from_micros(1),
        disorder: Duration::ZERO,
        payload_bytes: 0,
        seed: 0x5EED_0010,
    }
}

/// Slot `i` gets its own window extent and aggregate, like the
/// serve-equivalence suite, so concurrent plans do distinct work.
fn query_for(slot: usize) -> OijQuery {
    const AGGS: [AggSpec; 5] = [
        AggSpec::Sum,
        AggSpec::Count,
        AggSpec::Avg,
        AggSpec::Min,
        AggSpec::Max,
    ];
    OijQuery::builder()
        .preceding(Duration::from_micros(2000 + 500 * slot as i64))
        .lateness(Duration::ZERO)
        .agg(AGGS[slot % AGGS.len()])
        .emit(EmitMode::Eager)
        .build()
        .expect("static query")
}

fn register_all(rt: &mut ServeRuntime, queries: usize, capacity: Option<usize>) -> Vec<QueryId> {
    (0..queries)
        .map(|slot| {
            let mut cfg = EngineConfig::new(query_for(slot), 1)
                .expect("valid config")
                .with_instrument(Instrumentation::latency());
            if let Some(cap) = capacity {
                cfg.channel_capacity = cap;
            }
            rt.register(cfg, Sink::null(), None).expect("admission")
        })
        .collect()
}

/// Closed-loop leg: full-speed ingest, timed to drained completion.
fn calibrate(events: &[oij_common::Event], queries: usize) -> f64 {
    let mut rt = ServeRuntime::new(ServeConfig::new()).expect("runtime");
    let ids = register_all(&mut rt, queries, None);
    let start = Instant::now();
    for ev in events {
        rt.push(ev.clone()).expect("push");
    }
    for id in ids {
        rt.cancel(id).expect("clean shutdown");
    }
    events.len() as f64 / start.elapsed().as_secs_f64()
}

/// One open-loop overload leg's results.
struct Overload {
    offered_rate: f64,
    shed: u64,
    served_rows: u64,
    p99_ms: f64,
    p999_ms: f64,
}

/// Open-loop leg at `rate` tuples/s with shedding on: never skips or
/// delays a due event for the system's sake; pushes late with the
/// scheduled instant when behind.
fn overload(base: &SyntheticConfig, queries: usize, rate: f64) -> Overload {
    let plan = OpenLoopConfig::steady(base.clone(), rate).plan();
    let mut rt = ServeRuntime::new(ServeConfig::new().with_shedding()).expect("runtime");
    let ids = register_all(&mut rt, queries, Some(OVERLOAD_CAPACITY));
    let start = Instant::now();
    for (offset, ev) in plan.iter() {
        let due = start + offset;
        // Sleep down to ~200µs before the due instant, then spin.
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            let ahead = due - now;
            if ahead > StdDuration::from_micros(200) {
                std::thread::sleep(ahead - StdDuration::from_micros(100));
            } else {
                std::hint::spin_loop();
            }
        }
        rt.push_at(ev.clone(), due).expect("push");
    }
    let mut out = Overload {
        offered_rate: rate,
        shed: 0,
        served_rows: 0,
        p99_ms: 0.0,
        p999_ms: 0.0,
    };
    for id in ids {
        let stats = rt.cancel(id).expect("clean shutdown");
        out.shed += stats.shed_events;
        out.served_rows += stats.results;
        if let Some(lat) = &stats.latency {
            out.p99_ms = out.p99_ms.max(lat.quantile_ns(0.99) as f64 / 1e6);
            out.p999_ms = out.p999_ms.max(lat.quantile_ns(0.999) as f64 / 1e6);
        }
    }
    out
}

/// One query-count row of the committed baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Measurement {
    /// Concurrently registered plans.
    queries: usize,
    /// Median closed-loop sustainable throughput, tuples/s (gated).
    sustainable: f64,
    /// Every calibration trial, for eyeballing variance.
    trials: Vec<f64>,
    /// Offered rate of the overload leg (2× sustainable), tuples/s.
    offered_rate: f64,
    /// Base messages shed across all plans under overload.
    shed: u64,
    /// Feature rows actually served under overload.
    served_rows: u64,
    /// Worst per-plan p99 latency under overload, ms (from scheduled
    /// arrivals — coordinated-omission-safe; not gated).
    p99_ms: f64,
    /// Worst per-plan p99.9 latency under overload, ms.
    p999_ms: f64,
}

/// The committed baseline file format.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    /// Workload identity, so a baseline is never compared across shapes.
    workload: String,
    /// Events per leg.
    tuples: usize,
    /// Calibration trials per query count.
    trials: usize,
    /// All measurements.
    measurements: Vec<Measurement>,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughput"));
    xs[xs.len() / 2]
}

fn measure(tuples: usize, trials: usize) -> Report {
    let base = workload(tuples);
    let events = base.generate();
    let mut measurements = Vec::new();
    for queries in QUERY_COUNTS {
        let mut tput: Vec<f64> = (0..trials).map(|_| calibrate(&events, queries)).collect();
        let sustainable = median(&mut tput);
        let over = overload(&base, queries, sustainable * OVERLOAD_FACTOR);
        println!(
            "queries={queries:<3} sustainable {sustainable:>10.0} tuples/s   \
             overload @{:.0}: shed {} served {}  p99 {:.3} ms  p999 {:.3} ms",
            over.offered_rate, over.shed, over.served_rows, over.p99_ms, over.p999_ms
        );
        measurements.push(Measurement {
            queries,
            sustainable,
            trials: tput,
            offered_rate: over.offered_rate,
            shed: over.shed,
            served_rows: over.served_rows,
            p99_ms: over.p99_ms,
            p999_ms: over.p999_ms,
        });
    }
    Report {
        workload: "uniform-16keys-0.5probe-2ms-windows-serve".into(),
        tuples,
        trials,
        measurements,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tuples = env_usize("OIJ_BENCH_TUPLES", 60_000);
    let trials = env_usize("OIJ_BENCH_TRIALS", 3).max(1);

    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_pr10.json");
        let baseline: Report = match std::fs::read_to_string(path) {
            Ok(s) => match serde_json::from_str(&s) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Re-measure at the baseline's own sizing so medians compare
        // like-for-like regardless of the caller's env.
        let current = measure(baseline.tuples, baseline.trials);
        if current.workload != baseline.workload {
            eprintln!(
                "error: workload mismatch ({} vs {}); refresh the baseline",
                current.workload, baseline.workload
            );
            return ExitCode::FAILURE;
        }
        let mut failed = false;
        for b in &baseline.measurements {
            let Some(c) = current.measurements.iter().find(|m| m.queries == b.queries) else {
                eprintln!("error: {} queries missing from rerun", b.queries);
                failed = true;
                continue;
            };
            let floor = b.sustainable * (1.0 - REGRESSION_TOLERANCE);
            if c.sustainable < floor {
                eprintln!(
                    "REGRESSION: {} queries {:.0} tuples/s < {:.0} \
                     (baseline {:.0} − {:.0}% tolerance)",
                    b.queries,
                    c.sustainable,
                    floor,
                    b.sustainable,
                    REGRESSION_TOLERANCE * 100.0
                );
                failed = true;
            }
            if c.shed == 0 {
                eprintln!(
                    "WARNING: {} queries shed nothing under {OVERLOAD_FACTOR}x \
                     overload (run too short to backlog?)",
                    b.queries
                );
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "bench-serve: OK — every query count within {:.0}% of the baseline",
            REGRESSION_TOLERANCE * 100.0
        );
        return ExitCode::SUCCESS;
    }

    let out = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_pr10.json");
    let report = measure(tuples, trials);
    let json = serde_json::to_string_pretty(&report).expect("serialisable report");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("error: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("[saved {out}]");
    ExitCode::SUCCESS
}
