//! Thin wrapper around `oij_bench::experiments::abl_schedule`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(150000);
    oij_bench::experiments::abl_schedule::run(&ctx);
}
