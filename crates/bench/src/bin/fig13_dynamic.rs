//! Thin wrapper around `oij_bench::experiments::fig13_dynamic`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(150000);
    oij_bench::experiments::fig13_dynamic::run(&ctx);
}
