//! Thin wrapper around `oij_bench::experiments::fig05_latency_cdf`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(200000);
    oij_bench::experiments::fig05_latency_cdf::run(&ctx);
}
