//! Thin wrapper around `oij_bench::experiments::fig17_20_workloads`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(150000);
    oij_bench::experiments::fig17_20_workloads::run(&ctx);
}
