//! Thin wrapper around `oij_bench::experiments::fig16_incremental`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(400000);
    oij_bench::experiments::fig16_incremental::run(&ctx);
}
