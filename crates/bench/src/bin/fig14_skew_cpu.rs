//! Thin wrapper around `oij_bench::experiments::fig14_skew_cpu`.
fn main() {
    let ctx = oij_bench::BenchCtx::from_env(300000);
    oij_bench::experiments::fig14_skew_cpu::run(&ctx);
}
