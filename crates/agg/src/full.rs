//! Recompute-from-scratch window aggregation.
//!
//! The baseline path: fold every in-window tuple into a fresh accumulator.
//! Key-OIJ, SplitJoin and the OpenMLDB baseline always aggregate this way;
//! Scale-OIJ falls back to it for out-of-order base tuples and when the
//! incremental optimisation is disabled.

use oij_common::AggSpec;

/// A one-shot window accumulator. Create, feed every in-window value with
/// [`add`](Self::add), read the answer with [`finish`](Self::finish).
#[derive(Debug, Clone, Copy)]
pub struct FullWindowAgg {
    spec: AggSpec,
    sum: f64,
    count: u64,
    extreme: f64,
}

impl FullWindowAgg {
    /// Creates an empty accumulator for the given aggregate.
    #[inline]
    pub fn new(spec: AggSpec) -> Self {
        FullWindowAgg {
            spec,
            sum: 0.0,
            count: 0,
            extreme: match spec {
                AggSpec::Min => f64::INFINITY,
                AggSpec::Max => f64::NEG_INFINITY,
                _ => 0.0,
            },
        }
    }

    /// Folds one in-window value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        match self.spec {
            AggSpec::Sum | AggSpec::Avg => self.sum += v,
            AggSpec::Count => {}
            AggSpec::Min => self.extreme = self.extreme.min(v),
            AggSpec::Max => self.extreme = self.extreme.max(v),
        }
    }

    /// Number of values folded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The aggregate. `sum`/`count` answer `Some(0.0)` on empty windows;
    /// `avg`/`min`/`max` have no value on empty windows.
    #[inline]
    pub fn finish(&self) -> Option<f64> {
        match self.spec {
            AggSpec::Sum => Some(self.sum),
            AggSpec::Count => Some(self.count as f64),
            AggSpec::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            AggSpec::Min | AggSpec::Max => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.extreme)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: AggSpec, vals: &[f64]) -> Option<f64> {
        let mut a = FullWindowAgg::new(spec);
        for &v in vals {
            a.add(v);
        }
        a.finish()
    }

    #[test]
    fn sum_count_avg() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(run(AggSpec::Sum, &vals), Some(10.0));
        assert_eq!(run(AggSpec::Count, &vals), Some(4.0));
        assert_eq!(run(AggSpec::Avg, &vals), Some(2.5));
    }

    #[test]
    fn min_max() {
        let vals = [3.0, -1.0, 2.0];
        assert_eq!(run(AggSpec::Min, &vals), Some(-1.0));
        assert_eq!(run(AggSpec::Max, &vals), Some(3.0));
    }

    #[test]
    fn empty_window_semantics() {
        assert_eq!(run(AggSpec::Sum, &[]), Some(0.0));
        assert_eq!(run(AggSpec::Count, &[]), Some(0.0));
        assert_eq!(run(AggSpec::Avg, &[]), None);
        assert_eq!(run(AggSpec::Min, &[]), None);
        assert_eq!(run(AggSpec::Max, &[]), None);
    }

    #[test]
    fn negative_and_duplicate_values() {
        assert_eq!(run(AggSpec::Sum, &[-5.0, -5.0, 10.0]), Some(0.0));
        assert_eq!(run(AggSpec::Min, &[2.0, 2.0]), Some(2.0));
    }
}
