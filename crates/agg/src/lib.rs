//! # oij-agg — window aggregation framework
//!
//! Implements the aggregation machinery of the paper's Section V-C:
//!
//! - [`running::RunningAgg`] — a *Subtract-on-Evict* running aggregate for
//!   invertible operators (`sum`, `count`, `avg`): when a stale tuple leaves
//!   the window we apply `⊖`, when a new tuple enters we apply `⊕`
//!   (Tangwongsan et al., DEBS'17, as adapted by the paper).
//! - [`twostack::TwoStackAgg`] — an amortised-O(1) FIFO sliding aggregator
//!   for **non-invertible** operators (`min`, `max`). The paper leaves
//!   these to future work; this extension covers them.
//! - [`partial::PartialAgg`] — mergeable partial aggregates, used by the
//!   SplitJoin baseline's collector to combine per-joiner partial window
//!   results.
//! - [`full::FullWindowAgg`] — the recompute-from-scratch accumulator every
//!   baseline uses, and the fallback for out-of-order base tuples.

#![warn(missing_docs)]

pub mod full;
pub mod partial;
pub mod running;
pub mod twostack;

pub use full::FullWindowAgg;
pub use partial::PartialAgg;
pub use running::RunningAgg;
pub use twostack::TwoStackAgg;
