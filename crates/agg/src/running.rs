//! Subtract-on-Evict running aggregates (paper §V-C, Figure 15).
//!
//! For invertible operators the aggregate of a new window can be derived
//! from the previous overlapping window:
//! `Agg(w') = Agg(w) ⊖ evicted ⊕ added`. A [`RunningAgg`] holds the running
//! state per (joiner, key); the engine feeds it the delta scans produced by
//! the time-travel index.
//!
//! Floating-point caveat: repeated `⊕`/`⊖` on `f64` accumulates rounding
//! error relative to a fresh recomputation. The engine bounds this by
//! resetting the running state whenever the window empties
//! ([`RunningAgg::reset`] is invoked by [`evict`](RunningAgg::evict) when
//! `count` reaches zero), which in practice happens regularly for the
//! paper's workloads. Tests compare against recomputation with a relative
//! tolerance.

use oij_common::{AggSpec, Error, Result};

/// A running invertible aggregate supporting `⊕` (add) and `⊖` (evict).
#[derive(Debug, Clone, Copy)]
pub struct RunningAgg {
    spec: AggSpec,
    sum: f64,
    count: u64,
}

impl RunningAgg {
    /// Creates an empty running aggregate. Fails for non-invertible specs
    /// (`min`/`max`) — use [`crate::TwoStackAgg`] for those.
    pub fn new(spec: AggSpec) -> Result<Self> {
        if !spec.is_invertible() {
            return Err(Error::InvalidConfig(format!(
                "{} is not invertible; Subtract-on-Evict requires an inverse",
                spec.sql_name()
            )));
        }
        Ok(RunningAgg {
            spec,
            sum: 0.0,
            count: 0,
        })
    }

    /// `⊕`: a tuple entered the window.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// `⊖`: a tuple left the window.
    ///
    /// # Panics
    /// Debug-asserts that the window is non-empty; evicting from an empty
    /// window indicates an engine bookkeeping bug.
    #[inline]
    pub fn evict(&mut self, v: f64) {
        debug_assert!(self.count > 0, "evict from empty running window");
        self.sum -= v;
        self.count -= 1;
        if self.count == 0 {
            // Re-anchor to kill accumulated FP drift.
            self.sum = 0.0;
        }
    }

    /// Clears the state (used when the engine falls back to a full rescan).
    #[inline]
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }

    /// Number of tuples currently inside the window.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw running sum (exposed so callers can merge the running state
    /// with a freshly scanned partial, e.g. the unsettled window suffix).
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The current aggregate, with the same empty-window semantics as
    /// [`crate::FullWindowAgg::finish`].
    #[inline]
    pub fn value(&self) -> Option<f64> {
        match self.spec {
            AggSpec::Sum => Some(self.sum),
            AggSpec::Count => Some(self.count as f64),
            AggSpec::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            // unreachable by construction
            AggSpec::Min | AggSpec::Max => None,
        }
    }

    /// The aggregate this state maintains.
    #[inline]
    pub fn spec(&self) -> AggSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullWindowAgg;

    #[test]
    fn rejects_non_invertible() {
        assert!(RunningAgg::new(AggSpec::Min).is_err());
        assert!(RunningAgg::new(AggSpec::Max).is_err());
        assert!(RunningAgg::new(AggSpec::Sum).is_ok());
    }

    #[test]
    fn paper_figure_15_example() {
        // Agg_s3 covers {r1, r2, r3}; sliding to s4 evicts r1 and adds r4.
        let (r1, r2, r3, r4) = (1.0, 2.0, 3.0, 4.0);
        let mut agg = RunningAgg::new(AggSpec::Sum).unwrap();
        agg.add(r1);
        agg.add(r2);
        agg.add(r3);
        assert_eq!(agg.value(), Some(6.0));
        agg.evict(r1);
        agg.add(r4);
        assert_eq!(agg.value(), Some(r2 + r3 + r4));
    }

    #[test]
    fn matches_recompute_over_sliding_sequence() {
        // Slide a width-5 window over 100 values; running must equal fresh.
        let vals: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        for spec in [AggSpec::Sum, AggSpec::Count, AggSpec::Avg] {
            let mut run = RunningAgg::new(spec).unwrap();
            for end in 0..vals.len() {
                run.add(vals[end]);
                if end >= 5 {
                    run.evict(vals[end - 5]);
                }
                let lo = end.saturating_sub(4);
                let mut fresh = FullWindowAgg::new(spec);
                for &v in &vals[lo..=end] {
                    fresh.add(v);
                }
                match (run.value(), fresh.finish()) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{spec:?}: {a} vs {b}"),
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn empty_window_reanchors_sum() {
        let mut agg = RunningAgg::new(AggSpec::Sum).unwrap();
        agg.add(0.1);
        agg.add(0.2);
        agg.evict(0.1);
        agg.evict(0.2);
        // Exact zero after drain, not FP residue.
        assert_eq!(agg.value(), Some(0.0));
        assert_eq!(agg.count(), 0);
    }

    #[test]
    fn avg_empty_is_none() {
        let mut agg = RunningAgg::new(AggSpec::Avg).unwrap();
        assert_eq!(agg.value(), None);
        agg.add(2.0);
        assert_eq!(agg.value(), Some(2.0));
        agg.evict(2.0);
        assert_eq!(agg.value(), None);
    }

    #[test]
    #[should_panic(expected = "evict from empty")]
    #[cfg(debug_assertions)]
    fn evict_from_empty_panics_in_debug() {
        let mut agg = RunningAgg::new(AggSpec::Sum).unwrap();
        agg.evict(1.0);
    }
}
