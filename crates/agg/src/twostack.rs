//! Two-stack FIFO sliding aggregation for non-invertible operators.
//!
//! The paper's incremental technique needs an inverse `⊖`, which `min` and
//! `max` lack; it lists "incremental computing for non-invertible operators"
//! as future work. This module closes that gap with the classic two-stack
//! trick (the kernel of DABA/Tangwongsan et al.): a FIFO window is split
//! into a *front* stack (with suffix aggregates, popped on evict) and a
//! *back* stack (with a running prefix aggregate, pushed on insert). When
//! the front drains, the back is flipped over in O(n), giving amortised
//! O(1) per operation and worst-case O(1) queries.

use oij_common::{AggSpec, Error, Result};

/// Amortised-O(1) sliding window aggregate for any associative operator,
/// instantiated here for `min`/`max` (it also handles the invertible specs,
/// which tests exploit for cross-validation).
#[derive(Debug, Clone)]
pub struct TwoStackAgg {
    spec: AggSpec,
    /// Front stack: `(value, aggregate of this value and everything below)`.
    front: Vec<(f64, f64)>,
    /// Back stack values in arrival order.
    back: Vec<f64>,
    /// Running aggregate of the whole back stack.
    back_agg: Option<f64>,
}

impl TwoStackAgg {
    /// Creates an empty window.
    pub fn new(spec: AggSpec) -> Self {
        TwoStackAgg {
            spec,
            front: Vec::new(),
            back: Vec::new(),
            back_agg: None,
        }
    }

    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        match self.spec {
            AggSpec::Min => a.min(b),
            AggSpec::Max => a.max(b),
            AggSpec::Sum | AggSpec::Avg => a + b,
            AggSpec::Count => a + b,
        }
    }

    #[inline]
    fn lift(&self, v: f64) -> f64 {
        // Count aggregates the constant 1 per element.
        if self.spec == AggSpec::Count {
            1.0
        } else {
            v
        }
    }

    /// Pushes the newest value into the window (FIFO tail).
    pub fn push(&mut self, v: f64) {
        let lifted = self.lift(v);
        self.back_agg = Some(match self.back_agg {
            None => lifted,
            Some(acc) => self.combine(acc, lifted),
        });
        self.back.push(v);
    }

    /// Evicts the oldest value (FIFO head). Returns it, or an error if the
    /// window is empty.
    pub fn evict(&mut self) -> Result<f64> {
        if self.front.is_empty() {
            // Flip: move the back stack into the front stack, computing
            // suffix aggregates so that front.last() covers the whole run.
            let mut agg: Option<f64> = None;
            while let Some(v) = self.back.pop() {
                let lifted = self.lift(v);
                agg = Some(match agg {
                    None => lifted,
                    Some(acc) => self.combine(lifted, acc),
                });
                self.front.push((v, agg.expect("just set")));
            }
            self.back_agg = None;
        }
        match self.front.pop() {
            Some((v, _)) => Ok(v),
            None => Err(Error::InvalidState("evict from empty window".into())),
        }
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current window aggregate (`None` when empty for `min`/`max`/`avg`,
    /// `Some(0.0)` for `sum`/`count`, matching the other accumulators).
    pub fn value(&self) -> Option<f64> {
        let raw = match (self.front.last(), self.back_agg) {
            (None, None) => None,
            (Some((_, f)), None) => Some(*f),
            (None, Some(b)) => Some(b),
            (Some((_, f)), Some(b)) => Some(self.combine(*f, b)),
        };
        match self.spec {
            AggSpec::Sum | AggSpec::Count => Some(raw.unwrap_or(0.0)),
            AggSpec::Avg => raw.map(|s| s / self.len() as f64),
            AggSpec::Min | AggSpec::Max => raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullWindowAgg;

    #[test]
    fn fifo_order_is_preserved() {
        let mut w = TwoStackAgg::new(AggSpec::Max);
        for v in [1.0, 2.0, 3.0] {
            w.push(v);
        }
        assert_eq!(w.evict().unwrap(), 1.0);
        assert_eq!(w.evict().unwrap(), 2.0);
        w.push(4.0);
        assert_eq!(w.evict().unwrap(), 3.0);
        assert_eq!(w.evict().unwrap(), 4.0);
        assert!(w.evict().is_err());
    }

    #[test]
    fn max_tracks_departures() {
        let mut w = TwoStackAgg::new(AggSpec::Max);
        w.push(9.0);
        w.push(1.0);
        w.push(5.0);
        assert_eq!(w.value(), Some(9.0));
        w.evict().unwrap(); // 9 leaves — a subtract-based approach fails here
        assert_eq!(w.value(), Some(5.0));
        w.evict().unwrap();
        assert_eq!(w.value(), Some(5.0));
        w.evict().unwrap();
        assert_eq!(w.value(), None);
    }

    #[test]
    fn min_with_negative_values() {
        let mut w = TwoStackAgg::new(AggSpec::Min);
        w.push(-1.0);
        w.push(-7.0);
        w.push(3.0);
        assert_eq!(w.value(), Some(-7.0));
        w.evict().unwrap();
        w.evict().unwrap();
        assert_eq!(w.value(), Some(3.0));
    }

    #[test]
    fn empty_semantics_match_full_agg() {
        for spec in [
            AggSpec::Sum,
            AggSpec::Count,
            AggSpec::Avg,
            AggSpec::Min,
            AggSpec::Max,
        ] {
            let w = TwoStackAgg::new(spec);
            assert_eq!(w.value(), FullWindowAgg::new(spec).finish(), "{spec:?}");
        }
    }

    #[test]
    fn sliding_equivalence_with_recompute() {
        let vals: Vec<f64> = (0..200).map(|i| (((i * 31) % 17) as f64) - 8.0).collect();
        for spec in [
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Sum,
            AggSpec::Count,
            AggSpec::Avg,
        ] {
            let mut w = TwoStackAgg::new(spec);
            for end in 0..vals.len() {
                w.push(vals[end]);
                if end >= 7 {
                    assert_eq!(w.evict().unwrap(), vals[end - 7]);
                }
                let lo = end.saturating_sub(6);
                let mut fresh = FullWindowAgg::new(spec);
                for &v in &vals[lo..=end] {
                    fresh.add(v);
                }
                match (w.value(), fresh.finish()) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "{spec:?} at {end}: {a} vs {b}")
                    }
                    (a, b) => assert_eq!(a, b, "{spec:?} at {end}"),
                }
            }
        }
    }

    #[test]
    fn interleaved_push_evict_across_flips() {
        let mut w = TwoStackAgg::new(AggSpec::Min);
        let mut model: std::collections::VecDeque<f64> = Default::default();
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 1000) as f64 - 500.0;
            if x.is_multiple_of(3) && !model.is_empty() {
                assert_eq!(w.evict().unwrap(), model.pop_front().unwrap());
            } else {
                w.push(v);
                model.push_back(v);
            }
            let want = model.iter().cloned().fold(f64::INFINITY, f64::min);
            let want = if model.is_empty() { None } else { Some(want) };
            assert_eq!(w.value(), want);
            assert_eq!(w.len(), model.len());
        }
    }
}
