//! Mergeable partial aggregates.
//!
//! SplitJoin's distribution/collection model (paper §V-D) has every joiner
//! compute a window aggregate over its own storage slice; a collector then
//! merges the per-joiner partials into the final feature value. A
//! [`PartialAgg`] carries enough state (`sum`, `count`, `min`, `max`) to
//! finalise any supported [`AggSpec`] after merging.

use oij_common::AggSpec;
use serde::{Deserialize, Serialize};

/// A spec-agnostic, mergeable window aggregate fragment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialAgg {
    /// Sum of values.
    pub sum: f64,
    /// Number of values.
    pub count: u64,
    /// Minimum value (`+∞` when empty).
    pub min: f64,
    /// Maximum value (`-∞` when empty).
    pub max: f64,
}

impl Default for PartialAgg {
    fn default() -> Self {
        Self::empty()
    }
}

impl PartialAgg {
    /// The identity element of `merge`.
    #[inline]
    pub fn empty() -> Self {
        PartialAgg {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one value into this partial.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another partial into this one (associative, commutative,
    /// identity = [`empty`](Self::empty)).
    #[inline]
    pub fn merge(&mut self, other: &PartialAgg) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalises for a concrete aggregate, with the workspace-wide
    /// empty-window semantics.
    #[inline]
    pub fn finish(&self, spec: AggSpec) -> Option<f64> {
        match spec {
            AggSpec::Sum => Some(self.sum),
            AggSpec::Count => Some(self.count as f64),
            AggSpec::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            AggSpec::Min => (self.count > 0).then_some(self.min),
            AggSpec::Max => (self.count > 0).then_some(self.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullWindowAgg;

    #[test]
    fn merge_equals_single_pass() {
        let vals: Vec<f64> = (0..50).map(|i| ((i * 13) % 23) as f64 - 11.0).collect();
        // Split across 4 "joiners" round-robin, merge, compare to one pass.
        let mut parts = vec![PartialAgg::empty(); 4];
        for (i, &v) in vals.iter().enumerate() {
            parts[i % 4].add(v);
        }
        let mut merged = PartialAgg::empty();
        for p in &parts {
            merged.merge(p);
        }
        for spec in [
            AggSpec::Sum,
            AggSpec::Count,
            AggSpec::Avg,
            AggSpec::Min,
            AggSpec::Max,
        ] {
            let mut full = FullWindowAgg::new(spec);
            for &v in &vals {
                full.add(v);
            }
            match (merged.finish(spec), full.finish()) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{spec:?}"),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut p = PartialAgg::empty();
        p.add(3.0);
        p.add(-1.0);
        let snapshot = p;
        p.merge(&PartialAgg::empty());
        assert_eq!(p, snapshot);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = PartialAgg::empty();
        a.add(1.0);
        a.add(5.0);
        let mut b = PartialAgg::empty();
        b.add(-2.0);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn all_empty_finishes_like_empty_window() {
        let p = PartialAgg::empty();
        assert_eq!(p.finish(AggSpec::Sum), Some(0.0));
        assert_eq!(p.finish(AggSpec::Count), Some(0.0));
        assert_eq!(p.finish(AggSpec::Avg), None);
        assert_eq!(p.finish(AggSpec::Min), None);
        assert_eq!(p.finish(AggSpec::Max), None);
    }
}
