//! Property tests: every incremental aggregator must agree with
//! recomputation from scratch under arbitrary value sequences and window
//! slidings.

use oij_agg::{FullWindowAgg, PartialAgg, RunningAgg, TwoStackAgg};
use oij_common::AggSpec;
use proptest::prelude::*;

const ALL_SPECS: [AggSpec; 5] = [
    AggSpec::Sum,
    AggSpec::Count,
    AggSpec::Avg,
    AggSpec::Min,
    AggSpec::Max,
];

fn recompute(spec: AggSpec, vals: &[f64]) -> Option<f64> {
    let mut a = FullWindowAgg::new(spec);
    for &v in vals {
        a.add(v);
    }
    a.finish()
}

fn approx(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= 1e-9 * scale
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Subtract-on-Evict equals recompute for every invertible spec and any
    /// FIFO window width.
    #[test]
    fn running_agg_matches_recompute(
        vals in proptest::collection::vec(-1e6f64..1e6, 1..200),
        width in 1usize..20,
    ) {
        for spec in [AggSpec::Sum, AggSpec::Count, AggSpec::Avg] {
            let mut run = RunningAgg::new(spec).unwrap();
            for end in 0..vals.len() {
                run.add(vals[end]);
                if end >= width {
                    run.evict(vals[end - width]);
                }
                let lo = end + 1 - (end + 1).min(width);
                prop_assert!(
                    approx(run.value(), recompute(spec, &vals[lo..=end])),
                    "{spec:?} at {end}: {:?} vs {:?}", run.value(), recompute(spec, &vals[lo..=end])
                );
            }
        }
    }

    /// Two-stack equals recompute for every spec (including non-invertible)
    /// under arbitrary push/evict interleavings.
    #[test]
    fn twostack_matches_recompute(
        ops in proptest::collection::vec(prop_oneof![
            3 => (-1e6f64..1e6).prop_map(Some),
            1 => Just(None), // evict
        ], 1..300),
    ) {
        for spec in ALL_SPECS {
            let mut w = TwoStackAgg::new(spec);
            let mut model: Vec<f64> = Vec::new();
            for op in &ops {
                match op {
                    Some(v) => {
                        w.push(*v);
                        model.push(*v);
                    }
                    None => {
                        if model.is_empty() {
                            prop_assert!(w.evict().is_err());
                        } else {
                            prop_assert_eq!(w.evict().unwrap(), model.remove(0));
                        }
                    }
                }
                prop_assert_eq!(w.len(), model.len());
                prop_assert!(approx(w.value(), recompute(spec, &model)), "{:?}", spec);
            }
        }
    }

    /// Partial-aggregate merging is associative and split-invariant: any
    /// partitioning of the input merges to the single-pass answer.
    #[test]
    fn partial_merge_is_split_invariant(
        vals in proptest::collection::vec(-1e6f64..1e6, 0..100),
        splits in proptest::collection::vec(0usize..8, 0..100),
    ) {
        let mut parts = vec![PartialAgg::empty(); 8];
        for (i, &v) in vals.iter().enumerate() {
            let slot = splits.get(i).copied().unwrap_or(0);
            parts[slot].add(v);
        }
        let mut merged = PartialAgg::empty();
        for p in &parts {
            merged.merge(p);
        }
        for spec in ALL_SPECS {
            prop_assert!(approx(merged.finish(spec), recompute(spec, &vals)), "{:?}", spec);
        }
    }
}
