//! Open-loop load generation for the serving runtime.
//!
//! A closed-loop driver (push, wait for completion, push again) lets a
//! slow system throttle its own load, which hides overload: measured
//! latency stays flat because the generator politely backs off. This is
//! the *coordinated omission* problem. An **open-loop** generator fixes
//! the arrival schedule ahead of time — tuple `i` is due at a wall-clock
//! instant derived only from the offered rate, never from how fast the
//! system drained tuples `0..i` — and latency is measured from the
//! **scheduled** arrival, so queueing delay accumulated while the sender
//! fell behind is charged to the system under test.
//!
//! [`OpenLoopConfig`] pairs a [`SyntheticConfig`] event shape (keys,
//! skew, disorder — Section III-C of the paper) with an offered wall
//! rate and a pacing shape ([`Pacing::Steady`] or mean-preserving
//! [`Pacing::Bursty`] on/off waves). [`ChurnPlan`] adds a deterministic
//! register/cancel timetable for multi-query serving experiments.

use std::time::Duration as StdDuration;

use crate::synthetic::SyntheticConfig;
use oij_common::Event;

/// Arrival pacing of the offered load.
#[derive(Debug, Clone, PartialEq)]
pub enum Pacing {
    /// Evenly spaced arrivals at the offered rate.
    Steady,
    /// On/off square wave: every cycle of length `on + off`, the whole
    /// cycle's worth of arrivals is compressed into the leading `on`
    /// span and the trailing `off` span is silent. The *mean* rate is
    /// preserved, so sustainable-throughput numbers stay comparable
    /// while tail latency feels the bursts.
    Bursty {
        /// Length of the active span of each cycle.
        on: StdDuration,
        /// Length of the silent span of each cycle.
        off: StdDuration,
    },
}

/// An open-loop workload description: *what* arrives ([`SyntheticConfig`])
/// and *when* it is due (offered rate + [`Pacing`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopConfig {
    /// Event shape: tuple count, key space, skew, probe split, disorder.
    pub events: SyntheticConfig,
    /// Offered mean arrival rate, tuples per wall-clock second.
    pub rate_per_sec: f64,
    /// Arrival pacing shape.
    pub pacing: Pacing,
}

impl OpenLoopConfig {
    /// A steady open-loop feed of `cfg` at `rate_per_sec` tuples/s.
    pub fn steady(events: SyntheticConfig, rate_per_sec: f64) -> Self {
        OpenLoopConfig {
            events,
            rate_per_sec,
            pacing: Pacing::Steady,
        }
    }

    /// Materialises the deterministic arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite, or if a bursty
    /// pacing has an empty active span.
    pub fn plan(&self) -> OpenLoopPlan {
        assert!(
            self.rate_per_sec.is_finite() && self.rate_per_sec > 0.0,
            "offered rate must be positive"
        );
        let events = self.events.generate();
        let offsets = match &self.pacing {
            Pacing::Steady => (0..events.len())
                .map(|i| StdDuration::from_secs_f64(i as f64 / self.rate_per_sec))
                .collect(),
            Pacing::Bursty { on, off } => {
                assert!(!on.is_zero(), "bursty pacing needs a non-empty active span");
                let cycle = on.as_secs_f64() + off.as_secs_f64();
                let compress = on.as_secs_f64() / cycle;
                (0..events.len())
                    .map(|i| {
                        // Steady due-time, then compress each cycle's
                        // arrivals into its leading active span.
                        let steady = i as f64 / self.rate_per_sec;
                        let cycle_start = (steady / cycle).floor() * cycle;
                        // `steady / cycle` can round up to an exact
                        // integer, leaving cycle_start a hair past
                        // steady; clamp so the offset stays in-cycle.
                        let within = (steady - cycle_start).max(0.0);
                        StdDuration::from_secs_f64(cycle_start + within * compress)
                    })
                    .collect()
            }
        };
        OpenLoopPlan { events, offsets }
    }
}

/// A fully materialised open-loop schedule: event `i` is due at
/// `start + offsets[i]` for whatever `start` instant the driver picks.
///
/// The driver must *never* skip or delay a due event because the system
/// is slow — if it falls behind it sends immediately and lets queueing
/// delay show up in the latency measured from the scheduled instant.
#[derive(Debug, Clone)]
pub struct OpenLoopPlan {
    /// The arrival-ordered event feed.
    pub events: Vec<Event>,
    /// Scheduled arrival offset of `events[i]` from the run start.
    pub offsets: Vec<StdDuration>,
}

impl OpenLoopPlan {
    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The offset of the last scheduled arrival (the offered duration of
    /// the run).
    pub fn offered_duration(&self) -> StdDuration {
        self.offsets.last().copied().unwrap_or_default()
    }

    /// Iterates `(scheduled offset, event)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (StdDuration, &Event)> {
        self.offsets.iter().copied().zip(self.events.iter())
    }
}

/// One step of a query-churn timetable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// Register query slot `n` (the driver maps slots to SQL texts).
    Register(usize),
    /// Cancel query slot `n`.
    Cancel(usize),
}

/// A deterministic register/cancel timetable, for exercising admission
/// and deregistration while the shared ingest keeps flowing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Time-ordered `(offset from run start, action)` steps.
    pub steps: Vec<(StdDuration, ChurnAction)>,
}

impl ChurnPlan {
    /// Registers `queries` slots one `stagger` apart, each cancelled
    /// `hold` after its registration. Steps come back time-ordered, so a
    /// driver can drain them with a single cursor while feeding events.
    pub fn staggered(queries: usize, stagger: StdDuration, hold: StdDuration) -> ChurnPlan {
        let mut steps: Vec<(StdDuration, ChurnAction)> = Vec::with_capacity(queries * 2);
        for q in 0..queries {
            let at = stagger * q as u32;
            steps.push((at, ChurnAction::Register(q)));
            steps.push((at + hold, ChurnAction::Cancel(q)));
        }
        steps.sort_by_key(|(at, _)| *at);
        ChurnPlan { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(tuples: usize) -> SyntheticConfig {
        SyntheticConfig {
            tuples,
            ..Default::default()
        }
    }

    #[test]
    fn steady_schedule_is_evenly_spaced() {
        let plan = OpenLoopConfig::steady(small(1000), 10_000.0).plan();
        assert_eq!(plan.len(), 1000);
        assert_eq!(plan.offsets[0], StdDuration::ZERO);
        for w in plan.offsets.windows(2) {
            let gap = (w[1] - w[0]).as_secs_f64();
            assert!((gap - 1e-4).abs() < 1e-9, "gap {gap}");
        }
        assert!((plan.offered_duration().as_secs_f64() - 0.0999).abs() < 1e-6);
    }

    #[test]
    fn schedule_is_deterministic() {
        let cfg = OpenLoopConfig::steady(small(500), 25_000.0);
        let (a, b) = (cfg.plan(), cfg.plan());
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn bursty_preserves_mean_rate_and_leaves_gaps() {
        let cfg = OpenLoopConfig {
            events: small(10_000),
            rate_per_sec: 100_000.0,
            pacing: Pacing::Bursty {
                on: StdDuration::from_millis(10),
                off: StdDuration::from_millis(10),
            },
        };
        let plan = cfg.plan();
        // Mean rate preserved: last due-time within one cycle of steady.
        let steady_last = (plan.len() - 1) as f64 / cfg.rate_per_sec;
        let bursty_last = plan.offered_duration().as_secs_f64();
        assert!((bursty_last - steady_last).abs() < 0.02);
        // Every arrival lands in the active half of its 20ms cycle
        // (integer nanos: f64 modulo misbehaves at cycle boundaries).
        for off in &plan.offsets {
            let in_cycle = off.as_nanos() % 20_000_000;
            assert!(in_cycle <= 10_000_000, "arrival at {in_cycle}ns into cycle");
        }
        // Instantaneous rate during bursts is ~2x the mean.
        let first_cycle = plan
            .offsets
            .iter()
            .filter(|o| o.as_secs_f64() < 0.010)
            .count();
        assert!(first_cycle > 1800, "burst carried {first_cycle} arrivals");
    }

    #[test]
    fn monotone_offsets_even_when_bursty() {
        let plan = OpenLoopConfig {
            events: small(5000),
            rate_per_sec: 50_000.0,
            pacing: Pacing::Bursty {
                on: StdDuration::from_millis(2),
                off: StdDuration::from_millis(6),
            },
        }
        .plan();
        for w in plan.offsets.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn churn_plan_is_time_ordered_and_complete() {
        let plan =
            ChurnPlan::staggered(4, StdDuration::from_millis(5), StdDuration::from_millis(12));
        assert_eq!(plan.steps.len(), 8);
        for w in plan.steps.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let registers: Vec<usize> = plan
            .steps
            .iter()
            .filter_map(|(_, a)| match a {
                ChurnAction::Register(q) => Some(*q),
                ChurnAction::Cancel(_) => None,
            })
            .collect();
        assert_eq!(registers, vec![0, 1, 2, 3]);
        // Every slot is cancelled exactly `hold` after it registers.
        for q in 0..4usize {
            let reg = plan
                .steps
                .iter()
                .find(|(_, a)| *a == ChurnAction::Register(q))
                .unwrap()
                .0;
            let cancel = plan
                .steps
                .iter()
                .find(|(_, a)| *a == ChurnAction::Cancel(q))
                .unwrap()
                .0;
            assert_eq!(cancel - reg, StdDuration::from_millis(12));
        }
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn non_positive_rate_panics() {
        OpenLoopConfig::steady(small(1), 0.0).plan();
    }
}
