//! Event-feed serialization for replayable experiments.
//!
//! The paper's evaluation replays fixed datasets. Synthetic feeds here are
//! already reproducible from a seed, but sharing a captured feed (or a
//! trace exported from a production system) needs a storage format. This
//! module defines a compact little-endian binary framing:
//!
//! ```text
//! header:  magic "OIJ1" | u64 event count
//! event:   u64 seq | u8 side (0=base, 1=probe, 2=flush)
//!          [data only:] i64 ts | u64 key | f64 value | u32 len | payload
//! ```

use std::io::{self, Read, Write};

use oij_common::{Event, EventKind, Side, Timestamp, Tuple};

const MAGIC: &[u8; 4] = b"OIJ1";

/// Writes an event feed to `w`.
pub fn write_events(mut w: impl Write, events: &[Event]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(events.len() as u64).to_le_bytes())?;
    for e in events {
        w.write_all(&e.seq.to_le_bytes())?;
        match &e.kind {
            EventKind::Flush => w.write_all(&[2u8])?,
            EventKind::Data { side, tuple } => {
                w.write_all(&[match side {
                    Side::Base => 0u8,
                    Side::Probe => 1u8,
                }])?;
                w.write_all(&tuple.ts.as_micros().to_le_bytes())?;
                w.write_all(&tuple.key.to_le_bytes())?;
                w.write_all(&tuple.value.to_le_bytes())?;
                w.write_all(&(tuple.payload.len() as u32).to_le_bytes())?;
                w.write_all(&tuple.payload)?;
            }
        }
    }
    Ok(())
}

/// Reads an event feed written by [`write_events`].
pub fn read_events(mut r: impl Read) -> io::Result<Vec<Event>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic {magic:?}; not an OIJ event feed"),
        ));
    }
    let count = read_u64(&mut r)?;
    // Guard against absurd headers before allocating.
    if count > (1 << 40) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible event count {count}"),
        ));
    }
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let seq = read_u64(&mut r)?;
        let mut side = [0u8; 1];
        r.read_exact(&mut side)?;
        let event = match side[0] {
            2 => Event::flush(seq),
            tag @ (0 | 1) => {
                let ts = Timestamp::from_micros(read_u64(&mut r)? as i64);
                let key = read_u64(&mut r)?;
                let value = f64::from_le_bytes(read_array(&mut r)?);
                let len = u32::from_le_bytes(read_array(&mut r)?) as usize;
                if len > (1 << 30) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("implausible payload length {len}"),
                    ));
                }
                let mut payload = vec![0u8; len];
                r.read_exact(&mut payload)?;
                let side = if tag == 0 { Side::Base } else { Side::Probe };
                Event::data(
                    seq,
                    side,
                    Tuple::with_payload(ts, key, value, payload.into()),
                )
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown event tag {other}"),
                ))
            }
        };
        events.push(event);
    }
    Ok(events)
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_array(r)?))
}

fn read_array<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;
    use oij_common::Duration;

    #[test]
    fn roundtrip_preserves_every_event() {
        let mut events = SyntheticConfig {
            tuples: 5_000,
            disorder: Duration::from_micros(100),
            payload_bytes: 24,
            ..Default::default()
        }
        .generate();
        events.push(Event::flush(events.len() as u64));

        let mut buf = Vec::new();
        write_events(&mut buf, &events).unwrap();
        let loaded = read_events(buf.as_slice()).unwrap();
        assert_eq!(loaded, events);
    }

    #[test]
    fn empty_feed_roundtrips() {
        let mut buf = Vec::new();
        write_events(&mut buf, &[]).unwrap();
        assert_eq!(read_events(buf.as_slice()).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_events(&b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let events = SyntheticConfig {
            tuples: 10,
            ..Default::default()
        }
        .generate();
        let mut buf = Vec::new();
        write_events(&mut buf, &events).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_events(buf.as_slice()).is_err());
    }

    #[test]
    fn implausible_header_is_rejected_without_oom() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"OIJ1");
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_events(buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"OIJ1");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // seq
        buf.push(7); // bogus tag
        let err = read_events(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("tag"));
    }
}
