//! Proxies of the paper's named workloads.
//!
//! Table II publishes, for each proprietary workload, the arrival rate `v`,
//! unique keys `u`, window length `|w|`, lateness `l`, and (in the prose)
//! the density that actually drives join cost: *matching elements per
//! window*. The proxies here hold `u` and the densities faithful and scale
//! the event-time axis so a bench-sized run covers many windows (a pure
//! unit change: every engine compares timestamps only relatively, so
//! shrinking `|w|`, `l` and inter-arrival spacing together is behaviour-
//! preserving). The published wall-clock arrival rate is kept for latency
//! pacing.

use oij_common::{AggSpec, Duration, OijQuery};
use serde::{Deserialize, Serialize};

use crate::synthetic::{KeyDist, SyntheticConfig};

/// What Table II / the Section III-C prose publishes about a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperSpec {
    /// Arrival rate `v` in tuples/s; `None` = ∞ (push as fast as possible).
    pub arrival_rate: Option<f64>,
    /// Unique keys `u`.
    pub unique_keys: u64,
    /// Window length `|w|` in seconds.
    pub window_secs: f64,
    /// Lateness `l` in seconds.
    pub lateness_secs: f64,
    /// "About N matching elements in each time window."
    pub matches_per_window: f64,
}

/// A named, reproducible workload: the paper's published spec plus the
/// derived event-time-scaled generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedWorkload {
    /// Short name ("A", "B", "C", "D", "TableIV", "TableV").
    pub name: &'static str,
    /// Business sector the paper attributes the workload to.
    pub sector: &'static str,
    /// The published parameters.
    pub paper: PaperSpec,
    /// Derived event-time window (µs) at scale 1.0.
    pub window_us: i64,
    /// Derived event-time lateness (µs) at scale 1.0.
    pub lateness_us: i64,
    /// Probe-stream share used in derivation.
    pub probe_fraction: f64,
    /// Target utilisation for paced latency runs, as a fraction of the
    /// engine's measured capacity. Derived from the ratio between the
    /// paper's arrival rate and its evaluation machine's headroom: A and B
    /// run near saturation, C is unbounded (None = push at full speed),
    /// D idles at an eighth of A's rate.
    pub load_factor: Option<f64>,
}

/// Event-time arrival rate used by every proxy (1 tuple/µs).
const EVENT_RATE: f64 = 1e6;

impl NamedWorkload {
    fn derive(
        name: &'static str,
        sector: &'static str,
        paper: PaperSpec,
        probe_fraction: f64,
    ) -> Self {
        // window so that per-key in-window probe count matches the paper:
        // matches = EVENT_RATE * pf / u * w  ⇒  w = matches·u / (pf·rate)
        let window_secs =
            paper.matches_per_window * paper.unique_keys as f64 / (probe_fraction * EVENT_RATE);
        // lateness keeps the paper's l/|w| ratio (that ratio is what decides
        // how much out-of-window data a full-scan engine wades through).
        let lateness_secs = window_secs * paper.lateness_secs / paper.window_secs;
        // None (∞ arrival rate) pushes as fast as possible; otherwise anchor
        // A (120 K/s) at 50% utilisation, scale linearly with the published
        // rate, and cap at 90%.
        let load_factor = paper
            .arrival_rate
            .map(|rate| (0.5 * rate / 120_000.0).min(0.9));
        NamedWorkload {
            name,
            sector,
            paper,
            window_us: (window_secs * 1e6).round() as i64,
            lateness_us: (lateness_secs * 1e6).round().max(1.0) as i64,
            probe_fraction,
            load_factor,
        }
    }

    /// Workload A — logistics; few keys (5), medium window & lateness,
    /// ~4000 matches per window.
    pub fn a() -> Self {
        Self::derive(
            "A",
            "logistics",
            PaperSpec {
                arrival_rate: Some(120_000.0),
                unique_keys: 5,
                window_secs: 1.0,
                lateness_secs: 1.0,
                matches_per_window: 4000.0,
            },
            0.5,
        )
    }

    /// Workload B — retail; medium keys (111), **large window** (150 s),
    /// ~6000 matches per window.
    pub fn b() -> Self {
        Self::derive(
            "B",
            "retail",
            PaperSpec {
                arrival_rate: Some(200_000.0),
                unique_keys: 111,
                window_secs: 150.0,
                lateness_secs: 10.0,
                matches_per_window: 6000.0,
            },
            0.5,
        )
    }

    /// Workload C — retail; unbounded arrival rate, **large lateness**
    /// (100 s vs an 8 s window), ~300 matches per window.
    pub fn c() -> Self {
        Self::derive(
            "C",
            "retail",
            PaperSpec {
                arrival_rate: None,
                unique_keys: 45,
                window_secs: 8.0,
                lateness_secs: 100.0,
                matches_per_window: 300.0,
            },
            0.5,
        )
    }

    /// Workload D — logistics; like A but at a low arrival rate (15 K/s).
    pub fn d() -> Self {
        Self::derive(
            "D",
            "logistics",
            PaperSpec {
                arrival_rate: Some(15_000.0),
                unique_keys: 5,
                window_secs: 1.0,
                lateness_secs: 2.0,
                matches_per_window: 4000.0,
            },
            0.5,
        )
    }

    /// The four real-world proxies in paper order.
    pub fn all_real() -> [NamedWorkload; 4] {
        [Self::a(), Self::b(), Self::c(), Self::d()]
    }

    /// Table IV default synthetic workload: u = 100, |w| = 1000 µs,
    /// l = 100 µs (event-time literal, no scaling applied).
    pub fn table_iv() -> Self {
        NamedWorkload {
            name: "TableIV",
            sector: "synthetic",
            paper: PaperSpec {
                arrival_rate: None,
                unique_keys: 100,
                window_secs: 0.001,
                lateness_secs: 0.0001,
                matches_per_window: 5.0, // 1M/s · 0.5 / 100 · 1ms
            },
            window_us: 1000,
            lateness_us: 100,
            probe_fraction: 0.5,
            load_factor: None,
        }
    }

    /// Table V adversarial synthetic workload: u = 1000, |w| = 100 µs,
    /// l = 10 µs — many keys, tiny window, tiny lateness (where Key-OIJ
    /// wins, paper Figure 21).
    pub fn table_v() -> Self {
        NamedWorkload {
            name: "TableV",
            sector: "synthetic",
            paper: PaperSpec {
                arrival_rate: None,
                unique_keys: 1000,
                window_secs: 0.0001,
                lateness_secs: 0.00001,
                matches_per_window: 0.05,
            },
            window_us: 100,
            lateness_us: 10,
            probe_fraction: 0.5,
            load_factor: None,
        }
    }

    /// Generator configuration for a run of `tuples` events at density
    /// `scale` (1.0 = the paper's published densities; smaller values
    /// shrink matches-per-window proportionally for quick runs).
    pub fn config(&self, tuples: usize, scale: f64) -> SyntheticConfig {
        SyntheticConfig {
            tuples,
            unique_keys: self.paper.unique_keys,
            key_dist: KeyDist::Uniform,
            probe_fraction: self.probe_fraction,
            spacing: Duration::from_micros(1),
            disorder: self.scaled_lateness(scale),
            payload_bytes: 0,
            seed: 0xBEEF ^ self.paper.unique_keys,
        }
    }

    /// The OIJ query this workload runs (sum over the preceding window).
    pub fn query(&self, scale: f64) -> OijQuery {
        OijQuery::builder()
            .preceding(self.scaled_window(scale))
            .lateness(self.scaled_lateness(scale))
            .agg(AggSpec::Sum)
            .build()
            .expect("derived offsets are non-negative")
    }

    /// Event-time window at the given density scale.
    pub fn scaled_window(&self, scale: f64) -> Duration {
        Duration::from_micros(((self.window_us as f64 * scale).round() as i64).max(1))
    }

    /// Event-time lateness at the given density scale.
    pub fn scaled_lateness(&self, scale: f64) -> Duration {
        Duration::from_micros(((self.lateness_us as f64 * scale).round() as i64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_densities_match_published() {
        for w in NamedWorkload::all_real() {
            let cfg = w.config(1000, 1.0);
            let m = cfg.expected_matches_per_window(w.scaled_window(1.0));
            let rel = (m - w.paper.matches_per_window).abs() / w.paper.matches_per_window;
            assert!(
                rel < 0.01,
                "workload {}: {m} vs {}",
                w.name,
                w.paper.matches_per_window
            );
        }
    }

    #[test]
    fn lateness_window_ratio_is_preserved() {
        for w in NamedWorkload::all_real() {
            let ours = w.lateness_us as f64 / w.window_us as f64;
            let paper = w.paper.lateness_secs / w.paper.window_secs;
            assert!(
                (ours - paper).abs() / paper < 0.02,
                "workload {}: {ours} vs {paper}",
                w.name
            );
        }
    }

    #[test]
    fn table_ii_parameters_recorded() {
        let a = NamedWorkload::a();
        assert_eq!(a.paper.unique_keys, 5);
        assert_eq!(a.paper.arrival_rate, Some(120_000.0));
        let b = NamedWorkload::b();
        assert_eq!(b.paper.unique_keys, 111);
        assert_eq!(b.paper.window_secs, 150.0);
        let c = NamedWorkload::c();
        assert_eq!(c.paper.arrival_rate, None);
        assert_eq!(c.paper.lateness_secs, 100.0);
        let d = NamedWorkload::d();
        assert_eq!(d.paper.arrival_rate, Some(15_000.0));
    }

    #[test]
    fn c_has_dominant_lateness_b_has_dominant_window() {
        let b = NamedWorkload::b();
        assert!(b.window_us > 10 * b.lateness_us, "B: window-dominated");
        let c = NamedWorkload::c();
        assert!(c.lateness_us > 10 * c.window_us, "C: lateness-dominated");
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let b = NamedWorkload::b();
        let full = b.scaled_window(1.0).as_micros();
        let tenth = b.scaled_window(0.1).as_micros();
        assert!((tenth as f64 - full as f64 * 0.1).abs() <= 1.0);
    }

    #[test]
    fn query_uses_workload_offsets() {
        let w = NamedWorkload::table_iv();
        let q = w.query(1.0);
        assert_eq!(q.window.preceding, Duration::from_micros(1000));
        assert_eq!(q.window.lateness, Duration::from_micros(100));
        assert_eq!(q.window.following, Duration::ZERO);
    }

    #[test]
    fn load_factors_reflect_published_rates() {
        assert!((NamedWorkload::a().load_factor.unwrap() - 0.5).abs() < 1e-9);
        assert!((NamedWorkload::b().load_factor.unwrap() - 0.8333).abs() < 1e-3);
        assert!((NamedWorkload::d().load_factor.unwrap() - 0.0625).abs() < 1e-9);
        assert_eq!(NamedWorkload::c().load_factor, None); // ∞ rate
        assert_eq!(NamedWorkload::table_iv().load_factor, None);
    }

    #[test]
    fn configs_are_generatable() {
        for w in [
            NamedWorkload::a(),
            NamedWorkload::table_iv(),
            NamedWorkload::table_v(),
        ] {
            let events = w.config(2000, 0.5).generate();
            assert_eq!(events.len(), 2000);
        }
    }
}
