//! # oij-workload — stream workload generators
//!
//! Generates the input streams of the paper's evaluation (Section III-C):
//!
//! - [`synthetic`] — the fully parameterised generator: arrival rate,
//!   unique keys, key distribution (uniform / Zipf / rotating hot set),
//!   bounded event-time disorder, probe/base split, payload size.
//! - [`realworld`] — parameter-matched proxies of the four proprietary
//!   4Paradigm workloads (Table II) plus the Table IV default and Table V
//!   adversarial synthetic configurations.
//!
//! ## Substituting the proprietary datasets
//!
//! The paper's logistics/retail datasets are not public. Each proxy
//! reproduces every characteristic the paper publishes: unique keys,
//! arrival rate, window length, lateness, and the derived densities
//! (*matching elements per window*, *elements in the lateness range*).
//! Because the join algorithms are sensitive only to those distributional
//! parameters — the paper's own sensitivity study (Figures 7–9) varies
//! exactly them — the proxies preserve the behaviour the evaluation
//! measures. Event-time units are scaled so that a bench-sized run covers
//! many windows; the dimensionless densities are what is held faithful
//! (see [`realworld::NamedWorkload`]).

#![warn(missing_docs)]

pub mod csv;
pub mod openloop;
pub mod realworld;
pub mod replay;
pub mod synthetic;

pub use csv::{read_csv, write_csv};
pub use openloop::{ChurnAction, ChurnPlan, OpenLoopConfig, OpenLoopPlan, Pacing};
pub use realworld::{NamedWorkload, PaperSpec};
pub use replay::{read_events, write_events};
pub use synthetic::{KeyDist, SyntheticConfig};
